//! Cross-crate integration: the full pipeline from synthetic data to the
//! cycle-level accelerator, through the facade crate's re-exports.

use mann_accel::babi::{DatasetBuilder, TaskId};
use mann_accel::hw::{AccelConfig, Accelerator, ClockDomain};
use mann_accel::ith::search::{ExhaustiveMips, MipsStrategy, ThresholdedMips};
use mann_accel::ith::ThresholdingCalibrator;
use mann_accel::model::forward::forward_until_output;
use mann_accel::model::{ModelConfig, TrainConfig, Trainer};
use mann_accel::platform::{CpuModel, ExecutionModel, FpgaPlatform, GpuModel, MipsMode};

fn pipeline(
    task: TaskId,
    seed: u64,
) -> (
    mann_accel::model::TrainedModel,
    Vec<mann_accel::babi::EncodedSample>,
    Vec<mann_accel::babi::EncodedSample>,
) {
    let data = DatasetBuilder::new()
        .train_samples(250)
        .test_samples(40)
        .seed(seed)
        .build_task(task);
    let mut trainer = Trainer::from_task_data(
        &data,
        ModelConfig {
            embed_dim: 24,
            hops: 2,
            tie_embeddings: false,
            ..ModelConfig::default()
        },
        TrainConfig {
            epochs: 20,
            learning_rate: 0.05,
            decay_every: 8,
            clip_norm: 40.0,
            seed,
            ..TrainConfig::default()
        },
    );
    trainer.train();
    trainer.into_parts()
}

#[test]
fn trained_model_runs_identically_on_all_platforms() {
    let (model, train, test) = pipeline(TaskId::SingleSupportingFact, 31);
    let ith = ThresholdingCalibrator::new()
        .rho(1.0)
        .calibrate(&model, &train);

    let cpu = CpuModel::new();
    let gpu = GpuModel::new();
    let fpga = FpgaPlatform::new(model.clone(), ClockDomain::mhz(100.0));
    let fpga_ith =
        FpgaPlatform::with_thresholding(model.clone(), ClockDomain::mhz(100.0), ith.clone());

    let mut agree_cpu_gpu = 0usize;
    let mut agree_gpu_fpga = 0usize;
    let mut agree_fpga_ith = 0usize;
    for s in &test {
        let mc = cpu.run_inference(&model, s, MipsMode::Exhaustive);
        let mg = gpu.run_inference(&model, s, MipsMode::Exhaustive);
        let mf = fpga.run_inference(&model, s, MipsMode::Exhaustive);
        let mi = fpga_ith.run_inference(&model, s, MipsMode::Thresholded(&ith));
        if mc.correct == mg.correct {
            agree_cpu_gpu += 1;
        }
        if mg.correct == mf.correct {
            agree_gpu_fpga += 1;
        }
        if mf.correct == mi.correct {
            agree_fpga_ith += 1;
        }
        // Latency hierarchy per inference: FPGA < GPU and FPGA < CPU.
        assert!(mf.time_s < mg.time_s);
        assert!(mf.time_s < mc.time_s);
    }
    assert_eq!(agree_cpu_gpu, test.len(), "CPU and GPU must agree exactly");
    assert!(
        agree_gpu_fpga * 10 >= test.len() * 9,
        "fixed-point drift too large"
    );
    assert!(
        agree_fpga_ith * 10 >= test.len() * 9,
        "thresholding drift too large"
    );
}

#[test]
fn software_and_hardware_thresholding_agree() {
    let (model, train, test) = pipeline(TaskId::YesNoQuestions, 32);
    let ith = ThresholdingCalibrator::new()
        .rho(1.0)
        .calibrate(&model, &train);
    let sw = ThresholdedMips::new(&ith);
    let accel = Accelerator::new(
        model.clone(),
        AccelConfig::with_thresholding(ClockDomain::mhz(100.0), ith.clone()),
    );
    let mut label_agree = 0usize;
    for s in &test {
        let h = forward_until_output(&model.params, s);
        let sw_result = sw.search(&model.params, &h);
        let hw_result = accel.run(s);
        if sw_result.label == hw_result.answer {
            label_agree += 1;
        }
    }
    assert!(
        label_agree * 10 >= test.len() * 9,
        "sw/hw thresholding agreement {label_agree}/{}",
        test.len()
    );
}

#[test]
fn thresholding_saves_comparisons_without_large_accuracy_loss() {
    let (model, train, test) = pipeline(TaskId::AgentMotivations, 33);
    let ith = ThresholdingCalibrator::new()
        .rho(1.0)
        .calibrate(&model, &train);
    let fast = ThresholdedMips::new(&ith);
    let mut exact_correct = 0usize;
    let mut fast_correct = 0usize;
    let mut exact_cmp = 0usize;
    let mut fast_cmp = 0usize;
    for s in &test {
        let h = forward_until_output(&model.params, s);
        let e = ExhaustiveMips.search(&model.params, &h);
        let f = fast.search(&model.params, &h);
        exact_cmp += e.comparisons;
        fast_cmp += f.comparisons;
        if e.label == s.answer {
            exact_correct += 1;
        }
        if f.label == s.answer {
            fast_correct += 1;
        }
    }
    assert!(fast_cmp < exact_cmp);
    assert!(
        fast_correct + 3 >= exact_correct,
        "{fast_correct} vs {exact_correct}"
    );
}

#[test]
fn accelerator_timing_reproduces_the_papers_scaling_shape() {
    let (model, _, test) = pipeline(TaskId::Conjunction, 34);
    let mut totals = Vec::new();
    for mhz in [25.0f64, 50.0, 75.0, 100.0] {
        let accel = Accelerator::new(
            model.clone(),
            AccelConfig {
                clock: ClockDomain::mhz(mhz),
                ..AccelConfig::default()
            },
        );
        let t: f64 = test.iter().map(|s| accel.run(s).total_s).sum();
        totals.push(t);
    }
    // Faster at higher frequency, but far from linear: 4x clock gives less
    // than 2.5x end-to-end.
    assert!(totals.windows(2).all(|w| w[1] < w[0]), "{totals:?}");
    let ratio = totals[0] / totals[3];
    assert!(ratio > 1.15 && ratio < 2.5, "25->100 MHz ratio {ratio}");
}

#[test]
fn facade_reexports_are_usable_together() {
    // Types from different crates compose through the facade without
    // explicit dependencies on the member crates.
    let lut = mann_accel::linalg::activation::ExpLut::default();
    assert!(lut.eval(-1.0) > 0.0);
    let est = mann_accel::hw::resource::estimate_accelerator(
        &mann_accel::hw::DatapathConfig::default(),
        32,
        180,
        20,
    );
    assert!(est.fits(&mann_accel::hw::VCU107_BUDGET));
    let eff = mann_accel::platform::flops_per_kj(1_000_000, 2.0, 10.0);
    assert!(eff > 0.0);
}
