//! Integration tests of the experiment runners: every table and figure of
//! the paper regenerates with the expected *shape* on a reduced suite.

use mann_accel::babi::TaskId;
use mann_accel::core::experiments::{fig2b, fig3, fig4, table1};
use mann_accel::core::{SuiteConfig, TaskSuite};

fn small_suite() -> TaskSuite {
    let cfg = SuiteConfig {
        tasks: vec![
            TaskId::SingleSupportingFact,
            TaskId::YesNoQuestions,
            TaskId::AgentMotivations,
        ],
        train_samples: 200,
        test_samples: 25,
        ..SuiteConfig::quick()
    };
    TaskSuite::build(&cfg)
}

#[test]
fn table1_headline_claims_hold() {
    let suite = small_suite();
    let t = table1::run(&suite, &table1::Table1Config::default());

    let gpu = t.row("GPU").expect("gpu row");
    let cpu = t.row("CPU").expect("cpu row");
    let f25 = t.row("FPGA 25 MHz").expect("fpga 25");
    let f100 = t.row("FPGA 100 MHz").expect("fpga 100");
    let i25 = t.row("FPGA+ITH 25 MHz").expect("ith 25");
    let i100 = t.row("FPGA+ITH 100 MHz").expect("ith 100");

    // Paper: FPGA 5.2-7.5x faster than GPU; CPU slightly slower than GPU.
    assert!((3.0..12.0).contains(&f25.speedup), "{}", f25.speedup);
    assert!(f100.speedup > f25.speedup);
    assert!((0.8..1.2).contains(&cpu.speedup), "{}", cpu.speedup);

    // Paper: FPGA tens of times more energy-efficient; CPU ~1.7x.
    assert!(f25.flops_per_kj_norm > 30.0, "{}", f25.flops_per_kj_norm);
    assert!(
        (1.0..4.0).contains(&cpu.flops_per_kj_norm),
        "{}",
        cpu.flops_per_kj_norm
    );

    // Paper: ITH reduces time 6-18% depending on frequency, more at low f.
    let save25 = 1.0 - i25.time_s / f25.time_s;
    let save100 = 1.0 - i100.time_s / f100.time_s;
    assert!(save25 > 0.02, "25 MHz saving {save25}");
    assert!(save25 > save100, "saving should shrink with frequency");

    // Power ladder: GPU > CPU > FPGA; FPGA power rises with clock.
    assert!(gpu.power_w > cpu.power_w && cpu.power_w > f25.power_w);
    assert!(f100.power_w > f25.power_w);

    // ITH improves energy efficiency at low frequency (paper: at all).
    assert!(i25.flops_per_kj_norm > f25.flops_per_kj_norm);
}

#[test]
fn fig3_shape_holds() {
    let suite = small_suite();
    let f = fig3::run(&suite, &fig3::Fig3Config::default());

    let base = f.point(None, true).expect("baseline");
    assert!((base.comparisons_norm - 1.0).abs() < 1e-9);

    // Comparisons decrease monotonically in rho and are below baseline.
    let cmp: Vec<f64> = [1.0f32, 0.99, 0.95, 0.9]
        .iter()
        .map(|&r| f.point(Some(r), true).expect("point").comparisons_norm)
        .collect();
    assert!(cmp[0] < 1.0);
    assert!(cmp.windows(2).all(|w| w[1] <= w[0] + 1e-9), "{cmp:?}");

    // Accuracy at rho=1.0 within a few test questions of the baseline.
    let p1 = f.point(Some(1.0), true).expect("rho 1");
    assert!(p1.accuracy_norm > 0.9, "{}", p1.accuracy_norm);

    // Ordering does not increase comparisons at any rho.
    for rho in [1.0f32, 0.99, 0.95, 0.9] {
        let o = f.point(Some(rho), true).expect("ordered").comparisons_norm;
        let u = f
            .point(Some(rho), false)
            .expect("unordered")
            .comparisons_norm;
        assert!(o <= u + 1e-9, "rho {rho}: {o} vs {u}");
    }
}

#[test]
fn fig4_every_task_favors_the_fpga() {
    let suite = small_suite();
    let f = fig4::run(&suite);
    assert_eq!(f.rows.len(), suite.tasks.len());
    for row in &f.rows {
        let cpu = row.efficiency_vs_gpu[0];
        let f25 = row.efficiency_vs_gpu[1];
        let f100 = row.efficiency_vs_gpu[3];
        assert!(f25 > 10.0, "task {}: {f25}", row.task_number);
        assert!(f100 > f25 * 0.5, "task {}", row.task_number);
        assert!(
            (0.5..5.0).contains(&cpu),
            "task {}: cpu {cpu}",
            row.task_number
        );
    }
    // The FPGA configurations dominate on geometric mean, as in the figure.
    assert!(f.geomean(1) > 10.0 * f.geomean(0));
}

#[test]
fn fig2b_shows_separable_mixtures() {
    let suite = small_suite();
    let f = fig2b::run(&suite.tasks[0], 5, 32);
    assert!(!f.classes.is_empty());
    // At least one class must be strongly separable (silhouette > 0.5) —
    // the premise of inference thresholding on a trained model.
    assert!(
        f.classes.iter().any(|c| c.silhouette > 0.5),
        "no separable class: {:?}",
        f.classes.iter().map(|c| c.silhouette).collect::<Vec<_>>()
    );
}

#[test]
fn experiment_results_serialize_for_the_record() {
    let suite = small_suite();
    let t = table1::run(
        &suite,
        &table1::Table1Config {
            repetitions: 1,
            frequencies_mhz: vec![25.0],
        },
    );
    let f3 = fig3::run(&suite, &fig3::Fig3Config { rhos: vec![1.0] });
    let f4 = fig4::run(&suite);
    for json in [
        serde_json::to_string(&t).expect("table1 json"),
        serde_json::to_string(&f3).expect("fig3 json"),
        serde_json::to_string(&f4).expect("fig4 json"),
    ] {
        assert!(json.len() > 50);
    }
}
