//! Golden regression net over the numbers the paper reports.
//!
//! A pinned small workload (2 tasks, fixed seeds) is pushed through the
//! Table I / Fig 3 / Fig 4 runners, the cycle-level accelerator, and the
//! serving layer; the serialized outputs are diffed against the fixtures
//! in `tests/golden/`. Integer fields (cycle counts, comparison counts,
//! grant totals) must match **exactly**; derived floats (seconds, watts,
//! normalized ratios) get a tight relative tolerance.
//!
//! # Re-blessing
//!
//! When a change *intentionally* moves these numbers, regenerate the
//! fixtures and commit them together with the change:
//!
//! ```sh
//! MANN_BLESS=1 cargo test --test golden_regression
//! git diff tests/golden/   # review every shifted number
//! ```
//!
//! A blessing run rewrites the fixtures and passes; the diff is the
//! review artifact.

use std::path::PathBuf;
use std::sync::OnceLock;

use mann_accel::babi::TaskId;
use mann_accel::core::experiments::{fig3, fig4, table1};
use mann_accel::core::{SuiteConfig, TaskSuite};
use mann_accel::hw::{AccelConfig, Accelerator, MemIndexConfig};
use mann_accel::serve::{
    serve_cluster_durable, ArrivalTrace, Cluster, ClusterConfig, EngineMode, FaultConfig, HopPrune,
    MembershipPlan, NumericPolicy, SchedulePolicy, ServeConfig, Server, TraceConfig, WalConfig,
};
use serde::json::Value;
use serde::Serialize;

/// Relative tolerance for derived floats. The pipeline is deterministic on
/// one platform; the slack only absorbs cross-platform libm differences.
const FLOAT_RTOL: f64 = 1e-9;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn suite() -> &'static TaskSuite {
    static SUITE: OnceLock<TaskSuite> = OnceLock::new();
    SUITE.get_or_init(|| {
        TaskSuite::build(&SuiteConfig {
            tasks: vec![TaskId::SingleSupportingFact, TaskId::AgentMotivations],
            train_samples: 200,
            test_samples: 20,
            seed: 29,
            ..SuiteConfig::quick()
        })
    })
}

/// Diffs `actual` against the fixture `name`, or rewrites the fixture when
/// `MANN_BLESS=1`.
fn check_golden(name: &str, actual: &Value) {
    let path = golden_dir().join(name);
    if std::env::var("MANN_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        let mut pretty = actual.print_pretty();
        pretty.push('\n');
        std::fs::write(&path, pretty).expect("write fixture");
        eprintln!("[golden] blessed {}", path.display());
        return;
    }
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {}: {e}\nrun `MANN_BLESS=1 cargo test --test golden_regression` \
             to generate it",
            path.display()
        )
    });
    let expected = serde::json::parse(&raw).expect("parse fixture");
    let mut diffs = Vec::new();
    diff_value("$", &expected, actual, &mut diffs);
    diffs.truncate(20); // the first few diffs identify the drift
    assert!(
        diffs.is_empty(),
        "{name} drifted from its golden fixture:\n  {}\nif the change is intentional, re-bless \
         with `MANN_BLESS=1 cargo test --test golden_regression` and commit the diff",
        diffs.join("\n  ")
    );
}

/// Recursive diff: exact for integers, strings, bools and shapes; relative
/// tolerance for floats.
fn diff_value(path: &str, expected: &Value, actual: &Value, diffs: &mut Vec<String>) {
    match (expected, actual) {
        (Value::Object(e), Value::Object(a)) => {
            for (key, ev) in e {
                match a.iter().find(|(k, _)| k == key) {
                    Some((_, av)) => diff_value(&format!("{path}.{key}"), ev, av, diffs),
                    None => diffs.push(format!("{path}.{key}: missing from output")),
                }
            }
            for (key, _) in a {
                if !e.iter().any(|(k, _)| k == key) {
                    diffs.push(format!("{path}.{key}: not in fixture"));
                }
            }
        }
        (Value::Array(e), Value::Array(a)) => {
            if e.len() != a.len() {
                diffs.push(format!("{path}: length {} != {}", e.len(), a.len()));
                return;
            }
            for (i, (ev, av)) in e.iter().zip(a).enumerate() {
                diff_value(&format!("{path}[{i}]"), ev, av, diffs);
            }
        }
        (Value::Num(e), Value::Num(a)) => {
            // Integer literals are compared exactly — cycle counts,
            // comparison counts and grant totals may not drift by even one.
            if let (Ok(ei), Ok(ai)) = (e.parse::<i128>(), a.parse::<i128>()) {
                if ei != ai {
                    diffs.push(format!("{path}: {ei} != {ai} (exact integer)"));
                }
                return;
            }
            let (ef, af) = (
                e.parse::<f64>().expect("numeric fixture"),
                a.parse::<f64>().expect("numeric output"),
            );
            let scale = ef.abs().max(af.abs()).max(1e-300);
            if (ef - af).abs() / scale > FLOAT_RTOL {
                diffs.push(format!("{path}: {ef} != {af} (rtol {FLOAT_RTOL})"));
            }
        }
        _ => {
            if expected != actual {
                diffs.push(format!(
                    "{path}: {} != {}",
                    expected.print(),
                    actual.print()
                ));
            }
        }
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

#[test]
fn table1_numbers_are_pinned() {
    let t = table1::run(suite(), &table1::Table1Config::default());
    check_golden("table1.json", &t.to_value());
}

#[test]
fn fig3_numbers_are_pinned() {
    let f = fig3::run(suite(), &fig3::Fig3Config::default());
    check_golden("fig3.json", &f.to_value());
}

#[test]
fn fig4_numbers_are_pinned() {
    let f = fig4::run(suite());
    check_golden("fig4.json", &f.to_value());
}

/// Per-sample cycle counts of the cycle-level accelerator, with and
/// without ITH — the exact integers behind Table I's FPGA rows.
#[test]
fn accelerator_cycle_counts_are_pinned() {
    let s = suite();
    let mut tasks = Vec::new();
    for task in &s.tasks {
        let exact = Accelerator::new(task.model.clone(), AccelConfig::default());
        let ith = Accelerator::new(
            task.model.clone(),
            AccelConfig::with_thresholding(AccelConfig::default().clock, task.ith.clone()),
        );
        let samples: Vec<Value> = task
            .test_set
            .iter()
            .map(|sample| {
                let e = exact.run(sample);
                let i = ith.run(sample);
                obj(vec![
                    (
                        "exact",
                        obj(vec![
                            ("cycles", e.cycles.to_value()),
                            ("phases", e.phases.to_value()),
                            ("comparisons", e.comparisons.to_value()),
                            ("answer", e.answer.to_value()),
                        ]),
                    ),
                    (
                        "ith",
                        obj(vec![
                            ("cycles", i.cycles.to_value()),
                            ("phases", i.phases.to_value()),
                            ("comparisons", i.comparisons.to_value()),
                            ("answer", i.answer.to_value()),
                            ("speculated", i.speculated.to_value()),
                        ]),
                    ),
                ])
            })
            .collect();
        tasks.push(obj(vec![
            ("task", task.task.to_string().to_value()),
            ("samples", Value::Array(samples)),
        ]));
    }
    check_golden(
        "accel_cycles.json",
        &obj(vec![("tasks", Value::Array(tasks))]),
    );
}

/// The serving layer's report on a pinned trace: latency percentiles,
/// occupancy, link accounting, cache-hit statistics, energy and the
/// answers digest.
#[test]
fn serve_report_is_pinned() {
    let s = suite();
    let trace = ArrivalTrace::generate(
        &TraceConfig {
            requests: 96,
            seed: 31,
            mean_interarrival_s: 150e-6,
            ..TraceConfig::default()
        },
        s,
    );
    let server = Server::new(
        s,
        ServeConfig {
            instances: 2,
            queue_capacity: 128,
            ..ServeConfig::default()
        },
    );
    let out = server.serve(&trace);
    check_golden("serve_report.json", &out.report.to_value());
}

/// A story-affinity serve over a few-stories/many-questions trace: pins the
/// affinity scheduler's dispatch pattern, the per-instance cache hit
/// counters and the write-cycle/upload savings.
#[test]
fn serve_affinity_report_is_pinned() {
    let s = suite();
    let trace = ArrivalTrace::generate(
        &TraceConfig {
            requests: 96,
            seed: 37,
            mean_interarrival_s: 130e-6,
            story_pool: 4,
        },
        s,
    );
    let server = Server::new(
        s,
        ServeConfig {
            instances: 3,
            queue_capacity: 128,
            story_cache: 2,
            policy: SchedulePolicy::StoryAffinity,
            ..ServeConfig::default()
        },
    );
    let out = server.serve(&trace);
    check_golden("serve_affinity.json", &out.report.to_value());
}

/// A seeded fault campaign over a repeated-story trace: link corruption
/// with bounded retries, instance crashes with watchdog failover, SEU
/// scrubbing of resident stories, and overload degradation. Pins the full
/// report — including every recovery counter — and checks that the serial
/// engine reproduces the parallel engine's bytes under faults.
#[test]
fn serve_fault_campaign_is_pinned() {
    let s = suite();
    let trace = ArrivalTrace::generate(
        &TraceConfig {
            requests: 96,
            seed: 41,
            mean_interarrival_s: 60e-6,
            story_pool: 4,
        },
        s,
    );
    let config = ServeConfig {
        instances: 2,
        queue_capacity: 128,
        story_cache: 4,
        policy: SchedulePolicy::StoryAffinity,
        faults: FaultConfig {
            seed: 7,
            link_corrupt_prob: 0.2,
            max_retries: 1,
            backoff_base_s: 2e-6,
            crashes: 3,
            crash_cooldown_s: 400e-6,
            watchdog_s: 500e-6,
            seus: 6,
            degrade_depth: 6,
            degrade_margin: 0.75,
            node_kills: 0,
        },
        ..ServeConfig::default()
    };
    let out = Server::new(s, config.clone()).serve(&trace);
    let fault = &out.report.fault;
    assert!(fault.enabled, "campaign must be active");
    assert!(fault.retransmits > 0, "campaign must retransmit");
    assert!(
        fault.crashes > 0 && fault.failovers > 0,
        "campaign must fail over"
    );
    assert!(fault.total_shed() > 0, "campaign must shed");
    assert!(fault.scrubs > 0, "campaign must scrub");
    assert!(fault.degraded > 0, "campaign must degrade");

    // Engine invariance holds under faults too: the serial engine's report
    // is byte-identical.
    let serial = Server::new(
        s,
        ServeConfig {
            engine: EngineMode::Serial,
            ..config
        },
    )
    .serve(&trace);
    assert_eq!(
        serial.report.to_value().print(),
        out.report.to_value().print(),
        "serial and parallel engines diverged under faults"
    );

    check_golden("serve_faults.json", &out.report.to_value());
}

/// A K=4/R=2 cluster campaign with instance crashes armed on every shard:
/// stranded requests fail over cross-shard to their story's replica, and
/// the merged `ClusterReport` — pooled latency percentiles, summed fault
/// sections, per-shard breakdown — is pinned byte for byte. Also asserts
/// the two reduction laws: serial == parallel bytes, and a K=1/R=1
/// cluster serializes byte-identically to the single-node report.
#[test]
fn serve_cluster_campaign_is_pinned() {
    let s = suite();
    let trace = ArrivalTrace::generate(
        &TraceConfig {
            requests: 96,
            seed: 43,
            mean_interarrival_s: 60e-6,
            story_pool: 6,
        },
        s,
    );
    let config = ClusterConfig {
        shards: 4,
        replication: 2,
        base: ServeConfig {
            instances: 2,
            queue_capacity: 128,
            story_cache: 4,
            policy: SchedulePolicy::StoryAffinity,
            faults: FaultConfig {
                seed: 9,
                crashes: 2,
                crash_cooldown_s: 500e-6,
                watchdog_s: 250e-6,
                ..FaultConfig::none()
            },
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    };
    let out = Cluster::new(s, config.clone()).serve(&trace);
    assert!(out.report.fault.enabled, "campaign must be active");
    assert!(out.report.fault.crashes > 0, "campaign must crash");
    assert!(
        out.report.failover.exports > 0 && out.report.failover.completed > 0,
        "campaign must fail over cross-shard"
    );
    assert_eq!(
        out.report.completed + out.report.rejected + out.report.shed,
        trace.len(),
        "cluster outcome must partition the trace"
    );

    // Engine invariance holds for the merged report too.
    let serial = Cluster::new(
        s,
        ClusterConfig {
            base: ServeConfig {
                engine: EngineMode::Serial,
                ..config.base.clone()
            },
            ..config.clone()
        },
    )
    .serve(&trace);
    assert_eq!(
        serial.report.to_value().print(),
        out.report.to_value().print(),
        "serial and parallel engines diverged on the cluster report"
    );

    // Reduction law: at K=1/R=1 the cluster layer is inert and its report
    // bytes are the single-node report's bytes.
    let single = Server::new(s, config.base.clone()).serve(&trace);
    let inert = Cluster::new(
        s,
        ClusterConfig {
            shards: 1,
            replication: 1,
            base: config.base.clone(),
            ..ClusterConfig::default()
        },
    )
    .serve(&trace);
    assert_eq!(
        inert.report.to_value().print(),
        single.report.to_value().print(),
        "K=1/R=1 cluster must reduce to the single-node report"
    );

    check_golden("serve_cluster.json", &out.report.to_value());
}

/// The serve_cluster campaign with a full membership churn on top: one
/// cold join, one planned drain, one mid-campaign fail-stop, queue-
/// pressure weight retuning and the hot-key splitter, all on the same
/// K=4/R=2 cluster, trace and instance-crash plan. Pins the merged
/// report — membership section included — byte for byte, asserts every
/// membership counter is exercised (nonzero), and pins `unroutable_shed`
/// at exactly zero: with R=2 and only two of four shards leaving, every
/// key keeps a live replica for the whole campaign.
#[test]
fn serve_membership_campaign_is_pinned() {
    let s = suite();
    let trace = ArrivalTrace::generate(
        &TraceConfig {
            requests: 96,
            seed: 43,
            mean_interarrival_s: 60e-6,
            story_pool: 6,
        },
        s,
    );
    let config = ClusterConfig {
        shards: 4,
        replication: 2,
        membership: MembershipPlan::parse_spec(
            "join=3@800,drain=1@2000,fail=2@3000,retune-threshold=0.02,hot-key=9",
        )
        .expect("valid churn spec"),
        base: ServeConfig {
            instances: 2,
            queue_capacity: 128,
            story_cache: 4,
            policy: SchedulePolicy::StoryAffinity,
            faults: FaultConfig {
                seed: 9,
                crashes: 2,
                crash_cooldown_s: 500e-6,
                watchdog_s: 250e-6,
                ..FaultConfig::none()
            },
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    };
    let out = Cluster::new(s, config.clone()).serve(&trace);
    let m = &out.report.membership;
    assert!(m.enabled, "campaign must publish a membership section");
    assert_eq!((m.joins, m.drains, m.failures), (1, 1, 1));
    assert!(m.retunes > 0, "queue pressure must retune a shard weight");
    assert!(m.hot_keys > 0 && m.split_requests > 0, "splitter must bite");
    assert!(
        m.stranded_exports > 0,
        "the fail-stop must strand in-flight work"
    );
    assert!(m.stories_moved > 0, "the drain must hand stories off");
    assert!(m.handoff_bytes > 0 && m.handoff_s > 0.0 && m.handoff_energy_j > 0.0);
    assert!(m.tracked_keys > 0 && m.moved_keys > 0 && m.moved_key_fraction > 0.0);
    assert_eq!(
        m.unroutable_shed, 0,
        "every key must keep a live replica through the churn"
    );
    assert_eq!(
        out.report.completed + out.report.rejected + out.report.shed,
        trace.len(),
        "churned cluster outcome must partition the trace"
    );

    // Engine invariance holds with the membership layer live.
    let serial = Cluster::new(
        s,
        ClusterConfig {
            base: ServeConfig {
                engine: EngineMode::Serial,
                ..config.base.clone()
            },
            ..config.clone()
        },
    )
    .serve(&trace);
    assert_eq!(
        serial.report.to_value().print(),
        out.report.to_value().print(),
        "serial and parallel engines diverged on the membership report"
    );

    check_golden("serve_membership.json", &out.report.to_value());
}

/// A K=2 durable cluster campaign with one `node_kill`: every shard-pass
/// journals its stories, evictions and completions to a write-ahead log,
/// the seeded victim shard is fail-stopped mid-append (leaving a torn
/// frame on disk), and recovery replays snapshot + segments onto a fresh
/// stack before re-dispatching the in-flight remainder. Pins the merged
/// report — durability section included — byte for byte, and asserts the
/// three determinism laws in-test: serial == parallel bytes, bytes are
/// independent of the WAL directory, and the recovered report minus its
/// durability section is byte-identical to the no-crash, no-WAL run.
#[test]
fn serve_recovery_campaign_is_pinned() {
    let s = suite();
    let trace = ArrivalTrace::generate(
        &TraceConfig {
            requests: 96,
            seed: 47,
            mean_interarrival_s: 60e-6,
            story_pool: 6,
        },
        s,
    );
    // Fresh scratch WAL roots: counters in the durability section are
    // path-free, so the golden bytes cannot depend on these locations.
    let wal_root = |name: &str| {
        let dir = std::env::temp_dir().join(format!("mann_golden_recovery_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    let config_for = |dir: std::path::PathBuf, engine: EngineMode| ClusterConfig {
        shards: 2,
        replication: 1,
        base: ServeConfig {
            instances: 2,
            queue_capacity: 128,
            story_cache: 4,
            policy: SchedulePolicy::StoryAffinity,
            engine,
            faults: FaultConfig {
                seed: 9,
                node_kills: 1,
                ..FaultConfig::none()
            },
            wal: WalConfig {
                enabled: true,
                dir: dir.display().to_string(),
                snapshot_every: 24,
                ..WalConfig::default()
            },
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    };

    let cluster = Cluster::new(s, config_for(wal_root("parallel"), EngineMode::Parallel));
    let out = serve_cluster_durable(&cluster, &trace).expect("durable cluster serve");
    let d = &out.report.durability;
    assert!(d.enabled, "durability section must be published");
    assert_eq!(d.node_kills, 1, "the campaign must kill exactly one node");
    assert_eq!(d.torn_tails, 1, "the torn WAL tail must be detected");
    assert!(d.replayed_records > 0, "recovery must replay the journal");
    assert!(d.snapshots > 0, "the campaign must snapshot and compact");
    assert_eq!(
        out.report.completed + out.report.rejected + out.report.shed,
        trace.len(),
        "cluster outcome must partition the trace"
    );

    // Determinism law 1: the serial engine, on its own fresh WAL root,
    // reproduces the parallel report — durability bytes included.
    let serial_cluster = Cluster::new(s, config_for(wal_root("serial"), EngineMode::Serial));
    let serial = serve_cluster_durable(&serial_cluster, &trace).expect("serial durable serve");
    assert_eq!(
        serial.report.to_value().print(),
        out.report.to_value().print(),
        "serial and parallel engines diverged on the recovered cluster report"
    );

    // Determinism law 2: the crash campaign is journal-level — stripped
    // of its durability section, the recovered report is byte-identical
    // to a plain run with no WAL and no kill.
    let mut plain_config = config_for(wal_root("unused"), EngineMode::Parallel);
    plain_config.base.faults.node_kills = 0;
    plain_config.base.wal = WalConfig::default();
    let plain = Cluster::new(s, plain_config).serve(&trace);
    assert_eq!(
        out.report.sans_durability().to_value().print(),
        plain.report.to_value().print(),
        "recovery must reproduce the no-crash report bytes"
    );

    check_golden("serve_recovery.json", &out.report.to_value());
}

/// The stress suite for the numeric campaign: the trained embeddings are
/// scaled to `f32::MAX` before quantization, driving every quantizer and
/// fixed-point unit in the datapath into its saturation/overflow paths.
fn stressed_suite() -> &'static TaskSuite {
    static SUITE: OnceLock<TaskSuite> = OnceLock::new();
    SUITE.get_or_init(|| suite().clone().with_embedding_scale(f32::MAX))
}

/// A numeric-stress campaign under the `failover` policy: saturating
/// embeddings flag every completion, the ITH exit guard vetoes saturated
/// early exits, and each stressed answer is re-served by the `f32`
/// reference at accounted cycle/energy cost. Pins the full report —
/// including every `NumericHealth` counter — and checks that the serial
/// engine reproduces the parallel engine's bytes under stress.
#[test]
fn serve_numeric_campaign_is_pinned() {
    let s = stressed_suite();
    let trace = ArrivalTrace::generate(
        &TraceConfig {
            requests: 96,
            seed: 41,
            mean_interarrival_s: 60e-6,
            story_pool: 4,
        },
        s,
    );
    let config = ServeConfig {
        instances: 2,
        queue_capacity: 128,
        story_cache: 4,
        policy: SchedulePolicy::StoryAffinity,
        use_ith: true,
        numeric_policy: NumericPolicy::Failover,
        ..ServeConfig::default()
    };
    let out = Server::new(s, config.clone()).serve(&trace);
    let nh = &out.report.numeric;
    assert!(nh.enabled, "failover policy must publish the section");
    assert!(nh.flagged > 0, "stress campaign must flag completions");
    assert!(nh.vetoed > 0, "exit guard must veto saturated early exits");
    assert!(nh.failed_over > 0, "failover must re-serve flagged answers");
    assert!(nh.failover_cycles > 0 && nh.failover_energy_j > 0.0);
    let h = &nh.histogram;
    assert!(h.add_sat > 0, "embedding accumulation must saturate");
    assert!(h.sub_sat > 0, "softmax shadow subtract must saturate");
    assert!(h.mul_sat > 0, "MAC products must saturate");
    assert!(h.quant_clamp > 0, "runtime re-quantization must clamp");
    assert!(
        h.nan_boundary > 0,
        "±inf weights must hit the load boundary"
    );
    // The MEM softmax denominator is ≥ exp(0): division by zero is
    // structurally unreachable from the serve path, so this counter is
    // pinned at zero (the divider's event path is covered by unit and
    // property tests at the linalg level).
    assert_eq!(h.div_zero, 0);

    // Engine invariance holds under numeric stress too: the serial
    // engine's report is byte-identical.
    let serial = Server::new(
        s,
        ServeConfig {
            engine: EngineMode::Serial,
            ..config
        },
    )
    .serve(&trace);
    assert_eq!(
        serial.report.to_value().print(),
        out.report.to_value().print(),
        "serial and parallel engines diverged under numeric stress"
    );

    check_golden("serve_numeric.json", &out.report.to_value());
}

/// The compute-dedup campaign: a story-reuse burst served with same-story
/// batch fusion (window 4) and adaptive hop pruning enabled. Pins the full
/// report — fused-group histogram, deduplicated stream cycles, hop-prune
/// savings — and checks that the serial engine reproduces the parallel
/// engine's bytes and that pruning moves at most 1% of argmax answers off
/// the full-hop oracle.
#[test]
fn serve_batched_pruned_campaign_is_pinned() {
    let s = suite();
    let trace = ArrivalTrace::generate(
        &TraceConfig {
            requests: 96,
            seed: 37,
            mean_interarrival_s: 20e-6,
            story_pool: 4,
        },
        s,
    );
    let config = ServeConfig {
        instances: 2,
        queue_capacity: 128,
        story_cache: 4,
        inflight_limit: 8,
        policy: SchedulePolicy::StoryAffinity,
        // A fast link keeps the upload path ahead of the fabric so the
        // input FIFOs actually back up and groups form.
        pcie: mann_accel::hw::PcieLink {
            bandwidth_bytes_per_s: 1.5e9,
            latency_per_transfer_s: 1e-6,
        },
        batch_window: 4,
        hop_prune: HopPrune::with_threshold(0.8),
        ..ServeConfig::default()
    };
    let out = Server::new(s, config.clone()).serve(&trace);
    let batch = &out.report.batch;
    assert!(batch.enabled && batch.fused_groups > 0, "no fused groups");
    assert!(batch.cycles_saved > 0, "fusion saved no stream cycles");
    let prune = &out.report.prune;
    assert!(prune.enabled && prune.hops_saved > 0, "no hops pruned");
    assert!(prune.cycles_saved > 0, "pruning saved no cycles");

    // Engine invariance holds with both levers armed: the serial engine's
    // report is byte-identical.
    let serial = Server::new(
        s,
        ServeConfig {
            engine: EngineMode::Serial,
            ..config.clone()
        },
    )
    .serve(&trace);
    assert_eq!(
        serial.report.to_value().print(),
        out.report.to_value().print(),
        "serial and parallel engines diverged with batching + pruning"
    );

    // Pruning is an approximation; the oracle run answers every question
    // with the full hop schedule. At this threshold at least 99% of the
    // argmax answers must survive.
    let oracle = Server::new(
        s,
        ServeConfig {
            hop_prune: HopPrune::default(),
            ..config
        },
    )
    .serve(&trace);
    assert_eq!(oracle.completions.len(), out.completions.len());
    let agree = oracle
        .completions
        .iter()
        .zip(&out.completions)
        .filter(|(o, p)| {
            assert_eq!(o.request.id, p.request.id);
            o.run.answer == p.run.answer
        })
        .count();
    assert!(
        agree * 100 >= out.completions.len() * 99,
        "pruned answers agree on only {agree}/{} completions",
        out.completions.len()
    );

    check_golden("serve_batched.json", &out.report.to_value());
}

/// A large-memory suite for the candidate-index campaign: task 1 honors
/// the story-length knob exactly, so every resident story holds 500
/// sentences and exact-scan addressing dominates the serve cost — the
/// regime the IVF index is built for.
fn index_suite() -> &'static TaskSuite {
    static SUITE: OnceLock<TaskSuite> = OnceLock::new();
    SUITE.get_or_init(|| {
        TaskSuite::build(&SuiteConfig {
            tasks: vec![TaskId::SingleSupportingFact],
            train_samples: 48,
            test_samples: 16,
            seed: 11,
            story_sentences: 500,
            ..SuiteConfig::quick()
        })
    })
}

/// The sub-linear addressing campaign: 500-sentence resident stories
/// served with the IVF candidate index armed. Pins the full report —
/// aggregated `IndexReport` counters included — and checks the index
/// laws: serial == parallel bytes, every counter (scan, skip, fallback,
/// build, savings) engaged, and >= 99% argmax agreement against an
/// exact-scan oracle server on the same trace.
#[test]
fn serve_index_campaign_is_pinned() {
    let s = index_suite();
    let trace = ArrivalTrace::generate(
        &TraceConfig {
            requests: 96,
            seed: 47,
            mean_interarrival_s: 60e-6,
            story_pool: 4,
        },
        s,
    );
    let config = ServeConfig {
        instances: 2,
        queue_capacity: 128,
        story_cache: 4,
        policy: SchedulePolicy::StoryAffinity,
        mem_index: MemIndexConfig::with_params(32, 8, 0.4),
        ..ServeConfig::default()
    };
    let out = Server::new(s, config.clone()).serve(&trace);
    let index = &out.report.index;
    assert!(index.enabled, "index must publish its section");
    assert!(index.scanned_slots > 0, "index must scan candidates");
    assert!(index.skipped_slots > 0, "index must skip slots");
    assert!(index.fallbacks > 0, "confidence band must trip a rescan");
    assert!(index.build_cycles > 0, "index build must be charged");
    assert!(
        index.cycles_saved > 0 && index.energy_saved_j > 0.0,
        "index must save addressing cycles"
    );

    // Engine invariance holds with the index armed: the serial engine's
    // report is byte-identical.
    let serial = Server::new(
        s,
        ServeConfig {
            engine: EngineMode::Serial,
            ..config.clone()
        },
    )
    .serve(&trace);
    assert_eq!(
        serial.report.to_value().print(),
        out.report.to_value().print(),
        "serial and parallel engines diverged with the index armed"
    );

    // Candidate generation is an approximation; the oracle server scans
    // every slot exactly. At this operating point at least 99% of the
    // argmax answers must survive.
    let oracle = Server::new(
        s,
        ServeConfig {
            mem_index: MemIndexConfig::default(),
            ..config
        },
    )
    .serve(&trace);
    assert_eq!(oracle.completions.len(), out.completions.len());
    let agree = oracle
        .completions
        .iter()
        .zip(&out.completions)
        .filter(|(o, i)| {
            assert_eq!(o.request.id, i.request.id);
            o.run.answer == i.run.answer
        })
        .count();
    assert!(
        agree * 100 >= out.completions.len() * 99,
        "indexed answers agree on only {agree}/{} completions",
        out.completions.len()
    );

    check_golden("serve_index.json", &out.report.to_value());
}
