//! A Table I-style platform comparison on a task subset: time, power,
//! speedup, and FLOPS/kJ for CPU, GPU and the FPGA frequency ladder.
//!
//! ```sh
//! cargo run --release --example energy_report
//! ```

use mann_accel::babi::TaskId;
use mann_accel::core::experiments::table1;
use mann_accel::core::{SuiteConfig, TaskSuite};

fn main() {
    let cfg = SuiteConfig {
        tasks: vec![
            TaskId::SingleSupportingFact,
            TaskId::Conjunction,
            TaskId::BasicDeduction,
            TaskId::AgentMotivations,
        ],
        train_samples: 300,
        test_samples: 40,
        ..SuiteConfig::quick()
    };
    println!("training {} tasks ...", cfg.tasks.len());
    let suite = TaskSuite::build(&cfg);
    println!(
        "mean test accuracy: {:.1}%\n",
        suite.mean_accuracy() * 100.0
    );

    let table = table1::run(&suite, &table1::Table1Config::default());
    println!("{}", table.render());

    let f25 = table.row("FPGA 25 MHz").expect("row exists");
    let i25 = table.row("FPGA+ITH 25 MHz").expect("row exists");
    println!(
        "inference thresholding saves {:.1}% of wall-clock time at 25 MHz",
        (1.0 - i25.time_s / f25.time_s) * 100.0
    );
    let f100 = table.row("FPGA 100 MHz").expect("row exists");
    println!(
        "raising the clock 25 -> 100 MHz buys only {:.2}x end-to-end (the\n\
         host interface dominates, as the paper observes)",
        f25.time_s / f100.time_s
    );
}
