//! Calibrate inference thresholding and sweep the confidence constant ρ —
//! the Fig 3 experiment as an interactive example.
//!
//! ```sh
//! cargo run --release --example threshold_sweep
//! ```

use mann_accel::babi::TaskId;
use mann_accel::core::experiments::{fig2b, fig3};
use mann_accel::core::{SuiteConfig, TaskSuite};

fn main() {
    // A three-task suite keeps this example under a minute.
    let cfg = SuiteConfig {
        tasks: vec![
            TaskId::SingleSupportingFact,
            TaskId::YesNoQuestions,
            TaskId::AgentMotivations,
        ],
        train_samples: 400,
        test_samples: 50,
        ..SuiteConfig::quick()
    };
    println!("training {} tasks ...", cfg.tasks.len());
    let suite = TaskSuite::build(&cfg);
    for t in &suite.tasks {
        println!(
            "  {}: test accuracy {:.1}%, {} of {} classes thresholdable at rho=1.0",
            t.task,
            t.test_accuracy * 100.0,
            t.ith.active_classes(),
            t.ith.classes()
        );
    }

    // The logit mixtures that motivate the method (Fig 2b).
    println!("\n{}", fig2b::run(&suite.tasks[0], 4, 40).render());

    // The rho sweep with and without index ordering (Fig 3).
    let fig = fig3::run(&suite, &fig3::Fig3Config::default());
    println!("{}", fig.render());
    println!(
        "note: lower rho trades accuracy for fewer comparisons; ordering\n\
         improves both — the Fig 3 shape."
    );
}
