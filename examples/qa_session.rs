//! A question-answering session with an attention trace: watch the memory
//! network "hop" through the story's supporting facts.
//!
//! ```sh
//! cargo run --release --example qa_session
//! ```

use mann_accel::babi::{DatasetBuilder, TaskId};
use mann_accel::model::{forward, ModelConfig, TrainConfig, Trainer};

fn main() {
    let task = TaskId::TwoSupportingFacts;
    let data = DatasetBuilder::new()
        .train_samples(600)
        .test_samples(30)
        .seed(7)
        .build_task(task);

    let mut trainer = Trainer::from_task_data(
        &data,
        ModelConfig {
            embed_dim: 32,
            hops: 3,
            tie_embeddings: false,
            ..ModelConfig::default()
        },
        TrainConfig {
            epochs: 30,
            learning_rate: 0.05,
            decay_every: 12,
            clip_norm: 40.0,
            seed: 7,
            ..TrainConfig::default()
        },
    );
    let report = trainer.train();
    println!(
        "trained {} — test accuracy {:.1}%\n",
        task,
        report.final_test_accuracy * 100.0
    );
    let (model, _, test) = trainer.into_parts();

    // Show the attention per hop for a handful of questions.
    for (sample_text, sample) in data.test.iter().zip(&test).take(3) {
        println!("story:");
        for (i, sent) in sample_text.story.iter().enumerate() {
            println!("  [{i}] {}", sent.join(" "));
        }
        println!("question: {} ?", sample_text.question.join(" "));

        let trace = forward(&model.params, sample);
        for (hop, attention) in trace.attention.iter().enumerate() {
            let focus: Vec<String> = attention
                .iter()
                .enumerate()
                .filter(|(_, &a)| a > 0.15)
                .map(|(i, &a)| format!("[{i}]={a:.2}"))
                .collect();
            println!("  hop {hop}: attends {}", focus.join(" "));
        }
        let vocab = model.encoder.vocab();
        let predicted = vocab.token(trace.prediction()).unwrap_or("?");
        let marker = if trace.prediction() == sample.answer {
            "correct"
        } else {
            "wrong"
        };
        println!(
            "  answer: {predicted} ({marker}, expected {}, supporting facts {:?})\n",
            sample_text.answer, sample_text.supporting
        );
    }
}
