//! Multi-tenant serving in simulated time: two trained bAbI tenants, a
//! seeded Poisson request trace, and a pool of replicated accelerator
//! instances sharing one PCIe link.
//!
//! ```sh
//! cargo run --release --example serving
//! ```
//!
//! The example serves the same trace twice — once on a single instance,
//! once on four — and shows that the latency distribution changes while
//! the answers digest does not: the serving layer schedules, it never
//! computes.

use mann_accel::babi::TaskId;
use mann_accel::core::{SuiteConfig, TaskSuite};
use mann_accel::serve::{ArrivalTrace, SchedulePolicy, ServeConfig, Server, TraceConfig};

fn main() {
    // Two tenants, trained quickly.
    let suite = TaskSuite::build(&SuiteConfig {
        tasks: vec![TaskId::SingleSupportingFact, TaskId::AgentMotivations],
        train_samples: 200,
        test_samples: 25,
        seed: 7,
        ..SuiteConfig::quick()
    });
    println!(
        "trained {} tenants, mean test accuracy {:.1}%\n",
        suite.tasks.len(),
        suite.mean_accuracy() * 100.0
    );

    // One pinned trace: 200 requests, ~150 us apart, mixed across tenants.
    let trace = ArrivalTrace::generate(
        &TraceConfig {
            requests: 200,
            seed: 42,
            mean_interarrival_s: 150e-6,
            ..TraceConfig::default()
        },
        &suite,
    );

    for instances in [1usize, 4] {
        let server = Server::new(
            &suite,
            ServeConfig {
                instances,
                queue_capacity: 256,
                policy: SchedulePolicy::ShortestQueue,
                ..ServeConfig::default()
            },
        );
        let outcome = server.serve(&trace);
        println!(
            "=== {} instance(s), policy {} ===",
            instances,
            server.config().policy
        );
        println!("{}", outcome.report.render());
    }
    // The same load concentrated on a handful of stories: story-affinity
    // scheduling plus the per-instance story cache skips the INPUT&WRITE
    // phase (and the PCIe story upload) on every repeat visit.
    let pooled = ArrivalTrace::generate(
        &TraceConfig {
            requests: 200,
            seed: 42,
            mean_interarrival_s: 150e-6,
            story_pool: 4,
        },
        &suite,
    );
    let server = Server::new(
        &suite,
        ServeConfig {
            instances: 4,
            queue_capacity: 256,
            policy: SchedulePolicy::StoryAffinity,
            ..ServeConfig::default()
        },
    );
    let outcome = server.serve(&pooled);
    println!(
        "=== 4 instances, policy {}, {} distinct stories ===",
        server.config().policy,
        outcome.report.cache.unique_stories
    );
    println!("{}", outcome.report.render());
    println!(
        "note: the answers digest is identical across the first two serves — \
         instance count and scheduling policy never change a numeric result; \
         the cached serve changes only WRITE-phase cycles and upload bytes."
    );
}
