//! Run one inference with VCD signal tracing and print the FPGA resource
//! report — the EDA-facing view of the accelerator.
//!
//! ```sh
//! cargo run --release --example hw_trace
//! ```
//!
//! The VCD written to `target/mann_accel_trace.vcd` opens in GTKWave.

use std::fs;

use mann_accel::babi::{DatasetBuilder, TaskId};
use mann_accel::hw::resource::estimate_accelerator;
use mann_accel::hw::trace::SignalTrace;
use mann_accel::hw::{AccelConfig, Accelerator, ClockDomain, DatapathConfig, VCU107_BUDGET};
use mann_accel::model::{ModelConfig, TrainConfig, Trainer};

fn main() {
    let data = DatasetBuilder::new()
        .train_samples(150)
        .test_samples(10)
        .seed(3)
        .build_task(TaskId::SingleSupportingFact);
    let mut trainer = Trainer::from_task_data(
        &data,
        ModelConfig {
            embed_dim: 32,
            hops: 3,
            tie_embeddings: false,
            ..ModelConfig::default()
        },
        TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        },
    );
    trainer.train();
    let (model, _, test) = trainer.into_parts();
    let vocab_size = model.params.vocab_size;
    let max_story = test.iter().map(|s| s.sentences.len()).max().unwrap_or(0);

    // Resource report.
    let dp = DatapathConfig::default();
    let est = estimate_accelerator(&dp, 32, vocab_size, max_story);
    let (l, f, d, b) = est.utilization(&VCU107_BUDGET);
    println!("FPGA resource estimate (Virtex UltraScale XCVU095 budget):");
    println!("  LUTs   {:>8}  ({:>5.2}%)", est.luts, l * 100.0);
    println!("  FFs    {:>8}  ({:>5.2}%)", est.ffs, f * 100.0);
    println!("  DSPs   {:>8}  ({:>5.2}%)", est.dsps, d * 100.0);
    println!("  BRAM36 {:>8}  ({:>5.2}%)", est.bram36, b * 100.0);
    println!("  fits: {}\n", est.fits(&VCU107_BUDGET));

    // Traced inference.
    let accel = Accelerator::new(
        model,
        AccelConfig {
            clock: ClockDomain::mhz(100.0),
            datapath: dp,
            ..AccelConfig::default()
        },
    );
    let mut trace = SignalTrace::new();
    let run = accel.run_with_trace(&test[0], &mut trace);
    println!(
        "inference: answer class {}, {} cycles, {} trace events",
        run.answer,
        run.cycles.get(),
        trace.len()
    );

    let path = "target/mann_accel_trace.vcd";
    if let Err(e) = fs::write(path, trace.to_vcd()) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("VCD written to {path} (open with GTKWave)");
    }
}
