//! Quickstart: generate a QA task, train a memory network, and run one
//! question on the simulated FPGA accelerator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mann_accel::babi::{DatasetBuilder, TaskId};
use mann_accel::hw::{AccelConfig, Accelerator, ClockDomain};
use mann_accel::model::{ModelConfig, TrainConfig, Trainer};

fn main() {
    // 1. Generate a synthetic bAbI task-1 dataset (deterministic by seed).
    let data = DatasetBuilder::new()
        .train_samples(300)
        .test_samples(50)
        .seed(42)
        .build_task(TaskId::SingleSupportingFact);
    println!(
        "dataset: {} train / {} test samples",
        data.train.len(),
        data.test.len()
    );
    println!("example story:\n{}", data.train[0].to_babi_text());

    // 2. Train the memory network (Eqs 1-6) from scratch.
    let mut trainer = Trainer::from_task_data(
        &data,
        ModelConfig {
            embed_dim: 24,
            hops: 2,
            tie_embeddings: false,
            ..ModelConfig::default()
        },
        TrainConfig {
            epochs: 20,
            learning_rate: 0.05,
            decay_every: 8,
            clip_norm: 40.0,
            seed: 42,
            ..TrainConfig::default()
        },
    );
    let report = trainer.train();
    println!(
        "trained: train acc {:.1}%, test acc {:.1}%",
        report.final_train_accuracy * 100.0,
        report.final_test_accuracy * 100.0
    );
    let (model, _train, test) = trainer.into_parts();

    // 3. Load the model into the cycle-level accelerator at 100 MHz.
    let accel = Accelerator::new(
        model.clone(),
        AccelConfig {
            clock: ClockDomain::mhz(100.0),
            ..AccelConfig::default()
        },
    );

    // 4. Answer the first test question.
    let sample = &test[0];
    let run = accel.run(sample);
    let vocab = model.encoder.vocab();
    println!(
        "\nquestion answered: predicted '{}', expected '{}'",
        vocab.token(run.answer).unwrap_or("?"),
        vocab.token(sample.answer).unwrap_or("?")
    );
    println!(
        "accelerator: {} compute cycles ({:.1} us at 100 MHz) + {:.1} us host interface",
        run.cycles.get(),
        run.compute_s * 1e6,
        run.interface_s * 1e6
    );
    println!(
        "phases: control {}, write {}, addressing {}, read {}, controller {}, output {}",
        run.phases.control.get(),
        run.phases.write.get(),
        run.phases.addressing.get(),
        run.phases.read.get(),
        run.phases.controller.get(),
        run.phases.output.get()
    );
}
