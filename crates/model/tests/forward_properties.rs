//! Structural properties of the forward pass beyond gradient correctness.

use mann_babi::EncodedSample;
use memn2n::{forward, ControllerKind, ModelConfig, Params};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn params(seed: u64, hops: usize, controller: ControllerKind) -> Params {
    Params::init(
        ModelConfig {
            embed_dim: 6,
            hops,
            tie_embeddings: false,
            controller,
        },
        15,
        &mut StdRng::seed_from_u64(seed),
    )
}

fn sample_from(sentences: Vec<Vec<usize>>, question: Vec<usize>) -> EncodedSample {
    EncodedSample {
        sentences,
        question,
        answer: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Without temporal tokens the memory is a *set*: permuting the story
    /// permutes attention but leaves the logits unchanged.
    #[test]
    fn story_permutation_invariance(seed in 0u64..300, hops in 1usize..=3) {
        let p = params(seed, hops, ControllerKind::Linear);
        let sents = vec![vec![1, 2], vec![3, 4, 5], vec![6], vec![7, 8]];
        let q = vec![9, 10];
        let base = forward(&p, &sample_from(sents.clone(), q.clone()));
        let mut reversed = sents.clone();
        reversed.reverse();
        let perm = forward(&p, &sample_from(reversed, q));
        for (a, b) in base.logits.iter().zip(perm.logits.iter()) {
            prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        // Attention is the same distribution, reversed.
        let last = hops - 1;
        let mut att = perm.attention[last].as_slice().to_vec();
        att.reverse();
        for (a, b) in base.attention[last].iter().zip(&att) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Duplicating every sentence leaves the read vector unchanged
    /// (softmax renormalizes) and therefore the prediction.
    #[test]
    fn duplicated_story_is_attention_neutral(seed in 0u64..300) {
        let p = params(seed, 2, ControllerKind::Linear);
        let sents = vec![vec![1, 2, 3], vec![4, 5]];
        let q = vec![6];
        let base = forward(&p, &sample_from(sents.clone(), q.clone()));
        let doubled: Vec<Vec<usize>> = sents.iter().chain(sents.iter()).cloned().collect();
        let twice = forward(&p, &sample_from(doubled, q));
        for (a, b) in base.logits.iter().zip(twice.logits.iter()) {
            prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    /// Attention always sums to one and is non-negative, for both
    /// controllers and any hop count.
    #[test]
    fn attention_is_always_a_distribution(
        seed in 0u64..300,
        hops in 1usize..=3,
        gru in any::<bool>(),
    ) {
        let kind = if gru { ControllerKind::Gru } else { ControllerKind::Linear };
        let p = params(seed, hops, kind);
        let t = forward(&p, &sample_from(vec![vec![1], vec![2, 3], vec![4]], vec![5]));
        prop_assert_eq!(t.attention.len(), hops);
        for a in &t.attention {
            prop_assert!((a.sum() - 1.0).abs() < 1e-4);
            prop_assert!(a.iter().all(|&x| x >= 0.0));
        }
        prop_assert!(t.logits.is_finite());
    }

    /// The GRU hidden state is a convex combination of the previous key and
    /// a tanh candidate, so its magnitude is bounded by
    /// `max(|k|_inf, 1)` per hop — it cannot blow up the way an unbounded
    /// linear recurrence can.
    #[test]
    fn gru_hidden_is_bounded(seed in 0u64..300) {
        let p = params(seed, 3, ControllerKind::Gru);
        let t = forward(&p, &sample_from(vec![vec![1, 2], vec![3]], vec![4, 5]));
        let k0_max = t.q_emb.iter().fold(0.0f32, |m, &x| m.max(x.abs())).max(1.0);
        for h in &t.hiddens {
            for &x in h.iter() {
                prop_assert!(x.abs() <= k0_max + 1e-4, "{x} vs bound {k0_max}");
            }
        }
    }
}
