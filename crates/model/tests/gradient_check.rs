//! Finite-difference verification of the manual backward pass.
//!
//! For random tiny models and samples, every analytic gradient entry is
//! compared against a central finite difference of the loss. This is the
//! single most important test in the model crate: all training results and
//! the honesty of the inference-thresholding calibration rest on it.

use mann_babi::EncodedSample;
use memn2n::loss::softmax_cross_entropy;
use memn2n::{backward, forward, ControllerKind, Gradients, ModelConfig, Params};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Loss of (params, sample) as a pure function — used for finite
/// differences.
fn loss_of(params: &Params, sample: &EncodedSample) -> f32 {
    let trace = forward(params, sample);
    softmax_cross_entropy(&trace.logits, sample.answer).0
}

/// Which weight matrix to perturb.
#[derive(Debug, Clone, Copy)]
enum Which {
    EmbA,
    EmbC,
    R,
    O,
    /// One of the six GRU gate matrices, by index into
    /// `GruParams::matrices()` order (Wz, Uz, Wg, Ug, Wh, Uh).
    Gru(usize),
}

fn field_mut(p: &mut Params, which: Which) -> &mut mann_linalg::Matrix {
    match which {
        Which::EmbA => &mut p.w_emb_a,
        Which::EmbC => &mut p.w_emb_c,
        Which::R => &mut p.w_r,
        Which::O => &mut p.w_o,
        Which::Gru(i) => {
            let g = p.gru.as_mut().expect("gru params");
            g.matrices_mut().into_iter().nth(i).expect("gate index")
        }
    }
}

fn field(g: &Gradients, which: Which) -> &mann_linalg::Matrix {
    match which {
        Which::EmbA => &g.w_emb_a,
        Which::EmbC => &g.w_emb_c,
        Which::R => &g.w_r,
        Which::O => &g.w_o,
        Which::Gru(i) => g.gru.as_ref().expect("gru grads").matrices()[i],
    }
}

fn check_all_entries(seed: u64, hops: usize, tie: bool) {
    check_with_controller(seed, hops, tie, ControllerKind::Linear);
}

fn check_with_controller(seed: u64, hops: usize, tie: bool, controller: ControllerKind) {
    let vocab = 9;
    let cfg = ModelConfig {
        embed_dim: 4,
        hops,
        tie_embeddings: tie,
        controller,
    };
    let params = Params::init(cfg, vocab, &mut StdRng::seed_from_u64(seed));
    let sample = EncodedSample {
        sentences: vec![vec![1, 2], vec![3], vec![4, 5, 1]],
        question: vec![6, 7],
        answer: (seed % vocab as u64) as usize,
    };

    let trace = forward(&params, &sample);
    let (_, dz) = softmax_cross_entropy(&trace.logits, sample.answer);
    let mut grads = Gradients::zeros(&params);
    backward(&params, &sample, &trace, &dz, &mut grads);

    let eps = 2e-3f32;
    let mut fields = if tie {
        vec![Which::EmbA, Which::O]
    } else {
        vec![Which::EmbA, Which::EmbC, Which::O]
    };
    match controller {
        ControllerKind::Linear => fields.push(Which::R),
        ControllerKind::Gru => fields.extend((0..6).map(Which::Gru)),
    }
    for which in fields {
        let analytic = field(&grads, which).clone();
        let (rows, cols) = analytic.shape();
        for r in 0..rows {
            for c in 0..cols {
                let mut pp = params.clone();
                field_mut(&mut pp, which)[(r, c)] += eps;
                let lp = loss_of(&pp, &sample);
                let mut pm = params.clone();
                field_mut(&mut pm, which)[(r, c)] -= eps;
                let lm = loss_of(&pm, &sample);
                let numeric = (lp - lm) / (2.0 * eps);
                let a = analytic[(r, c)];
                let tol = 1e-2 + 3e-2 * a.abs().max(numeric.abs());
                assert!(
                    (numeric - a).abs() <= tol,
                    "{which:?}[{r},{c}]: analytic {a} vs numeric {numeric} (seed {seed}, hops {hops}, tie {tie}, {controller:?})"
                );
            }
        }
    }
}

#[test]
fn gradient_check_one_hop() {
    check_all_entries(11, 1, false);
}

#[test]
fn gradient_check_two_hops() {
    check_all_entries(22, 2, false);
}

#[test]
fn gradient_check_three_hops() {
    check_all_entries(33, 3, false);
}

#[test]
fn gradient_check_tied_embeddings() {
    check_all_entries(44, 2, true);
}

#[test]
fn gradient_check_gru_one_hop() {
    check_with_controller(55, 1, false, ControllerKind::Gru);
}

#[test]
fn gradient_check_gru_two_hops() {
    check_with_controller(66, 2, false, ControllerKind::Gru);
}

#[test]
fn gradient_check_gru_three_hops_tied() {
    check_with_controller(77, 3, true, ControllerKind::Gru);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random seeds, hops and tying — the full gradient must match finite
    /// differences every time.
    #[test]
    fn gradient_check_random(seed in 0u64..10_000, hops in 1usize..=3, tie in any::<bool>(), gru in any::<bool>()) {
        let controller = if gru { ControllerKind::Gru } else { ControllerKind::Linear };
        check_with_controller(seed, hops, tie, controller);
    }
}
