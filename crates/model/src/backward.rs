//! Manually derived gradients for the memory network.
//!
//! The backward pass mirrors [`forward`](crate::forward()) hop by hop in
//! reverse:
//!
//! * output layer: `dW_o += dz ⊗ h`, `dh = W_o^T dz`;
//! * controller (Eq 4): `dr = dh`, `dW_r += dh ⊗ k`, `dk += W_r^T dh`;
//! * soft read (Eq 5): `da_i = dr · M_c[i]`, `dM_c[i] += a_i dr`;
//! * softmax (Eq 1): `du_i = a_i (da_i - Σ_j a_j da_j)`,
//!   `dM_a[i] += du_i k`, `dk += Σ_i du_i M_a[i]`;
//! * recurrence (Eq 3): `dh^{t-1} += dk^t` for `t > 1`, else the key
//!   gradient flows into the question embedding;
//! * embedding (Eq 2): memory-row and question gradients scatter into the
//!   embedding columns of the participating words.
//!
//! Correctness is enforced by finite-difference property tests in
//! `tests/gradient_check.rs`.

use mann_babi::EncodedSample;
use mann_linalg::{Matrix, Vector};

use crate::forward::GruTrace;
use crate::{ForwardTrace, GruParams, Params};

/// Gradient accumulator with the same shapes as [`Params`].
#[derive(Debug, Clone, PartialEq)]
pub struct Gradients {
    /// Gradient of the address embedding.
    pub w_emb_a: Matrix,
    /// Gradient of the content embedding (zero and unused when embeddings
    /// are tied — tied content gradients merge into `w_emb_a`).
    pub w_emb_c: Matrix,
    /// Gradient of the controller weight.
    pub w_r: Matrix,
    /// Gradient of the output weight.
    pub w_o: Matrix,
    /// Gradients of the GRU gate weights (same layout as
    /// [`GruParams`]); present iff the model's controller is gated.
    pub gru: Option<GruParams>,
}

impl Gradients {
    /// Zero gradients matching `params`' shapes.
    pub fn zeros(params: &Params) -> Self {
        Self {
            w_emb_a: Matrix::zeros(params.w_emb_a.rows(), params.w_emb_a.cols()),
            w_emb_c: Matrix::zeros(params.w_emb_c.rows(), params.w_emb_c.cols()),
            w_r: Matrix::zeros(params.w_r.rows(), params.w_r.cols()),
            w_o: Matrix::zeros(params.w_o.rows(), params.w_o.cols()),
            gru: params.gru.as_ref().map(|_| {
                let e = params.config.embed_dim;
                GruParams {
                    w_z: Matrix::zeros(e, e),
                    u_z: Matrix::zeros(e, e),
                    w_g: Matrix::zeros(e, e),
                    u_g: Matrix::zeros(e, e),
                    w_h: Matrix::zeros(e, e),
                    u_h: Matrix::zeros(e, e),
                }
            }),
        }
    }

    /// Global L2 norm over all gradient entries.
    pub fn norm(&self) -> f32 {
        let mut total = self.w_emb_a.frobenius_norm().powi(2)
            + self.w_emb_c.frobenius_norm().powi(2)
            + self.w_r.frobenius_norm().powi(2)
            + self.w_o.frobenius_norm().powi(2);
        if let Some(g) = &self.gru {
            total += g
                .matrices()
                .iter()
                .map(|m| m.frobenius_norm().powi(2))
                .sum::<f32>();
        }
        total.sqrt()
    }

    /// Scales all gradients so the global norm does not exceed `max_norm`
    /// (gradient clipping, as in the original MemN2N training recipe).
    /// Returns the pre-clip norm.
    pub fn clip_to(&mut self, max_norm: f32) -> f32 {
        let n = self.norm();
        if n > max_norm && n > 0.0 {
            let s = max_norm / n;
            self.w_emb_a.scale_in_place(s);
            self.w_emb_c.scale_in_place(s);
            self.w_r.scale_in_place(s);
            self.w_o.scale_in_place(s);
            if let Some(g) = &mut self.gru {
                for m in g.matrices_mut() {
                    m.scale_in_place(s);
                }
            }
        }
        n
    }

    /// Heavy-ball momentum update: `self = mu * self + grads` (`self` is
    /// the velocity buffer).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ (velocity built for a different model).
    pub fn blend_into(&mut self, mu: f32, grads: &Gradients) {
        self.w_emb_a.scale_in_place(mu);
        self.w_emb_a.axpy(1.0, &grads.w_emb_a).expect("shape");
        self.w_emb_c.scale_in_place(mu);
        self.w_emb_c.axpy(1.0, &grads.w_emb_c).expect("shape");
        self.w_r.scale_in_place(mu);
        self.w_r.axpy(1.0, &grads.w_r).expect("shape");
        self.w_o.scale_in_place(mu);
        self.w_o.axpy(1.0, &grads.w_o).expect("shape");
        if let (Some(v), Some(g)) = (&mut self.gru, &grads.gru) {
            for (vm, gm) in v.matrices_mut().into_iter().zip(g.matrices()) {
                vm.scale_in_place(mu);
                vm.axpy(1.0, gm).expect("shape");
            }
        }
    }

    /// Resets every gradient entry to zero, keeping shapes and allocations —
    /// the per-sample reset of the zero-allocation training loop.
    pub fn clear(&mut self) {
        self.w_emb_a.clear();
        self.w_emb_c.clear();
        self.w_r.clear();
        self.w_o.clear();
        if let Some(g) = &mut self.gru {
            for m in g.matrices_mut() {
                m.clear();
            }
        }
    }

    /// Applies `params -= lr * grads` (SGD step).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ from `params` (gradient built for a different
    /// model).
    pub fn apply(&self, params: &mut Params, lr: f32) {
        params.w_emb_a.axpy(-lr, &self.w_emb_a).expect("shape");
        if !params.config.tie_embeddings {
            params.w_emb_c.axpy(-lr, &self.w_emb_c).expect("shape");
        }
        params.w_r.axpy(-lr, &self.w_r).expect("shape");
        params.w_o.axpy(-lr, &self.w_o).expect("shape");
        if let (Some(pg), Some(gg)) = (&mut params.gru, &self.gru) {
            for (pm, gm) in pg.matrices_mut().into_iter().zip(gg.matrices()) {
                pm.axpy(-lr, gm).expect("shape");
            }
        }
    }
}

/// Accumulates the gradients of one sample's loss into `grads`.
///
/// `dz` is the loss gradient with respect to the output logits (from
/// [`softmax_cross_entropy`](crate::loss::softmax_cross_entropy)).
///
/// # Panics
///
/// Panics when `trace` does not correspond to (`params`, `sample`) — shape
/// mismatches indicate a programming error.
pub fn backward(
    params: &Params,
    sample: &EncodedSample,
    trace: &ForwardTrace,
    dz: &Vector,
    grads: &mut Gradients,
) {
    let mut scratch = BackwardScratch::default();
    backward_into(params, sample, trace, dz, grads, &mut scratch);
}

/// Reusable scratch for the backward pass; a warm instance runs
/// [`backward_into`] without heap allocation.
#[derive(Debug, Clone, Default)]
pub struct BackwardScratch {
    dh: Vector,
    dk: Vector,
    dr: Vector,
    da: Vector,
    du: Vector,
    /// Target of fused `add_outer` + `matvec_transposed` contributions that
    /// accumulate into `dr`/`dk` (GRU gates).
    tmp: Vector,
    d_mem_a: Matrix,
    d_mem_c: Matrix,
    // GRU gate scratch.
    dz_gate: Vector,
    dht: Vector,
    da_h: Vector,
    dgk: Vector,
    dg: Vector,
    da_g: Vector,
}

/// [`backward`] with caller-provided scratch — the zero-allocation training
/// hot path. Produces bit-identical gradients to [`backward`].
///
/// # Panics
///
/// Panics when `trace` does not correspond to (`params`, `sample`).
pub fn backward_into(
    params: &Params,
    sample: &EncodedSample,
    trace: &ForwardTrace,
    dz: &Vector,
    grads: &mut Gradients,
    scratch: &mut BackwardScratch,
) {
    let hops = params.config.hops;
    let l = sample.sentences.len();
    let BackwardScratch {
        dh,
        dk,
        dr,
        da,
        du,
        tmp,
        d_mem_a,
        d_mem_c,
        dz_gate,
        dht,
        da_h,
        dgk,
        dg,
        da_g,
    } = scratch;

    // Output layer: z = W_o h. Fused: dW_o += dz ⊗ h while dh = W_o^T dz.
    let h_final = trace.final_hidden();
    grads
        .w_o
        .add_outer_fused_matvec_t(1.0, dz, h_final, &params.w_o, dh)
        .expect("w_o shape");

    // Memory-row gradients accumulate across hops, scattered into the
    // embeddings once at the end.
    d_mem_a.resize_zeroed(l, params.config.embed_dim);
    d_mem_c.resize_zeroed(l, params.config.embed_dim);

    for t in (0..hops).rev() {
        let k = &trace.keys[t];
        let a = &trace.attention[t];

        // Controller backward: Eq 4 (linear) or the gated variant.
        match (&params.gru, &trace.gru) {
            (Some(gru), Some(traces)) => {
                let gate_scratch = GruBackwardScratch {
                    dz_gate,
                    dht,
                    da_h,
                    dgk,
                    dg,
                    da_g,
                    tmp,
                };
                gru_backward_into(
                    gru,
                    &traces[t],
                    &trace.reads[t],
                    k,
                    dh,
                    grads.gru.as_mut().expect("gru gradient slot"),
                    dr,
                    dk,
                    gate_scratch,
                );
            }
            _ => {
                dr.copy_from(dh);
                // Fused: dW_r += dh ⊗ k while dk = W_r^T dh.
                grads
                    .w_r
                    .add_outer_fused_matvec_t(1.0, dh, k, &params.w_r, dk)
                    .expect("w_r shape");
            }
        }

        // Eq 5: r = M_c^T a  →  da_i = dr · M_c[i], dM_c[i] += a_i dr.
        // Fused: both stream dr, so one pass computes the dot and the AXPY.
        da.resize_zeroed(l);
        for i in 0..l {
            da[i] =
                Vector::dot_and_axpy(trace.mem_c.row(i), a[i], dr.as_slice(), d_mem_c.row_mut(i));
        }

        // Eq 1 softmax: du_i = a_i (da_i - Σ_j a_j da_j).
        let dot: f32 = a.iter().zip(da.iter()).map(|(x, y)| x * y).sum();
        du.resize_zeroed(l);
        for i in 0..l {
            du[i] = a[i] * (da[i] - dot);
        }

        // u_i = M_a[i] · k  →  dM_a[i] += du_i k, dk += Σ du_i M_a[i].
        for i in 0..l {
            let drow = d_mem_a.row_mut(i);
            for (dst, kv) in drow.iter_mut().zip(k.iter()) {
                *dst += du[i] * kv;
            }
            let mrow = trace.mem_a.row(i);
            for (dst, m) in dk.iter_mut().zip(mrow.iter()) {
                *dst += du[i] * m;
            }
        }

        // Eq 3: the key of hop t is the hidden of hop t-1 (or the question).
        if t > 0 {
            std::mem::swap(dh, dk);
        } else {
            // dq flows into the address embedding through the question words.
            for &w in &sample.question {
                grads.w_emb_a.add_to_col(w, 1.0, dk).expect("emb shape");
            }
        }
    }

    // Eq 2 scatter: memory-row gradients into embedding columns.
    let tie = params.config.tie_embeddings;
    for (i, sent) in sample.sentences.iter().enumerate() {
        let ga = d_mem_a.row(i);
        let gc = d_mem_c.row(i);
        for &w in sent {
            grads
                .w_emb_a
                .add_to_col_slice(w, 1.0, ga)
                .expect("emb shape");
            if tie {
                grads
                    .w_emb_a
                    .add_to_col_slice(w, 1.0, gc)
                    .expect("emb shape");
            } else {
                grads
                    .w_emb_c
                    .add_to_col_slice(w, 1.0, gc)
                    .expect("emb shape");
            }
        }
    }
}

/// Borrowed gate-level scratch handed down from [`BackwardScratch`].
struct GruBackwardScratch<'a> {
    dz_gate: &'a mut Vector,
    dht: &'a mut Vector,
    da_h: &'a mut Vector,
    dgk: &'a mut Vector,
    dg: &'a mut Vector,
    da_g: &'a mut Vector,
    tmp: &'a mut Vector,
}

/// Backward through one GRU step; writes `dr` and `dk` (overwriting both)
/// and accumulates gate gradients. Every `add_outer` + `matvec_transposed`
/// pair over one gate weight is fused into a single pass.
#[allow(clippy::too_many_arguments)]
fn gru_backward_into(
    gru: &GruParams,
    t: &GruTrace,
    r: &Vector,
    k: &Vector,
    dh: &Vector,
    grads: &mut GruParams,
    dr: &mut Vector,
    dk: &mut Vector,
    s: GruBackwardScratch<'_>,
) {
    let e = dh.len();
    let GruBackwardScratch {
        dz_gate,
        dht,
        da_h,
        dgk,
        dg,
        da_g,
        tmp,
    } = s;
    // h = (1-z) ⊙ k + z ⊙ h̃.
    dk.resize_zeroed(e);
    dz_gate.resize_zeroed(e);
    dht.resize_zeroed(e);
    for i in 0..e {
        dk[i] = dh[i] * (1.0 - t.z[i]);
        dz_gate[i] = dh[i] * (t.h_tilde[i] - k[i]);
        dht[i] = dh[i] * t.z[i];
    }
    // h̃ = tanh(a_h), a_h = W_h r + U_h gk.
    da_h.resize_zeroed(e);
    for i in 0..e {
        let h = t.h_tilde[i];
        da_h[i] = dht[i] * (1.0 - h * h);
    }
    grads
        .w_h
        .add_outer_fused_matvec_t(1.0, da_h, r, &gru.w_h, dr)
        .expect("w_h shape");
    grads
        .u_h
        .add_outer_fused_matvec_t(1.0, da_h, &t.gk, &gru.u_h, dgk)
        .expect("u_h shape");
    // gk = g ⊙ k.
    dg.resize_zeroed(e);
    for i in 0..e {
        dg[i] = dgk[i] * k[i];
        dk[i] += dgk[i] * t.g[i];
    }
    // g = σ(a_g), a_g = W_g r + U_g k.
    da_g.resize_zeroed(e);
    for i in 0..e {
        let g = t.g[i];
        da_g[i] = dg[i] * g * (1.0 - g);
    }
    grads
        .w_g
        .add_outer_fused_matvec_t(1.0, da_g, r, &gru.w_g, tmp)
        .expect("w_g shape");
    dr.axpy(1.0, tmp).expect("dim");
    grads
        .u_g
        .add_outer_fused_matvec_t(1.0, da_g, k, &gru.u_g, tmp)
        .expect("u_g shape");
    dk.axpy(1.0, tmp).expect("dim");
    // z = σ(a_z), a_z = W_z r + U_z k. Reuse the dz_gate buffer for da_z.
    for i in 0..e {
        let z = t.z[i];
        dz_gate[i] *= z * (1.0 - z);
    }
    grads
        .w_z
        .add_outer_fused_matvec_t(1.0, dz_gate, r, &gru.w_z, tmp)
        .expect("w_z shape");
    dr.axpy(1.0, tmp).expect("dim");
    grads
        .u_z
        .add_outer_fused_matvec_t(1.0, dz_gate, k, &gru.u_z, tmp)
        .expect("u_z shape");
    dk.axpy(1.0, tmp).expect("dim");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use crate::{forward, ModelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(tie: bool) -> (Params, EncodedSample) {
        let cfg = ModelConfig {
            embed_dim: 5,
            hops: 2,
            tie_embeddings: tie,
            ..ModelConfig::default()
        };
        let params = Params::init(cfg, 10, &mut StdRng::seed_from_u64(3));
        let sample = EncodedSample {
            sentences: vec![vec![1, 2], vec![3, 4, 5]],
            question: vec![6, 7],
            answer: 2,
        };
        (params, sample)
    }

    fn grads_for(params: &Params, sample: &EncodedSample) -> Gradients {
        let trace = forward(params, sample);
        let (_, dz) = softmax_cross_entropy(&trace.logits, sample.answer);
        let mut g = Gradients::zeros(params);
        backward(params, sample, &trace, &dz, &mut g);
        g
    }

    #[test]
    fn gradients_are_finite_and_nonzero() {
        let (p, s) = setup(false);
        let g = grads_for(&p, &s);
        assert!(g.w_emb_a.is_finite());
        assert!(g.norm() > 0.0);
    }

    #[test]
    fn untouched_vocabulary_columns_have_zero_gradient() {
        let (p, s) = setup(false);
        let g = grads_for(&p, &s);
        // Word indices 8 and 9 never occur.
        for &w in &[8usize, 9] {
            assert!(g.w_emb_a.col(w).iter().all(|&x| x == 0.0));
            assert!(g.w_emb_c.col(w).iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn tied_embeddings_keep_content_gradient_zero() {
        let (p, s) = setup(true);
        let g = grads_for(&p, &s);
        assert!(g.w_emb_c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn clip_bounds_the_norm() {
        let (p, s) = setup(false);
        let mut g = grads_for(&p, &s);
        let before = g.clip_to(1e-3);
        assert!(before > 1e-3);
        assert!(g.norm() <= 1e-3 * 1.01);
    }

    #[test]
    fn sgd_step_reduces_loss() {
        let (mut p, s) = setup(false);
        let trace = forward(&p, &s);
        let (loss0, _) = softmax_cross_entropy(&trace.logits, s.answer);
        for _ in 0..20 {
            let g = grads_for(&p, &s);
            g.apply(&mut p, 0.05);
        }
        let trace1 = forward(&p, &s);
        let (loss1, _) = softmax_cross_entropy(&trace1.logits, s.answer);
        assert!(loss1 < loss0, "{loss1} !< {loss0}");
    }
}
