//! FLOP accounting for one inference.
//!
//! Table I reports energy efficiency as FLOPS/kJ; this module counts the
//! floating-point work of each phase of one forward pass so the experiment
//! harness can divide identical work by measured (simulated) energy. A
//! multiply-accumulate counts as 2 FLOPs; `exp` and divide count as 1 each
//! (the paper normalizes the same work across platforms, so the convention
//! only needs to be consistent).

use mann_babi::EncodedSample;
use serde::{Deserialize, Serialize};

use crate::ModelConfig;

/// FLOPs of one inference, broken down by pipeline phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlopBreakdown {
    /// INPUT & WRITE: index-based embedding of story and question (Eq 2).
    pub write: u64,
    /// MEM addressing: dot products, exp, normalization (Eq 1).
    pub addressing: u64,
    /// MEM read: weighted sum of content rows (Eq 5).
    pub read: u64,
    /// READ controller: `W_r k` and the add (Eq 4).
    pub controller: u64,
    /// OUTPUT layer: `W_o h` (Eq 6). With inference thresholding only the
    /// compared rows are counted.
    pub output: u64,
}

impl FlopBreakdown {
    /// Total FLOPs across all phases.
    pub fn total(&self) -> u64 {
        self.write + self.addressing + self.read + self.controller + self.output
    }
}

/// Counts the FLOPs of one full inference (no thresholding: all `|I|` output
/// rows are computed).
pub fn count_inference(
    config: &ModelConfig,
    vocab_size: usize,
    sample: &EncodedSample,
) -> FlopBreakdown {
    count_inference_with_output_rows(config, vocab_size, sample, vocab_size)
}

/// Counts the FLOPs of one inference in which the output layer evaluated
/// only `output_rows` of the `|I|` logits (inference thresholding stops
/// early).
pub fn count_inference_with_output_rows(
    config: &ModelConfig,
    vocab_size: usize,
    sample: &EncodedSample,
    output_rows: usize,
) -> FlopBreakdown {
    let e = config.embed_dim as u64;
    let l = sample.sentences.len() as u64;
    let hops = config.hops as u64;
    let story_words = sample.story_words() as u64;
    let q_words = sample.question.len() as u64;
    let _ = vocab_size;

    // Eq 2: one column add per word per embedding (address + content), plus
    // the question into the address embedding.
    let write = (story_words * e) * 2 + q_words * e;

    // Per hop: L dot products of length E (2·L·E), L exps, L−1 sum adds,
    // L divides.
    let addressing = hops * (2 * l * e + l + l.saturating_sub(1) + l);

    // Eq 5: weighted accumulation of L rows of length E (2·L·E per hop).
    let read = hops * 2 * l * e;

    // Eq 4: W_r k (2·E·E) plus the elementwise add (E) per hop.
    let controller = hops * (2 * e * e + e);

    // Eq 6: one length-E dot product (2·E) plus one compare (1) per
    // evaluated row.
    let output = output_rows as u64 * (2 * e + 1);

    FlopBreakdown {
        write,
        addressing,
        read,
        controller,
        output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EncodedSample {
        EncodedSample {
            sentences: vec![vec![1, 2, 3], vec![4, 5]],
            question: vec![6, 7],
            answer: 1,
        }
    }

    fn config() -> ModelConfig {
        ModelConfig {
            embed_dim: 8,
            hops: 2,
            tie_embeddings: false,
            ..ModelConfig::default()
        }
    }

    #[test]
    fn totals_add_up() {
        let b = count_inference(&config(), 50, &sample());
        assert_eq!(
            b.total(),
            b.write + b.addressing + b.read + b.controller + b.output
        );
    }

    #[test]
    fn write_scales_with_story_words() {
        let b = count_inference(&config(), 50, &sample());
        // 5 story words * 8 * 2 + 2 question words * 8.
        assert_eq!(b.write, 5 * 8 * 2 + 2 * 8);
    }

    #[test]
    fn output_dominates_for_large_vocab() {
        let b = count_inference(&config(), 5000, &sample());
        assert!(b.output > b.addressing + b.read + b.controller);
    }

    #[test]
    fn thresholding_reduces_only_output() {
        let full = count_inference(&config(), 50, &sample());
        let early = count_inference_with_output_rows(&config(), 50, &sample(), 5);
        assert_eq!(full.write, early.write);
        assert_eq!(full.addressing, early.addressing);
        assert!(early.output < full.output);
        assert_eq!(early.output, 5 * (2 * 8 + 1));
    }

    #[test]
    fn more_hops_cost_more() {
        let two = count_inference(&config(), 50, &sample());
        let three = count_inference(
            &ModelConfig {
                hops: 3,
                ..config()
            },
            50,
            &sample(),
        );
        assert!(three.addressing > two.addressing);
        assert!(three.controller > two.controller);
        assert_eq!(three.write, two.write);
    }
}
