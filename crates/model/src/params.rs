//! Trainable parameters.

use mann_linalg::{init, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::ControllerKind;
use crate::ModelConfig;

/// GRU controller weights (all `E x E`): `W_*` act on the read vector `r`,
/// `U_*` on the previous key `k`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GruParams {
    /// Update-gate input weight.
    pub w_z: Matrix,
    /// Update-gate recurrent weight.
    pub u_z: Matrix,
    /// Reset-gate input weight.
    pub w_g: Matrix,
    /// Reset-gate recurrent weight.
    pub u_g: Matrix,
    /// Candidate input weight.
    pub w_h: Matrix,
    /// Candidate recurrent weight.
    pub u_h: Matrix,
}

impl GruParams {
    /// Initializes all six weights with `N(0, std_dev)`.
    pub fn init<R: Rng>(embed_dim: usize, std_dev: f32, rng: &mut R) -> Self {
        let mut m = || init::gaussian(embed_dim, embed_dim, std_dev, rng);
        Self {
            w_z: m(),
            u_z: m(),
            w_g: m(),
            u_g: m(),
            w_h: m(),
            u_h: m(),
        }
    }

    /// Iterates over the six weight matrices (fixed order: Wz, Uz, Wg, Ug,
    /// Wh, Uh).
    pub fn matrices(&self) -> [&Matrix; 6] {
        [
            &self.w_z, &self.u_z, &self.w_g, &self.u_g, &self.w_h, &self.u_h,
        ]
    }

    /// Mutable counterpart of [`GruParams::matrices`].
    pub fn matrices_mut(&mut self) -> [&mut Matrix; 6] {
        [
            &mut self.w_z,
            &mut self.u_z,
            &mut self.w_g,
            &mut self.u_g,
            &mut self.w_h,
            &mut self.u_h,
        ]
    }
}

/// The trainable weights of the memory network.
///
/// Shapes (with `E = embed_dim`, `V = vocab_size`):
///
/// | weight    | shape   | role                                   |
/// |-----------|---------|----------------------------------------|
/// | `w_emb_a` | `E x V` | address embedding (Eq 1 keys, question)|
/// | `w_emb_c` | `E x V` | content embedding (Eq 5 values)        |
/// | `w_r`     | `E x E` | controller weight (Eq 4)               |
/// | `w_o`     | `V x E` | output layer (Eq 6)                    |
///
/// With [`ModelConfig::tie_embeddings`] the content embedding aliases the
/// address embedding at forward time and gradients merge into `w_emb_a`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Address embedding `W_emb^a` (`E x V`).
    pub w_emb_a: Matrix,
    /// Content embedding `W_emb^c` (`E x V`).
    pub w_emb_c: Matrix,
    /// Controller weight `W_r` (`E x E`).
    pub w_r: Matrix,
    /// Output weight `W_o` (`V x E`).
    pub w_o: Matrix,
    /// GRU controller weights; present iff
    /// `config.controller == ControllerKind::Gru` (the linear controller
    /// uses `w_r` alone).
    pub gru: Option<GruParams>,
    /// Copied from the generating config; consulted by forward/backward.
    pub config: ModelConfig,
    /// Output dimension `|I|` (vocabulary size).
    pub vocab_size: usize,
}

impl Params {
    /// Initializes parameters with `N(0, 0.1)` weights, the original MemN2N
    /// recipe.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid or `vocab_size == 0`.
    pub fn init<R: Rng>(config: ModelConfig, vocab_size: usize, rng: &mut R) -> Self {
        config.validate().expect("valid config");
        assert!(vocab_size > 0, "vocab_size must be positive");
        let e = config.embed_dim;
        Self {
            w_emb_a: init::gaussian(e, vocab_size, 0.1, rng),
            w_emb_c: init::gaussian(e, vocab_size, 0.1, rng),
            w_r: init::gaussian(e, e, 0.1, rng),
            w_o: init::gaussian(vocab_size, e, 0.1, rng),
            gru: match config.controller {
                ControllerKind::Linear => None,
                ControllerKind::Gru => Some(GruParams::init(e, 0.1, rng)),
            },
            config,
            vocab_size,
        }
    }

    /// The content embedding actually used at forward time (aliases the
    /// address embedding when tied).
    pub fn content_embedding(&self) -> &Matrix {
        if self.config.tie_embeddings {
            &self.w_emb_a
        } else {
            &self.w_emb_c
        }
    }

    /// Total number of scalar parameters (tied embeddings counted once).
    pub fn parameter_count(&self) -> usize {
        let emb = self.w_emb_a.rows() * self.w_emb_a.cols();
        let emb_total = if self.config.tie_embeddings {
            emb
        } else {
            2 * emb
        };
        let controller = match &self.gru {
            None => self.w_r.rows() * self.w_r.cols(),
            Some(g) => g.matrices().iter().map(|m| m.rows() * m.cols()).sum(),
        };
        emb_total + controller + self.w_o.rows() * self.w_o.cols()
    }

    /// True when every weight is finite — used as a training-loop sanity
    /// check.
    pub fn is_finite(&self) -> bool {
        self.w_emb_a.is_finite()
            && self.w_emb_c.is_finite()
            && self.w_r.is_finite()
            && self.w_o.is_finite()
            && self
                .gru
                .as_ref()
                .is_none_or(|g| g.matrices().iter().all(|m| m.is_finite()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(tie: bool) -> Params {
        let cfg = ModelConfig {
            embed_dim: 8,
            hops: 2,
            tie_embeddings: tie,
            ..ModelConfig::default()
        };
        Params::init(cfg, 30, &mut StdRng::seed_from_u64(5))
    }

    #[test]
    fn shapes_follow_config() {
        let p = params(false);
        assert_eq!(p.w_emb_a.shape(), (8, 30));
        assert_eq!(p.w_emb_c.shape(), (8, 30));
        assert_eq!(p.w_r.shape(), (8, 8));
        assert_eq!(p.w_o.shape(), (30, 8));
    }

    #[test]
    fn tied_content_embedding_aliases_address() {
        let p = params(true);
        assert_eq!(p.content_embedding(), &p.w_emb_a);
        let q = params(false);
        assert_eq!(q.content_embedding(), &q.w_emb_c);
    }

    #[test]
    fn parameter_count_respects_tying() {
        let untied = params(false).parameter_count();
        let tied = params(true).parameter_count();
        assert_eq!(untied - tied, 8 * 30);
    }

    #[test]
    fn init_is_finite_and_seeded() {
        let p = params(false);
        assert!(p.is_finite());
        assert_eq!(p, params(false));
    }

    #[test]
    #[should_panic(expected = "vocab_size")]
    fn zero_vocab_panics() {
        let _ = Params::init(ModelConfig::default(), 0, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn gru_config_allocates_gate_weights() {
        let cfg = ModelConfig {
            embed_dim: 6,
            hops: 2,
            tie_embeddings: false,
            controller: ControllerKind::Gru,
        };
        let p = Params::init(cfg, 20, &mut StdRng::seed_from_u64(9));
        let g = p.gru.as_ref().expect("gru weights");
        for m in g.matrices() {
            assert_eq!(m.shape(), (6, 6));
        }
        // 6 E x E gate weights replace the single linear W_r.
        let linear = Params::init(
            ModelConfig {
                controller: ControllerKind::Linear,
                ..cfg
            },
            20,
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(p.parameter_count() - linear.parameter_count(), 5 * 6 * 6);
    }

    #[test]
    fn serde_round_trip() {
        let p = params(false);
        let json = serde_json::to_string(&p).unwrap();
        let q: Params = serde_json::from_str(&json).unwrap();
        assert_eq!(p, q);
    }
}
