//! End-to-end memory network (MANN) with from-scratch training.
//!
//! This crate implements the model of Park et al. (DATE 2019), Eqs 1–6: an
//! end-to-end memory network in which
//!
//! * each story sentence is embedded by **summing embedding columns** over
//!   its word indices (Eq 2) into an *address memory* `M_a` and a *content
//!   memory* `M_c`;
//! * the read key is the embedded question on the first hop and the
//!   controller output thereafter (Eq 3);
//! * content-based addressing computes attention
//!   `a_i = softmax(M_a[i] · k)` (Eq 1) and the read vector `r = M_c^T a`
//!   (Eq 5);
//! * the controller emits `h = r + W_r k` (Eq 4);
//! * the output layer predicts `argmax_i (W_o[i] · h)` (Eq 6).
//!
//! Training is plain SGD with manually derived gradients ([`backward()`]),
//! verified against finite differences by property tests. The paper runs
//! inference from pre-trained models; training in-process is what makes the
//! inference-thresholding calibration (Algorithm 1) honest, because it needs
//! real logit distributions.
//!
//! # Example
//!
//! ```
//! use mann_babi::{DatasetBuilder, TaskId};
//! use memn2n::{ModelConfig, Trainer, TrainConfig};
//!
//! let data = DatasetBuilder::new().train_samples(50).test_samples(10).seed(3)
//!     .build_task(TaskId::SingleSupportingFact);
//! let mut trainer = Trainer::from_task_data(&data, ModelConfig::default(), TrainConfig {
//!     epochs: 3, ..TrainConfig::default()
//! });
//! let report = trainer.train();
//! assert!(report.final_train_accuracy >= 0.0);
//! ```

pub mod backward;
pub mod flops;
pub mod forward;
pub mod loss;

mod config;
mod params;
mod trainer;
mod workspace;

pub use backward::{backward, backward_into, BackwardScratch, Gradients};
pub use config::{ControllerKind, ModelConfig};
pub use forward::{forward, forward_batch, forward_into, ForwardScratch, ForwardTrace};
pub use params::{GruParams, Params};
pub use trainer::{train_step, TrainConfig, TrainReport, TrainedModel, Trainer};
pub use workspace::Workspace;
