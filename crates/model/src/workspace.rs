//! Reusable per-thread buffers for allocation-free inference and training.

use mann_babi::EncodedSample;

use crate::backward::{backward_into, BackwardScratch};
use crate::forward::{forward_into, ForwardScratch};
use crate::loss::softmax_cross_entropy_into;
use mann_linalg::Vector;

use crate::{ForwardTrace, Gradients, Params};

/// All mutable state one thread needs to run forward passes, losses, and
/// backward passes without heap allocation after warm-up.
///
/// Buffers are resized in place per sample, so one workspace serves samples
/// of any story length. Results are bit-identical to the allocating
/// [`forward`](crate::forward()) / [`backward`](crate::backward()) entry
/// points — the workspace only changes where intermediates live, not the
/// order of floating-point operations.
///
/// A workspace is tied to the *shapes* of the [`Params`] it was built for
/// (through [`Workspace::grads`]); build a new one per model, and one per
/// thread when evaluating in parallel.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// The forward trace of the most recent [`Workspace::forward`] call.
    pub trace: ForwardTrace,
    /// Gradient accumulator; cleared + filled by [`Workspace::backward`].
    pub grads: Gradients,
    /// Loss gradient buffer filled by [`Workspace::loss`].
    pub dz: Vector,
    fwd: ForwardScratch,
    bwd: BackwardScratch,
}

impl Workspace {
    /// Builds a workspace with gradient storage matching `params`' shapes.
    pub fn for_params(params: &Params) -> Self {
        Self {
            trace: ForwardTrace::default(),
            grads: Gradients::zeros(params),
            dz: Vector::default(),
            fwd: ForwardScratch::default(),
            bwd: BackwardScratch::default(),
        }
    }

    /// Runs the forward pass into [`Workspace::trace`] and returns it.
    pub fn forward(&mut self, params: &Params, sample: &EncodedSample) -> &ForwardTrace {
        forward_into(params, sample, &mut self.trace, &mut self.fwd);
        &self.trace
    }

    /// Softmax cross-entropy of the current trace's logits against
    /// `target`; the gradient lands in [`Workspace::dz`].
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range or no forward pass has run.
    pub fn loss(&mut self, target: usize) -> f32 {
        softmax_cross_entropy_into(&self.trace.logits, target, &mut self.dz)
    }

    /// Accumulates the gradients of the current trace into
    /// [`Workspace::grads`] (call [`Gradients::clear`] first for a plain,
    /// non-accumulated step). Uses [`Workspace::dz`] as the logit gradient.
    ///
    /// # Panics
    ///
    /// Panics when the trace does not correspond to (`params`, `sample`).
    pub fn backward(&mut self, params: &Params, sample: &EncodedSample) {
        let Self {
            trace,
            grads,
            dz,
            bwd,
            ..
        } = self;
        backward_into(params, sample, trace, dz, grads, bwd);
    }

    /// Forward pass + prediction (Eq 6) without allocation.
    pub fn predict(&mut self, params: &Params, sample: &EncodedSample) -> usize {
        self.forward(params, sample).prediction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use crate::{backward, forward, ModelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(controller: crate::ControllerKind) -> (Params, Vec<EncodedSample>) {
        let cfg = ModelConfig {
            embed_dim: 6,
            hops: 3,
            tie_embeddings: false,
            controller,
        };
        let params = Params::init(cfg, 12, &mut StdRng::seed_from_u64(11));
        // Different story lengths force buffer resizing between samples.
        let samples = vec![
            EncodedSample {
                sentences: vec![vec![1, 2, 3], vec![4, 5]],
                question: vec![10, 11],
                answer: 3,
            },
            EncodedSample {
                sentences: vec![vec![6], vec![7, 8], vec![9, 1, 2], vec![3]],
                question: vec![4],
                answer: 7,
            },
            EncodedSample {
                sentences: vec![vec![0]],
                question: vec![5, 6, 7],
                answer: 1,
            },
        ];
        (params, samples)
    }

    #[test]
    fn workspace_forward_is_bit_identical_to_allocating_forward() {
        for controller in [crate::ControllerKind::Linear, crate::ControllerKind::Gru] {
            let (params, samples) = setup(controller);
            let mut ws = Workspace::for_params(&params);
            for s in &samples {
                let fresh = forward(&params, s);
                let reused = ws.forward(&params, s);
                assert_eq!(reused, &fresh);
            }
        }
    }

    #[test]
    fn workspace_backward_is_bit_identical_to_allocating_backward() {
        for controller in [crate::ControllerKind::Linear, crate::ControllerKind::Gru] {
            let (params, samples) = setup(controller);
            let mut ws = Workspace::for_params(&params);
            for s in &samples {
                let trace = forward(&params, s);
                let (loss, dz) = softmax_cross_entropy(&trace.logits, s.answer);
                let mut fresh = Gradients::zeros(&params);
                backward(&params, s, &trace, &dz, &mut fresh);

                ws.forward(&params, s);
                let ws_loss = ws.loss(s.answer);
                ws.grads.clear();
                ws.backward(&params, s);
                assert_eq!(ws_loss.to_bits(), loss.to_bits());
                assert_eq!(ws.grads, fresh);
            }
        }
    }

    #[test]
    fn gradients_clear_zeroes_everything() {
        let (params, samples) = setup(crate::ControllerKind::Gru);
        let mut ws = Workspace::for_params(&params);
        ws.forward(&params, &samples[0]);
        ws.loss(samples[0].answer);
        ws.backward(&params, &samples[0]);
        assert!(ws.grads.norm() > 0.0);
        ws.grads.clear();
        assert_eq!(ws.grads.norm(), 0.0);
    }
}
