//! Softmax cross-entropy loss.

use mann_linalg::Vector;

/// Cross-entropy of the softmax of `logits` against `target`, plus the
/// gradient with respect to the logits (`softmax(z) - onehot(target)`).
///
/// # Panics
///
/// Panics if `target` is out of range or `logits` is empty.
pub fn softmax_cross_entropy(logits: &Vector, target: usize) -> (f32, Vector) {
    let mut grad = Vector::zeros(0);
    let loss = softmax_cross_entropy_into(logits, target, &mut grad);
    (loss, grad)
}

/// [`softmax_cross_entropy`] with the gradient written into a caller-owned
/// buffer (resized, capacity reused) — the zero-allocation training path.
/// Bit-identical to the allocating variant.
///
/// # Panics
///
/// Panics if `target` is out of range or `logits` is empty.
pub fn softmax_cross_entropy_into(logits: &Vector, target: usize, grad: &mut Vector) -> f32 {
    assert!(!logits.is_empty(), "empty logits");
    assert!(target < logits.len(), "target {target} out of range");
    grad.softmax_into(logits);
    let loss = -(grad[target].max(1e-12)).ln();
    grad[target] -= 1.0;
    loss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_n() {
        let (loss, _) = softmax_cross_entropy(&Vector::zeros(4), 2);
        assert!((loss - 4f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut z = Vector::zeros(5);
        z[1] = 20.0;
        let (loss, grad) = softmax_cross_entropy(&z, 1);
        assert!(loss < 1e-3);
        assert!(grad[1].abs() < 1e-3);
    }

    #[test]
    fn gradient_sums_to_zero() {
        let z = Vector::from(vec![0.3, -1.0, 2.5, 0.0]);
        let (_, grad) = softmax_cross_entropy(&z, 0);
        assert!(grad.sum().abs() < 1e-5);
    }

    #[test]
    fn gradient_is_negative_at_target_when_wrong() {
        let mut z = Vector::zeros(3);
        z[0] = 5.0; // confident, but target is 2
        let (_, grad) = softmax_cross_entropy(&z, 2);
        assert!(grad[2] < 0.0);
        assert!(grad[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_target_panics() {
        let _ = softmax_cross_entropy(&Vector::zeros(2), 2);
    }

    #[test]
    fn finite_difference_matches_gradient() {
        let z = Vector::from(vec![0.5, -0.25, 1.0]);
        let (_, grad) = softmax_cross_entropy(&z, 1);
        let eps = 1e-3;
        for i in 0..3 {
            let mut zp = z.clone();
            zp[i] += eps;
            let mut zm = z.clone();
            zm[i] -= eps;
            let (lp, _) = softmax_cross_entropy(&zp, 1);
            let (lm, _) = softmax_cross_entropy(&zm, 1);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad[i]).abs() < 1e-3, "{numeric} vs {}", grad[i]);
        }
    }
}
