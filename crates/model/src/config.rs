//! Model hyper-parameters.

use serde::{Deserialize, Serialize};

/// The READ module's recurrence.
///
/// The paper's controller is the linear form of Eq 4 (`h = r + W_r k`).
/// [`ControllerKind::Gru`] swaps in a gated recurrent unit — the controller
/// family of the LSTM/GRU accelerators the paper cites in §VI-A — to study
/// what gating costs on the dataflow architecture (three extra matrix
/// products plus sigmoid/tanh units per hop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ControllerKind {
    /// Eq 4: `h = r + W_r k`.
    #[default]
    Linear,
    /// `h = (1-z) ⊙ k + z ⊙ tanh(W_h r + U_h (g ⊙ k))` with update gate
    /// `z = σ(W_z r + U_z k)` and reset gate `g = σ(W_g r + U_g k)`.
    Gru,
}

/// Architecture hyper-parameters of the memory network.
///
/// The paper's NLP setting has `|I| = vocab_size >> embed_dim = |E|`, which
/// is what makes the sequential output layer the inference bottleneck and
/// inference thresholding worthwhile.
///
/// ```
/// use memn2n::ModelConfig;
///
/// let cfg = ModelConfig { embed_dim: 24, hops: 2, ..ModelConfig::default() };
/// assert_eq!(cfg.hops, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Embedding dimension `|E|`.
    pub embed_dim: usize,
    /// Number of recurrent read hops `T` (the READ module loops this many
    /// times).
    pub hops: usize,
    /// When true, the address and content embeddings share one weight
    /// matrix, as in the paper's single-`W_emb` formulation; when false they
    /// are trained separately (adjacent sharing), which learns better.
    pub tie_embeddings: bool,
    /// The READ controller recurrence (paper: linear).
    pub controller: ControllerKind,
}

impl Default for ModelConfig {
    /// MemN2N-on-bAbI defaults: 32-dimensional embeddings, 3 hops, untied.
    fn default() -> Self {
        Self {
            embed_dim: 32,
            hops: 3,
            tie_embeddings: false,
            controller: ControllerKind::Linear,
        }
    }
}

impl ModelConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint
    /// (`embed_dim == 0` or `hops == 0`).
    pub fn validate(&self) -> Result<(), String> {
        if self.embed_dim == 0 {
            return Err("embed_dim must be positive".to_owned());
        }
        if self.hops == 0 {
            return Err("hops must be positive".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ModelConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(ModelConfig {
            embed_dim: 0,
            ..ModelConfig::default()
        }
        .validate()
        .is_err());
        assert!(ModelConfig {
            hops: 0,
            ..ModelConfig::default()
        }
        .validate()
        .is_err());
    }
}
