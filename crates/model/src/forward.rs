//! The forward pass (paper Eqs 1–6) with a full intermediate trace.

use mann_babi::EncodedSample;
use mann_linalg::activation::sigmoid;
use mann_linalg::{Matrix, Vector};

use crate::{GruParams, Params};

/// Per-hop intermediates of the GRU controller, retained for backprop.
#[derive(Debug, Clone, PartialEq)]
pub struct GruTrace {
    /// Update gate `z = σ(W_z r + U_z k)`.
    pub z: Vector,
    /// Reset gate `g = σ(W_g r + U_g k)`.
    pub g: Vector,
    /// Gated state `g ⊙ k`.
    pub gk: Vector,
    /// Candidate `h̃ = tanh(W_h r + U_h (g ⊙ k))`.
    pub h_tilde: Vector,
}

/// One GRU controller step: `h = (1-z) ⊙ k + z ⊙ h̃`.
pub(crate) fn gru_step(gru: &GruParams, r: &Vector, k: &Vector) -> (Vector, GruTrace) {
    let az = gru
        .w_z
        .matvec(r)
        .expect("gate width")
        .add(&gru.u_z.matvec(k).expect("gate width"))
        .expect("same dim");
    let z: Vector = az.iter().map(|&x| sigmoid(x)).collect();
    let ag = gru
        .w_g
        .matvec(r)
        .expect("gate width")
        .add(&gru.u_g.matvec(k).expect("gate width"))
        .expect("same dim");
    let g: Vector = ag.iter().map(|&x| sigmoid(x)).collect();
    let gk = g.hadamard(k).expect("same dim");
    let ah = gru
        .w_h
        .matvec(r)
        .expect("gate width")
        .add(&gru.u_h.matvec(&gk).expect("gate width"))
        .expect("same dim");
    let h_tilde: Vector = ah.iter().map(|&x| x.tanh()).collect();
    let h: Vector = z
        .iter()
        .zip(k.iter())
        .zip(h_tilde.iter())
        .map(|((&zv, &kv), &hv)| (1.0 - zv) * kv + zv * hv)
        .collect();
    (
        h,
        GruTrace {
            z,
            g,
            gk,
            h_tilde,
        },
    )
}

/// Every intermediate of one forward pass, retained for backprop, for
/// attention-trace demos, and for the hardware simulator's functional
/// cross-check.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardTrace {
    /// Address memory `M_a` (`L x E`, one row per sentence) — Eq 2.
    pub mem_a: Matrix,
    /// Content memory `M_c` (`L x E`) — Eq 2.
    pub mem_c: Matrix,
    /// Embedded question (the first read key, Eq 3).
    pub q_emb: Vector,
    /// Read key per hop (`hops` entries; `keys[0] == q_emb`).
    pub keys: Vec<Vector>,
    /// Raw attention scores `M_a · k` per hop (pre-softmax).
    pub scores: Vec<Vector>,
    /// Attention weights per hop (Eq 1).
    pub attention: Vec<Vector>,
    /// Read vectors per hop (Eq 5).
    pub reads: Vec<Vector>,
    /// Controller outputs per hop (Eq 4); the last is the output-layer
    /// input.
    pub hiddens: Vec<Vector>,
    /// Output logits `z = W_o h` (Eq 6).
    pub logits: Vector,
    /// GRU gate traces per hop, when the controller is gated.
    pub gru: Option<Vec<GruTrace>>,
}

impl ForwardTrace {
    /// The controller state fed to the output layer (`h^T`).
    pub fn final_hidden(&self) -> &Vector {
        self.hiddens.last().expect("at least one hop")
    }

    /// The predicted label (Eq 6).
    pub fn prediction(&self) -> usize {
        self.logits.argmax().expect("non-empty logits")
    }
}

/// Embeds the story into address/content memories and the question into the
/// first read key, then runs `hops` read iterations and the output layer.
///
/// # Panics
///
/// Panics if any word index is outside the vocabulary the parameters were
/// initialized for (an encoder/model mismatch is a programming error, not a
/// runtime condition).
pub fn forward(params: &Params, sample: &EncodedSample) -> ForwardTrace {
    let e = params.config.embed_dim;
    let l = sample.sentences.len();
    let w_a = &params.w_emb_a;
    let w_c = params.content_embedding();

    // Eq 2: index-based embedding — sum one column per word.
    let mut mem_a = Matrix::zeros(l, e);
    let mut mem_c = Matrix::zeros(l, e);
    for (i, sent) in sample.sentences.iter().enumerate() {
        let va = w_a.sum_cols(sent);
        let vc = w_c.sum_cols(sent);
        mem_a.row_mut(i).copy_from_slice(va.as_slice());
        mem_c.row_mut(i).copy_from_slice(vc.as_slice());
    }
    let q_emb = w_a.sum_cols(&sample.question);

    let hops = params.config.hops;
    let mut keys = Vec::with_capacity(hops);
    let mut scores = Vec::with_capacity(hops);
    let mut attention = Vec::with_capacity(hops);
    let mut reads = Vec::with_capacity(hops);
    let mut hiddens = Vec::with_capacity(hops);
    let mut gru_traces = params.gru.as_ref().map(|_| Vec::with_capacity(hops));

    let mut k = q_emb.clone();
    for _ in 0..hops {
        // Eq 1: content-based addressing.
        let u = mem_a.matvec(&k).expect("key matches memory width");
        let a = u.softmax();
        // Eq 5: soft read.
        let r = mem_c.matvec_transposed(&a).expect("attention matches rows");
        // Controller: Eq 4 (linear) or the gated variant.
        let h = match (&params.gru, &mut gru_traces) {
            (Some(gru), Some(traces)) => {
                let (h, t) = gru_step(gru, &r, &k);
                traces.push(t);
                h
            }
            _ => {
                let wk = params.w_r.matvec(&k).expect("controller width");
                r.add(&wk).expect("same embed dim")
            }
        };
        keys.push(k.clone());
        scores.push(u);
        attention.push(a);
        reads.push(r);
        hiddens.push(h.clone());
        k = h; // Eq 3: next key is the controller output.
    }

    // Eq 6: output layer.
    let h_final = hiddens.last().expect("hops >= 1");
    let logits = params.w_o.matvec(h_final).expect("output width");

    ForwardTrace {
        mem_a,
        mem_c,
        q_emb,
        keys,
        scores,
        attention,
        reads,
        hiddens,
        logits,
        gru: gru_traces,
    }
}

/// Runs the forward pass only up to the controller output `h^T`, skipping
/// the output layer — Step 4 of Algorithm 1 computes logits lazily from this
/// vector.
pub fn forward_until_output(params: &Params, sample: &EncodedSample) -> Vector {
    // The trace is cheap relative to the output layer for bAbI sizes; reuse
    // the full pass and drop the logits.
    let mut trace = forward_hidden_only(params, sample);
    trace
        .pop()
        .expect("at least one hop produces a hidden state")
}

/// Internal: hidden states per hop without materializing the output layer.
fn forward_hidden_only(params: &Params, sample: &EncodedSample) -> Vec<Vector> {
    let e = params.config.embed_dim;
    let l = sample.sentences.len();
    let w_a = &params.w_emb_a;
    let w_c = params.content_embedding();
    let mut mem_a = Matrix::zeros(l, e);
    let mut mem_c = Matrix::zeros(l, e);
    for (i, sent) in sample.sentences.iter().enumerate() {
        mem_a
            .row_mut(i)
            .copy_from_slice(w_a.sum_cols(sent).as_slice());
        mem_c
            .row_mut(i)
            .copy_from_slice(w_c.sum_cols(sent).as_slice());
    }
    let mut k = w_a.sum_cols(&sample.question);
    let mut hiddens = Vec::with_capacity(params.config.hops);
    for _ in 0..params.config.hops {
        let a = mem_a.matvec(&k).expect("key width").softmax();
        let r = mem_c.matvec_transposed(&a).expect("rows");
        let h = match &params.gru {
            Some(gru) => gru_step(gru, &r, &k).0,
            None => {
                let wk = params.w_r.matvec(&k).expect("controller width");
                r.add(&wk).expect("embed dim")
            }
        };
        hiddens.push(h.clone());
        k = h;
    }
    hiddens
}

/// One output logit `z_i = W_o[i] · h` — the unit of work of the
/// accelerator's sequential OUTPUT module and of inference thresholding.
///
/// # Panics
///
/// Panics if `index >= vocab_size`.
pub fn output_logit(params: &Params, h: &Vector, index: usize) -> f32 {
    let row = params.w_o.row(index);
    row.iter().zip(h.iter()).map(|(w, x)| w * x).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> (Params, EncodedSample) {
        let cfg = ModelConfig {
            embed_dim: 6,
            hops: 3,
            tie_embeddings: false,
            ..ModelConfig::default()
        };
        let params = Params::init(cfg, 12, &mut StdRng::seed_from_u64(7));
        let sample = EncodedSample {
            sentences: vec![vec![1, 2, 3], vec![4, 5], vec![6, 7, 8, 9]],
            question: vec![10, 11],
            answer: 3,
        };
        (params, sample)
    }

    #[test]
    fn trace_shapes_are_consistent() {
        let (p, s) = tiny();
        let t = forward(&p, &s);
        assert_eq!(t.mem_a.shape(), (3, 6));
        assert_eq!(t.keys.len(), 3);
        assert_eq!(t.attention.len(), 3);
        assert_eq!(t.hiddens.len(), 3);
        assert_eq!(t.logits.len(), 12);
        for a in &t.attention {
            assert!((a.sum() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn first_key_is_embedded_question() {
        let (p, s) = tiny();
        let t = forward(&p, &s);
        assert_eq!(t.keys[0], t.q_emb);
        assert_eq!(t.q_emb, p.w_emb_a.sum_cols(&s.question));
    }

    #[test]
    fn keys_chain_through_hiddens() {
        let (p, s) = tiny();
        let t = forward(&p, &s);
        assert_eq!(t.keys[1], t.hiddens[0]);
        assert_eq!(t.keys[2], t.hiddens[1]);
    }

    #[test]
    fn hidden_satisfies_eq4() {
        let (p, s) = tiny();
        let t = forward(&p, &s);
        for hop in 0..3 {
            let wk = p.w_r.matvec(&t.keys[hop]).unwrap();
            let expect = t.reads[hop].add(&wk).unwrap();
            assert_eq!(t.hiddens[hop], expect);
        }
    }

    #[test]
    fn logits_match_per_index_dot_products() {
        let (p, s) = tiny();
        let t = forward(&p, &s);
        for i in 0..p.vocab_size {
            let z = output_logit(&p, t.final_hidden(), i);
            assert!((z - t.logits[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn forward_until_output_matches_full_pass() {
        let (p, s) = tiny();
        let t = forward(&p, &s);
        let h = forward_until_output(&p, &s);
        assert_eq!(&h, t.final_hidden());
    }

    #[test]
    fn tied_embeddings_change_the_result() {
        let (p, s) = tiny();
        let mut tied = p.clone();
        tied.config.tie_embeddings = true;
        let a = forward(&p, &s);
        let b = forward(&tied, &s);
        assert_ne!(a.logits, b.logits);
        // With tied embeddings the content memory equals the address memory.
        assert_eq!(b.mem_a, b.mem_c);
    }

    #[test]
    fn attention_concentrates_with_scaled_memory() {
        // A memory row aligned with the key dominates the softmax.
        let cfg = ModelConfig {
            embed_dim: 4,
            hops: 1,
            tie_embeddings: false,
            ..ModelConfig::default()
        };
        let mut p = Params::init(cfg, 8, &mut StdRng::seed_from_u64(1));
        p.w_emb_a.clear();
        // Word 0 embeds to e0*10; word 1 to e1. Question = word 0.
        p.w_emb_a[(0, 0)] = 10.0;
        p.w_emb_a[(1, 1)] = 1.0;
        let s = EncodedSample {
            sentences: vec![vec![0], vec![1]],
            question: vec![0],
            answer: 0,
        };
        let t = forward(&p, &s);
        assert!(t.attention[0][0] > 0.99, "attention {:?}", t.attention[0]);
    }
}
