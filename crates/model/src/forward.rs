//! The forward pass (paper Eqs 1–6) with a full intermediate trace.

use mann_babi::EncodedSample;
use mann_linalg::activation::sigmoid;
use mann_linalg::{Matrix, Vector};

use crate::{GruParams, Params};

/// Per-hop intermediates of the GRU controller, retained for backprop.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GruTrace {
    /// Update gate `z = σ(W_z r + U_z k)`.
    pub z: Vector,
    /// Reset gate `g = σ(W_g r + U_g k)`.
    pub g: Vector,
    /// Gated state `g ⊙ k`.
    pub gk: Vector,
    /// Candidate `h̃ = tanh(W_h r + U_h (g ⊙ k))`.
    pub h_tilde: Vector,
}

/// Reusable scratch for the forward pass; every buffer is resized in place,
/// so a warm workspace runs [`forward_into`] without heap allocation.
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    /// Column-sum embedding target (Eq 2).
    emb: Vector,
    /// Controller `W_r k` term (Eq 4) / GRU gate input term.
    wk: Vector,
    /// Second gate input term (GRU only).
    uk: Vector,
}

/// One GRU controller step: `h = (1-z) ⊙ k + z ⊙ h̃`, written into `h` and
/// `trace` (all buffers resized in place).
pub(crate) fn gru_step_into(
    gru: &GruParams,
    r: &Vector,
    k: &Vector,
    h: &mut Vector,
    trace: &mut GruTrace,
    s: &mut ForwardScratch,
) {
    gru.w_z.matvec_into(r, &mut s.wk).expect("gate width");
    gru.u_z.matvec_into(k, &mut s.uk).expect("gate width");
    trace.z.add_into(&s.wk, &s.uk).expect("same dim");
    for x in trace.z.iter_mut() {
        *x = sigmoid(*x);
    }
    gru.w_g.matvec_into(r, &mut s.wk).expect("gate width");
    gru.u_g.matvec_into(k, &mut s.uk).expect("gate width");
    trace.g.add_into(&s.wk, &s.uk).expect("same dim");
    for x in trace.g.iter_mut() {
        *x = sigmoid(*x);
    }
    trace.gk.hadamard_into(&trace.g, k).expect("same dim");
    gru.w_h.matvec_into(r, &mut s.wk).expect("gate width");
    gru.u_h
        .matvec_into(&trace.gk, &mut s.uk)
        .expect("gate width");
    trace.h_tilde.add_into(&s.wk, &s.uk).expect("same dim");
    for x in trace.h_tilde.iter_mut() {
        *x = x.tanh();
    }
    h.resize_zeroed(k.len());
    for (i, hv) in h.iter_mut().enumerate() {
        let zv = trace.z[i];
        *hv = (1.0 - zv) * k[i] + zv * trace.h_tilde[i];
    }
}

/// Every intermediate of one forward pass, retained for backprop, for
/// attention-trace demos, and for the hardware simulator's functional
/// cross-check.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ForwardTrace {
    /// Address memory `M_a` (`L x E`, one row per sentence) — Eq 2.
    pub mem_a: Matrix,
    /// Content memory `M_c` (`L x E`) — Eq 2.
    pub mem_c: Matrix,
    /// Embedded question (the first read key, Eq 3).
    pub q_emb: Vector,
    /// Read key per hop (`hops` entries; `keys[0] == q_emb`).
    pub keys: Vec<Vector>,
    /// Raw attention scores `M_a · k` per hop (pre-softmax).
    pub scores: Vec<Vector>,
    /// Attention weights per hop (Eq 1).
    pub attention: Vec<Vector>,
    /// Read vectors per hop (Eq 5).
    pub reads: Vec<Vector>,
    /// Controller outputs per hop (Eq 4); the last is the output-layer
    /// input.
    pub hiddens: Vec<Vector>,
    /// Output logits `z = W_o h` (Eq 6).
    pub logits: Vector,
    /// GRU gate traces per hop, when the controller is gated.
    pub gru: Option<Vec<GruTrace>>,
}

impl ForwardTrace {
    /// The controller state fed to the output layer (`h^T`).
    pub fn final_hidden(&self) -> &Vector {
        self.hiddens.last().expect("at least one hop")
    }

    /// The predicted label (Eq 6).
    pub fn prediction(&self) -> usize {
        self.logits.argmax().expect("non-empty logits")
    }
}

/// Embeds the story into address/content memories and the question into the
/// first read key, then runs `hops` read iterations and the output layer.
///
/// # Panics
///
/// Panics if any word index is outside the vocabulary the parameters were
/// initialized for (an encoder/model mismatch is a programming error, not a
/// runtime condition).
pub fn forward(params: &Params, sample: &EncodedSample) -> ForwardTrace {
    let mut trace = ForwardTrace::default();
    let mut scratch = ForwardScratch::default();
    forward_into(params, sample, &mut trace, &mut scratch);
    trace
}

/// Resizes a list of per-hop vectors in place, keeping the existing
/// element buffers alive for reuse.
fn resize_hop_list<T: Default>(list: &mut Vec<T>, hops: usize) {
    list.resize_with(hops, T::default);
}

/// [`forward`] into caller-provided storage: every trace field and scratch
/// buffer is resized in place, so a warm (`trace`, `scratch`) pair runs the
/// whole pass without touching the allocator. Produces bit-identical
/// results to [`forward`].
///
/// # Panics
///
/// Panics if any word index is outside the vocabulary the parameters were
/// initialized for.
pub fn forward_into(
    params: &Params,
    sample: &EncodedSample,
    trace: &mut ForwardTrace,
    scratch: &mut ForwardScratch,
) {
    let e = params.config.embed_dim;
    let l = sample.sentences.len();
    let hops = params.config.hops;
    let w_a = &params.w_emb_a;
    let w_c = params.content_embedding();

    // Eq 2: index-based embedding — sum one column per word.
    trace.mem_a.resize_zeroed(l, e);
    trace.mem_c.resize_zeroed(l, e);
    for (i, sent) in sample.sentences.iter().enumerate() {
        w_a.sum_cols_into(sent, &mut scratch.emb);
        trace
            .mem_a
            .row_mut(i)
            .copy_from_slice(scratch.emb.as_slice());
        w_c.sum_cols_into(sent, &mut scratch.emb);
        trace
            .mem_c
            .row_mut(i)
            .copy_from_slice(scratch.emb.as_slice());
    }
    w_a.sum_cols_into(&sample.question, &mut trace.q_emb);

    resize_hop_list(&mut trace.keys, hops);
    resize_hop_list(&mut trace.scores, hops);
    resize_hop_list(&mut trace.attention, hops);
    resize_hop_list(&mut trace.reads, hops);
    resize_hop_list(&mut trace.hiddens, hops);
    match (&params.gru, &mut trace.gru) {
        (Some(_), Some(traces)) => resize_hop_list(traces, hops),
        (Some(_), slot @ None) => {
            let mut traces = Vec::new();
            resize_hop_list(&mut traces, hops);
            *slot = Some(traces);
        }
        (None, slot) => *slot = None,
    }

    let ForwardTrace {
        mem_a,
        mem_c,
        q_emb,
        keys,
        scores,
        attention,
        reads,
        hiddens,
        logits,
        gru,
    } = trace;

    keys[0].copy_from(q_emb); // Eq 3: the first key is the question.
    for t in 0..hops {
        // Eq 1: content-based addressing.
        mem_a
            .matvec_into(&keys[t], &mut scores[t])
            .expect("key matches memory width");
        attention[t].softmax_into(&scores[t]);
        // Eq 5: soft read.
        mem_c
            .matvec_transposed_into(&attention[t], &mut reads[t])
            .expect("attention matches rows");
        // Controller: Eq 4 (linear) or the gated variant.
        match (&params.gru, &mut *gru) {
            (Some(gru_params), Some(traces)) => {
                // `hiddens[t]` and `keys[t]` live in different lists, so the
                // split borrows are disjoint.
                let (h, k) = (&mut hiddens[t], &keys[t]);
                gru_step_into(gru_params, &reads[t], k, h, &mut traces[t], scratch);
            }
            _ => {
                params
                    .w_r
                    .matvec_into(&keys[t], &mut scratch.wk)
                    .expect("controller width");
                hiddens[t]
                    .add_into(&reads[t], &scratch.wk)
                    .expect("same embed dim");
            }
        }
        if t + 1 < hops {
            // Eq 3: next key is the controller output.
            keys[t + 1].copy_from(&hiddens[t]);
        }
    }

    // Eq 6: output layer.
    let h_final = hiddens.last().expect("hops >= 1");
    params
        .w_o
        .matvec_into(h_final, logits)
        .expect("output width");
}

/// Forward passes for a batch of queries that share one story, with the
/// batched kernels: the story is embedded once, and each hop's addressing
/// and the output layer run as one multi-query matmul
/// ([`Matrix::matvec_batch_into`]) instead of one matvec per query.
///
/// Every returned trace is bit-identical to [`forward`] on the same sample
/// — the batched kernels preserve the per-query accumulation order exactly.
///
/// # Panics
///
/// Panics if any word index is outside the vocabulary, and (debug builds)
/// if the samples do not all share `samples[0]`'s story sentences.
pub fn forward_batch(params: &Params, samples: &[&EncodedSample]) -> Vec<ForwardTrace> {
    let n = samples.len();
    if n == 0 {
        return Vec::new();
    }
    let e = params.config.embed_dim;
    let first = samples[0];
    debug_assert!(
        samples.iter().all(|s| s.sentences == first.sentences),
        "forward_batch requires a shared story"
    );
    let l = first.sentences.len();
    let hops = params.config.hops;
    let w_a = &params.w_emb_a;
    let w_c = params.content_embedding();
    let mut scratch = ForwardScratch::default();

    // Eq 2 once for the whole batch: the story is shared.
    let mut mem_a = Matrix::zeros(l, e);
    let mut mem_c = Matrix::zeros(l, e);
    for (i, sent) in first.sentences.iter().enumerate() {
        w_a.sum_cols_into(sent, &mut scratch.emb);
        mem_a.row_mut(i).copy_from_slice(scratch.emb.as_slice());
        w_c.sum_cols_into(sent, &mut scratch.emb);
        mem_c.row_mut(i).copy_from_slice(scratch.emb.as_slice());
    }

    let mut traces: Vec<ForwardTrace> = samples
        .iter()
        .map(|s| {
            let mut t = ForwardTrace {
                mem_a: mem_a.clone(),
                mem_c: mem_c.clone(),
                ..ForwardTrace::default()
            };
            w_a.sum_cols_into(&s.question, &mut t.q_emb);
            resize_hop_list(&mut t.keys, hops);
            resize_hop_list(&mut t.scores, hops);
            resize_hop_list(&mut t.attention, hops);
            resize_hop_list(&mut t.reads, hops);
            resize_hop_list(&mut t.hiddens, hops);
            t.gru = params.gru.as_ref().map(|_| {
                let mut traces = Vec::new();
                resize_hop_list(&mut traces, hops);
                traces
            });
            t.keys[0].copy_from(&t.q_emb); // Eq 3
            t
        })
        .collect();

    let mut batch_in: Vec<Vector> = Vec::new();
    let mut batch_scores: Vec<Vector> = Vec::new();
    let mut batch_att: Vec<Vector> = Vec::new();
    for t in 0..hops {
        // Eq 1 for all live queries in one pass over the address memory.
        batch_in.clear();
        batch_in.extend(traces.iter().map(|tr| tr.keys[t].clone()));
        mem_a
            .matvec_batch_into(&batch_in, &mut batch_scores)
            .expect("key matches memory width");
        Vector::softmax_batch_into(&batch_scores, &mut batch_att);
        for (q, tr) in traces.iter_mut().enumerate() {
            let ForwardTrace {
                keys,
                scores,
                attention,
                reads,
                hiddens,
                gru,
                ..
            } = tr;
            scores[t].copy_from(&batch_scores[q]);
            attention[t].copy_from(&batch_att[q]);
            // Eq 5: soft read.
            mem_c
                .matvec_transposed_into(&attention[t], &mut reads[t])
                .expect("attention matches rows");
            // Controller: Eq 4 (linear) or the gated variant.
            match (&params.gru, &mut *gru) {
                (Some(gru_params), Some(gtraces)) => {
                    let (h, k) = (&mut hiddens[t], &keys[t]);
                    gru_step_into(gru_params, &reads[t], k, h, &mut gtraces[t], &mut scratch);
                }
                _ => {
                    params
                        .w_r
                        .matvec_into(&keys[t], &mut scratch.wk)
                        .expect("controller width");
                    hiddens[t]
                        .add_into(&reads[t], &scratch.wk)
                        .expect("same embed dim");
                }
            }
            if t + 1 < hops {
                keys[t + 1].copy_from(&hiddens[t]); // Eq 3
            }
        }
    }

    // Eq 6 as one multi-query pass over the output weights — the `V x E`
    // matmul that dominates the NLP-scale forward pass.
    batch_in.clear();
    batch_in.extend(traces.iter().map(|tr| tr.final_hidden().clone()));
    let mut batch_logits: Vec<Vector> = Vec::new();
    params
        .w_o
        .matvec_batch_into(&batch_in, &mut batch_logits)
        .expect("output width");
    for (tr, logits) in traces.iter_mut().zip(&batch_logits) {
        tr.logits.copy_from(logits);
    }
    traces
}

/// Runs the forward pass only up to the controller output `h^T`, skipping
/// the output layer — Step 4 of Algorithm 1 computes logits lazily from this
/// vector.
pub fn forward_until_output(params: &Params, sample: &EncodedSample) -> Vector {
    let e = params.config.embed_dim;
    let l = sample.sentences.len();
    let w_a = &params.w_emb_a;
    let w_c = params.content_embedding();
    let mut scratch = ForwardScratch::default();
    let mut mem_a = Matrix::zeros(l, e);
    let mut mem_c = Matrix::zeros(l, e);
    for (i, sent) in sample.sentences.iter().enumerate() {
        w_a.sum_cols_into(sent, &mut scratch.emb);
        mem_a.row_mut(i).copy_from_slice(scratch.emb.as_slice());
        w_c.sum_cols_into(sent, &mut scratch.emb);
        mem_c.row_mut(i).copy_from_slice(scratch.emb.as_slice());
    }
    let mut k = w_a.sum_cols(&sample.question);
    let mut h = Vector::zeros(0);
    let mut a = Vector::zeros(0);
    let mut u = Vector::zeros(0);
    let mut r = Vector::zeros(0);
    let mut gru_trace = GruTrace::default();
    for _ in 0..params.config.hops {
        mem_a.matvec_into(&k, &mut u).expect("key width");
        a.softmax_into(&u);
        mem_c.matvec_transposed_into(&a, &mut r).expect("rows");
        match &params.gru {
            Some(gru) => gru_step_into(gru, &r, &k, &mut h, &mut gru_trace, &mut scratch),
            None => {
                params
                    .w_r
                    .matvec_into(&k, &mut scratch.wk)
                    .expect("controller width");
                h.add_into(&r, &scratch.wk).expect("embed dim");
            }
        }
        std::mem::swap(&mut k, &mut h);
    }
    k
}

/// One output logit `z_i = W_o[i] · h` — the unit of work of the
/// accelerator's sequential OUTPUT module and of inference thresholding.
///
/// # Panics
///
/// Panics if `index >= vocab_size`.
pub fn output_logit(params: &Params, h: &Vector, index: usize) -> f32 {
    let row = params.w_o.row(index);
    row.iter().zip(h.iter()).map(|(w, x)| w * x).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> (Params, EncodedSample) {
        let cfg = ModelConfig {
            embed_dim: 6,
            hops: 3,
            tie_embeddings: false,
            ..ModelConfig::default()
        };
        let params = Params::init(cfg, 12, &mut StdRng::seed_from_u64(7));
        let sample = EncodedSample {
            sentences: vec![vec![1, 2, 3], vec![4, 5], vec![6, 7, 8, 9]],
            question: vec![10, 11],
            answer: 3,
        };
        (params, sample)
    }

    #[test]
    fn trace_shapes_are_consistent() {
        let (p, s) = tiny();
        let t = forward(&p, &s);
        assert_eq!(t.mem_a.shape(), (3, 6));
        assert_eq!(t.keys.len(), 3);
        assert_eq!(t.attention.len(), 3);
        assert_eq!(t.hiddens.len(), 3);
        assert_eq!(t.logits.len(), 12);
        for a in &t.attention {
            assert!((a.sum() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn first_key_is_embedded_question() {
        let (p, s) = tiny();
        let t = forward(&p, &s);
        assert_eq!(t.keys[0], t.q_emb);
        assert_eq!(t.q_emb, p.w_emb_a.sum_cols(&s.question));
    }

    #[test]
    fn keys_chain_through_hiddens() {
        let (p, s) = tiny();
        let t = forward(&p, &s);
        assert_eq!(t.keys[1], t.hiddens[0]);
        assert_eq!(t.keys[2], t.hiddens[1]);
    }

    #[test]
    fn hidden_satisfies_eq4() {
        let (p, s) = tiny();
        let t = forward(&p, &s);
        for hop in 0..3 {
            let wk = p.w_r.matvec(&t.keys[hop]).unwrap();
            let expect = t.reads[hop].add(&wk).unwrap();
            assert_eq!(t.hiddens[hop], expect);
        }
    }

    #[test]
    fn logits_match_per_index_dot_products() {
        let (p, s) = tiny();
        let t = forward(&p, &s);
        for i in 0..p.vocab_size {
            let z = output_logit(&p, t.final_hidden(), i);
            assert!((z - t.logits[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn batched_forward_matches_per_sample_forward() {
        let (p, s) = tiny();
        // Same story, different questions.
        let mut s2 = s.clone();
        s2.question = vec![3, 7];
        let mut s3 = s.clone();
        s3.question = vec![11];
        let batch = [&s, &s2, &s3];
        let traces = forward_batch(&p, &batch);
        assert_eq!(traces.len(), 3);
        for (tr, sample) in traces.iter().zip(&batch) {
            assert_eq!(tr, &forward(&p, sample));
        }
        // GRU controller takes the gated path.
        let mut gp = p.clone();
        gp.config.controller = crate::ControllerKind::Gru;
        let gp = Params::init(gp.config, 12, &mut StdRng::seed_from_u64(9));
        assert!(gp.gru.is_some());
        for (tr, sample) in forward_batch(&gp, &batch).iter().zip(&batch) {
            assert_eq!(tr, &forward(&gp, sample));
        }
        // Degenerate batches.
        assert!(forward_batch(&p, &[]).is_empty());
        assert_eq!(forward_batch(&p, &[&s])[0], forward(&p, &s));
    }

    #[test]
    fn forward_until_output_matches_full_pass() {
        let (p, s) = tiny();
        let t = forward(&p, &s);
        let h = forward_until_output(&p, &s);
        assert_eq!(&h, t.final_hidden());
    }

    #[test]
    fn tied_embeddings_change_the_result() {
        let (p, s) = tiny();
        let mut tied = p.clone();
        tied.config.tie_embeddings = true;
        let a = forward(&p, &s);
        let b = forward(&tied, &s);
        assert_ne!(a.logits, b.logits);
        // With tied embeddings the content memory equals the address memory.
        assert_eq!(b.mem_a, b.mem_c);
    }

    #[test]
    fn attention_concentrates_with_scaled_memory() {
        // A memory row aligned with the key dominates the softmax.
        let cfg = ModelConfig {
            embed_dim: 4,
            hops: 1,
            tie_embeddings: false,
            ..ModelConfig::default()
        };
        let mut p = Params::init(cfg, 8, &mut StdRng::seed_from_u64(1));
        p.w_emb_a.clear();
        // Word 0 embeds to e0*10; word 1 to e1. Question = word 0.
        p.w_emb_a[(0, 0)] = 10.0;
        p.w_emb_a[(1, 1)] = 1.0;
        let s = EncodedSample {
            sentences: vec![vec![0], vec![1]],
            question: vec![0],
            answer: 0,
        };
        let t = forward(&p, &s);
        assert!(t.attention[0][0] > 0.99, "attention {:?}", t.attention[0]);
    }
}
