//! SGD training loop.

use mann_babi::{EncodedSample, Encoder, TaskData, TaskId, Vocab};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{forward, Gradients, ModelConfig, Params, Workspace};

/// One single-sample SGD step (forward, loss, backward, clip, apply),
/// returning the sample loss. Factored out of [`Trainer::train`] so the
/// perf regression gate times exactly the production training step.
pub fn train_step(
    params: &mut Params,
    sample: &EncodedSample,
    ws: &mut Workspace,
    velocity: Option<&mut Gradients>,
    mu: f32,
    lr: f32,
    clip_norm: f32,
) -> f32 {
    ws.forward(params, sample);
    let loss = ws.loss(sample.answer);
    ws.grads.clear();
    ws.backward(params, sample);
    ws.grads.clip_to(clip_norm);
    match velocity {
        Some(v) => {
            v.blend_into(mu, &ws.grads);
            v.apply(params, lr);
        }
        None => ws.grads.apply(params, lr),
    }
    loss
}

/// Training hyper-parameters (original MemN2N recipe scaled down).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f32,
    /// Halve the learning rate every this many epochs (0 disables decay).
    pub decay_every: usize,
    /// Global gradient-norm clip.
    pub clip_norm: f32,
    /// Heavy-ball momentum coefficient (0 disables; 0.9 is the classic
    /// value and usually reaches the paper-era accuracies a few epochs
    /// sooner).
    pub momentum: f32,
    /// Seed for shuffling and weight initialization.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 40,
            learning_rate: 0.02,
            decay_every: 15,
            clip_norm: 40.0,
            momentum: 0.0,
            seed: 0,
        }
    }
}

/// Per-epoch training metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training accuracy after the final epoch.
    pub final_train_accuracy: f32,
    /// Test accuracy after the final epoch.
    pub final_test_accuracy: f32,
}

/// A trained model bundled with the encoder that produced its inputs —
/// everything downstream consumers (thresholding calibration, the hardware
/// simulator, the platform models) need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedModel {
    /// Which task the model was trained on.
    pub task: TaskId,
    /// The trained weights.
    pub params: Params,
    /// The encoder (vocabulary + temporal tokens) the weights assume.
    pub encoder: Encoder,
}

impl TrainedModel {
    /// Predicts the answer class of one encoded sample (Eq 6).
    pub fn predict(&self, sample: &EncodedSample) -> usize {
        forward(&self.params, sample).prediction()
    }

    /// Predicts using a reusable [`Workspace`] (allocation-free once warm).
    pub fn predict_with(&self, ws: &mut Workspace, sample: &EncodedSample) -> usize {
        ws.predict(&self.params, sample)
    }

    /// Fraction of samples predicted correctly.
    pub fn accuracy(&self, samples: &[EncodedSample]) -> f32 {
        let mut ws = Workspace::for_params(&self.params);
        self.accuracy_with(&mut ws, samples)
    }

    /// [`TrainedModel::accuracy`] with a caller-provided [`Workspace`].
    pub fn accuracy_with(&self, ws: &mut Workspace, samples: &[EncodedSample]) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .filter(|s| self.predict_with(ws, s) == s.answer)
            .count();
        correct as f32 / samples.len() as f32
    }
}

/// Trains a memory network on one task's data.
#[derive(Debug, Clone)]
pub struct Trainer {
    task: TaskId,
    params: Params,
    encoder: Encoder,
    train_set: Vec<EncodedSample>,
    test_set: Vec<EncodedSample>,
    cfg: TrainConfig,
}

impl Trainer {
    /// Builds the vocabulary over both splits, encodes the data, and
    /// initializes a model.
    ///
    /// # Panics
    ///
    /// Panics if `data` has no training samples or the model config is
    /// invalid.
    pub fn from_task_data(data: &TaskData, model: ModelConfig, cfg: TrainConfig) -> Self {
        Self::from_task_data_with_time_tokens(data, model, cfg, Encoder::DEFAULT_TIME_TOKENS)
    }

    /// Like [`Trainer::from_task_data`] with an explicit temporal-token
    /// budget (0 disables the per-sentence age markers — the temporal
    /// encoding ablation).
    ///
    /// # Panics
    ///
    /// Panics if `data` has no training samples or the model config is
    /// invalid.
    pub fn from_task_data_with_time_tokens(
        data: &TaskData,
        model: ModelConfig,
        cfg: TrainConfig,
        time_tokens: usize,
    ) -> Self {
        assert!(!data.train.is_empty(), "no training samples");
        model.validate().expect("valid model config");
        let vocab =
            Vocab::from_samples(data.train.iter().chain(&data.test)).with_time_tokens(time_tokens);
        let encoder = Encoder::with_time_tokens(vocab, time_tokens);
        let (train_set, skipped_train) = encoder.encode_all(&data.train);
        let (test_set, skipped_test) = encoder.encode_all(&data.test);
        assert_eq!(skipped_train + skipped_test, 0, "vocab covers both splits");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let params = Params::init(model, encoder.vocab().len(), &mut rng);
        Self {
            task: data.task,
            params,
            encoder,
            train_set,
            test_set,
            cfg,
        }
    }

    /// The encoded training split.
    pub fn train_set(&self) -> &[EncodedSample] {
        &self.train_set
    }

    /// The encoded test split.
    pub fn test_set(&self) -> &[EncodedSample] {
        &self.test_set
    }

    /// Runs the configured number of epochs of single-sample SGD (with
    /// heavy-ball momentum when configured).
    ///
    /// All per-sample buffers (trace, gradients, loss gradient) live in one
    /// [`Workspace`] reused across samples and epochs, so the inner loop is
    /// allocation-free after the first few samples warm the buffers up.
    pub fn train(&mut self) -> TrainReport {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x5347_4421);
        let mut lr = self.cfg.learning_rate;
        let mut order: Vec<usize> = (0..self.train_set.len()).collect();
        let mut epoch_losses = Vec::with_capacity(self.cfg.epochs);
        let mu = self.cfg.momentum;
        let mut velocity = (mu > 0.0).then(|| Gradients::zeros(&self.params));
        let mut ws = Workspace::for_params(&self.params);
        for epoch in 0..self.cfg.epochs {
            if self.cfg.decay_every > 0 && epoch > 0 && epoch % self.cfg.decay_every == 0 {
                lr *= 0.5;
            }
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0;
            for &i in &order {
                let sample = &self.train_set[i];
                loss_sum += train_step(
                    &mut self.params,
                    sample,
                    &mut ws,
                    velocity.as_mut(),
                    mu,
                    lr,
                    self.cfg.clip_norm,
                );
            }
            epoch_losses.push(loss_sum / self.train_set.len().max(1) as f32);
            debug_assert!(self.params.is_finite(), "weights diverged at epoch {epoch}");
        }
        let model = self.as_model();
        TrainReport {
            final_train_accuracy: model.accuracy_with(&mut ws, &self.train_set),
            final_test_accuracy: model.accuracy_with(&mut ws, &self.test_set),
            epoch_losses,
        }
    }

    /// Snapshot of the current weights as a [`TrainedModel`].
    pub fn as_model(&self) -> TrainedModel {
        TrainedModel {
            task: self.task,
            params: self.params.clone(),
            encoder: self.encoder.clone(),
        }
    }

    /// Consumes the trainer, returning the trained model and encoded splits.
    pub fn into_parts(self) -> (TrainedModel, Vec<EncodedSample>, Vec<EncodedSample>) {
        let model = TrainedModel {
            task: self.task,
            params: self.params,
            encoder: self.encoder,
        };
        (model, self.train_set, self.test_set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mann_babi::DatasetBuilder;

    fn quick_cfg() -> (ModelConfig, TrainConfig) {
        (
            ModelConfig {
                embed_dim: 20,
                hops: 2,
                tie_embeddings: false,
                ..ModelConfig::default()
            },
            TrainConfig {
                epochs: 25,
                learning_rate: 0.05,
                decay_every: 10,
                clip_norm: 40.0,
                seed: 1,
                ..TrainConfig::default()
            },
        )
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let data = DatasetBuilder::new()
            .train_samples(150)
            .test_samples(30)
            .seed(5)
            .build_task(TaskId::SingleSupportingFact);
        let (m, t) = quick_cfg();
        let mut trainer = Trainer::from_task_data(&data, m, t);
        let report = trainer.train();
        let first = report.epoch_losses.first().copied().unwrap();
        let last = report.epoch_losses.last().copied().unwrap();
        assert!(last < first * 0.8, "loss {first} -> {last}");
    }

    #[test]
    fn learns_single_supporting_fact_well() {
        let data = DatasetBuilder::new()
            .train_samples(300)
            .test_samples(60)
            .seed(6)
            .build_task(TaskId::SingleSupportingFact);
        let (m, t) = quick_cfg();
        let mut trainer = Trainer::from_task_data(&data, m, t);
        let report = trainer.train();
        assert!(
            report.final_test_accuracy > 0.75,
            "test accuracy {}",
            report.final_test_accuracy
        );
    }

    #[test]
    fn overfits_a_tiny_set() {
        let data = DatasetBuilder::new()
            .train_samples(10)
            .test_samples(2)
            .seed(7)
            .build_task(TaskId::AgentMotivations);
        let (m, mut t) = quick_cfg();
        t.epochs = 60;
        let mut trainer = Trainer::from_task_data(&data, m, t);
        let report = trainer.train();
        assert!(
            report.final_train_accuracy >= 0.9,
            "train accuracy {}",
            report.final_train_accuracy
        );
    }

    #[test]
    fn training_is_deterministic() {
        let data = DatasetBuilder::new()
            .train_samples(40)
            .test_samples(10)
            .seed(8)
            .build_task(TaskId::YesNoQuestions);
        let (m, mut t) = quick_cfg();
        t.epochs = 3;
        let r1 = Trainer::from_task_data(&data, m, t).train();
        let r2 = Trainer::from_task_data(&data, m, t).train();
        assert_eq!(r1, r2);
    }

    #[test]
    fn momentum_matches_plain_sgd_at_equal_effective_step() {
        // Heavy-ball with step lr and coefficient mu has asymptotic
        // effective step lr / (1 - mu); at that operating point it must
        // train comparably (and stay finite) on a learnable task.
        let data = DatasetBuilder::new()
            .train_samples(200)
            .test_samples(20)
            .seed(15)
            .build_task(TaskId::SingleSupportingFact);
        let (m, mut t) = quick_cfg();
        t.epochs = 8;
        let plain = Trainer::from_task_data(&data, m, t).train();
        t.momentum = 0.9;
        t.learning_rate /= 10.0;
        let with = Trainer::from_task_data(&data, m, t).train();
        let p_last = *plain.epoch_losses.last().expect("losses");
        let f_last = *with.epoch_losses.last().expect("losses");
        assert!(f_last.is_finite());
        assert!(
            f_last < p_last * 2.0 && f_last < 2.0,
            "momentum loss {f_last} vs plain {p_last}"
        );
        // And it must actually be descending.
        let f_first = *with.epoch_losses.first().expect("losses");
        assert!(f_last < f_first, "{f_first} -> {f_last}");
    }

    #[test]
    fn blend_into_implements_heavy_ball() {
        let data = DatasetBuilder::new()
            .train_samples(5)
            .test_samples(1)
            .seed(3)
            .build_task(TaskId::Counting);
        let (m, t) = quick_cfg();
        let trainer = Trainer::from_task_data(&data, m, t);
        let params = trainer.as_model().params;
        let mut v = Gradients::zeros(&params);
        let mut g = Gradients::zeros(&params);
        g.w_o[(0, 0)] = 2.0;
        v.blend_into(0.5, &g); // v = 0*0.5 + 2
        assert_eq!(v.w_o[(0, 0)], 2.0);
        v.blend_into(0.5, &g); // v = 2*0.5 + 2
        assert_eq!(v.w_o[(0, 0)], 3.0);
        g.w_o[(0, 0)] = 0.0;
        v.blend_into(0.5, &g); // pure decay
        assert_eq!(v.w_o[(0, 0)], 1.5);
    }

    #[test]
    fn momentum_velocity_respects_gru_weights() {
        // A GRU model trained with momentum must stay finite and learn.
        let data = DatasetBuilder::new()
            .train_samples(60)
            .test_samples(10)
            .seed(16)
            .build_task(TaskId::AgentMotivations);
        let cfg = ModelConfig {
            embed_dim: 12,
            hops: 2,
            tie_embeddings: false,
            controller: crate::ControllerKind::Gru,
        };
        let mut trainer = Trainer::from_task_data(
            &data,
            cfg,
            TrainConfig {
                epochs: 10,
                learning_rate: 0.01,
                momentum: 0.9,
                seed: 16,
                ..TrainConfig::default()
            },
        );
        let report = trainer.train();
        let first = report.epoch_losses.first().copied().unwrap();
        let last = report.epoch_losses.last().copied().unwrap();
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn trained_model_round_trips_through_serde() {
        let data = DatasetBuilder::new()
            .train_samples(20)
            .test_samples(5)
            .seed(9)
            .build_task(TaskId::Counting);
        let (m, mut t) = quick_cfg();
        t.epochs = 2;
        let mut trainer = Trainer::from_task_data(&data, m, t);
        trainer.train();
        let model = trainer.as_model();
        let json = serde_json::to_string(&model).unwrap();
        let back: TrainedModel = serde_json::from_str(&json).unwrap();
        assert_eq!(model, back);
        // Predictions survive the round trip.
        let sample = trainer.test_set()[0].clone();
        assert_eq!(model.predict(&sample), back.predict(&sample));
    }
}
