//! Q-format fixed-point scalar mirroring the FPGA datapath.
//!
//! The accelerator's arithmetic units operate on two's-complement fixed-point
//! words rather than IEEE floats; [`Fixed`] reproduces that behaviour in the
//! simulator so quantization effects (saturation, truncation) are visible in
//! the reproduced accuracy numbers. The default format is Q16.16 stored in an
//! `i32`; other fractional widths are available through [`Fixed::from_f32_q`]
//! for the width-ablation experiment.

use serde::{Deserialize, Serialize};

use crate::numeric::NumericStatus;

/// Number of fractional bits in the default Q16.16 format.
pub const DEFAULT_FRAC_BITS: u32 = 16;

/// A saturating two's-complement fixed-point number (default Q16.16).
///
/// All arithmetic saturates at the representable range instead of wrapping,
/// matching a DSP-slice datapath with overflow protection. Multiplication
/// uses a 64-bit intermediate product followed by truncation toward negative
/// infinity (an arithmetic right shift), which is what a hardware multiplier
/// followed by bit-select does.
///
/// ```
/// use mann_linalg::Fixed;
///
/// let a = Fixed::from_f32(1.5);
/// let b = Fixed::from_f32(-2.0);
/// assert_eq!((a * b).to_f32(), -3.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Fixed {
    raw: i32,
}

impl Fixed {
    /// The additive identity.
    pub const ZERO: Fixed = Fixed { raw: 0 };
    /// The multiplicative identity (`1.0` in Q16.16).
    pub const ONE: Fixed = Fixed {
        raw: 1 << DEFAULT_FRAC_BITS,
    };
    /// The largest representable value.
    pub const MAX: Fixed = Fixed { raw: i32::MAX };
    /// The smallest (most negative) representable value.
    pub const MIN: Fixed = Fixed { raw: i32::MIN };

    /// Constructs from a raw Q16.16 bit pattern.
    pub fn from_raw(raw: i32) -> Self {
        Self { raw }
    }

    /// The raw Q16.16 bit pattern.
    pub fn raw(self) -> i32 {
        self.raw
    }

    /// Converts an `f32` into Q16.16, saturating at the representable range
    /// and mapping NaN to zero (hardware has no NaN).
    pub fn from_f32(x: f32) -> Self {
        Self::from_f32_q(x, DEFAULT_FRAC_BITS)
    }

    /// Converts an `f32` into a Q-format value with `frac_bits` fractional
    /// bits, then renormalizes the bit pattern into the Q16.16 carrier.
    ///
    /// Quantizing through a narrower `frac_bits` and widening back is how the
    /// fractional-width ablation models a cheaper datapath: precision is lost
    /// exactly as it would be in the narrow hardware.
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits > 30`.
    pub fn from_f32_q(x: f32, frac_bits: u32) -> Self {
        assert!(frac_bits <= 30, "frac_bits {frac_bits} too large");
        if x.is_nan() {
            return Self::ZERO;
        }
        let scaled = (x as f64) * (1i64 << frac_bits) as f64;
        let q = scaled.round().clamp(i32::MIN as f64, i32::MAX as f64) as i64;
        // Renormalize into the Q16.16 carrier, saturating.
        let shift = DEFAULT_FRAC_BITS as i64 - frac_bits as i64;
        let raw = if shift >= 0 { q << shift } else { q >> -shift };
        Self {
            raw: raw.clamp(i32::MIN as i64, i32::MAX as i64) as i32,
        }
    }

    /// Converts back to `f32`.
    pub fn to_f32(self) -> f32 {
        self.raw as f32 / (1u32 << DEFAULT_FRAC_BITS) as f32
    }

    /// Quantizes `x` through `frac_bits` fractional bits and back to `f32` —
    /// convenience for datapath-precision sweeps.
    pub fn quantize_f32(x: f32, frac_bits: u32) -> f32 {
        Self::from_f32_q(x, frac_bits).to_f32()
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Self) -> Self {
        Self {
            raw: self.raw.saturating_add(rhs.raw),
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self {
            raw: self.raw.saturating_sub(rhs.raw),
        }
    }

    /// Saturating multiplication with a 64-bit intermediate and arithmetic
    /// right shift (truncation toward negative infinity).
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let wide = i64::from(self.raw) * i64::from(rhs.raw);
        let shifted = wide >> DEFAULT_FRAC_BITS;
        Self {
            raw: shifted.clamp(i32::MIN as i64, i32::MAX as i64) as i32,
        }
    }

    /// Fixed-point division, saturating; division by zero saturates to the
    /// sign of the numerator (hardware dividers flag-and-clamp).
    pub fn saturating_div(self, rhs: Self) -> Self {
        if rhs.raw == 0 {
            return if self.raw >= 0 { Self::MAX } else { Self::MIN };
        }
        let wide = (i64::from(self.raw) << DEFAULT_FRAC_BITS) / i64::from(rhs.raw);
        Self {
            raw: wide.clamp(i32::MIN as i64, i32::MAX as i64) as i32,
        }
    }

    /// [`Fixed::from_f32_q`] with numeric-event accounting: bumps
    /// `nan_boundary` for non-finite operands and `quant_clamp` for finite
    /// operands clipped at the representable range. The returned value is
    /// bit-identical to the untracked conversion.
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits > 30`.
    pub fn from_f32_q_tracked(x: f32, frac_bits: u32, st: &mut NumericStatus) -> Self {
        assert!(frac_bits <= 30, "frac_bits {frac_bits} too large");
        if x.is_nan() {
            st.nan_boundary += 1;
            return Self::ZERO;
        }
        if x.is_infinite() {
            st.nan_boundary += 1;
        }
        let scaled = (x as f64) * (1i64 << frac_bits) as f64;
        let rounded = scaled.round();
        let q = rounded.clamp(i32::MIN as f64, i32::MAX as f64) as i64;
        let mut clamped = rounded < i32::MIN as f64 || rounded > i32::MAX as f64;
        let shift = DEFAULT_FRAC_BITS as i64 - frac_bits as i64;
        let wide = if shift >= 0 { q << shift } else { q >> -shift };
        let raw = wide.clamp(i32::MIN as i64, i32::MAX as i64);
        clamped |= raw != wide;
        // Non-finite operands count once, under `nan_boundary` only.
        if clamped && x.is_finite() {
            st.quant_clamp += 1;
        }
        Self { raw: raw as i32 }
    }

    /// [`Fixed::from_f32`] with numeric-event accounting.
    pub fn from_f32_tracked(x: f32, st: &mut NumericStatus) -> Self {
        Self::from_f32_q_tracked(x, DEFAULT_FRAC_BITS, st)
    }

    /// [`Fixed::saturating_add`] with numeric-event accounting.
    pub fn add_tracked(self, rhs: Self, st: &mut NumericStatus) -> Self {
        match self.raw.checked_add(rhs.raw) {
            Some(raw) => Self { raw },
            None => {
                st.add_sat += 1;
                self.saturating_add(rhs)
            }
        }
    }

    /// [`Fixed::saturating_sub`] with numeric-event accounting.
    pub fn sub_tracked(self, rhs: Self, st: &mut NumericStatus) -> Self {
        match self.raw.checked_sub(rhs.raw) {
            Some(raw) => Self { raw },
            None => {
                st.sub_sat += 1;
                self.saturating_sub(rhs)
            }
        }
    }

    /// [`Fixed::saturating_mul`] with numeric-event accounting: `mul_sat`
    /// counts intermediate products that clipped at the 32-bit boundary.
    pub fn mul_tracked(self, rhs: Self, st: &mut NumericStatus) -> Self {
        let wide = i64::from(self.raw) * i64::from(rhs.raw);
        let shifted = wide >> DEFAULT_FRAC_BITS;
        let raw = shifted.clamp(i32::MIN as i64, i32::MAX as i64);
        if raw != shifted {
            st.mul_sat += 1;
        }
        Self { raw: raw as i32 }
    }

    /// [`Fixed::saturating_div`] with numeric-event accounting: `div_zero`
    /// counts exactly-zero divisors; a clipped wide quotient (nonzero
    /// divisor) counts under the shared wide-result class `mul_sat`.
    pub fn div_tracked(self, rhs: Self, st: &mut NumericStatus) -> Self {
        if rhs.raw == 0 {
            st.div_zero += 1;
            return if self.raw >= 0 { Self::MAX } else { Self::MIN };
        }
        let wide = (i64::from(self.raw) << DEFAULT_FRAC_BITS) / i64::from(rhs.raw);
        let raw = wide.clamp(i32::MIN as i64, i32::MAX as i64);
        if raw != wide {
            st.mul_sat += 1;
        }
        Self { raw: raw as i32 }
    }

    /// Absolute value, saturating at `MAX` for `MIN`.
    pub fn abs(self) -> Self {
        Self {
            raw: self.raw.saturating_abs(),
        }
    }

    /// True when the value is exactly zero.
    pub fn is_zero(self) -> bool {
        self.raw == 0
    }

    /// The smallest positive representable increment (1 ULP).
    pub fn epsilon() -> Self {
        Self { raw: 1 }
    }
}

impl std::ops::Add for Fixed {
    type Output = Fixed;
    fn add(self, rhs: Fixed) -> Fixed {
        self.saturating_add(rhs)
    }
}

impl std::ops::Sub for Fixed {
    type Output = Fixed;
    fn sub(self, rhs: Fixed) -> Fixed {
        self.saturating_sub(rhs)
    }
}

impl std::ops::Mul for Fixed {
    type Output = Fixed;
    fn mul(self, rhs: Fixed) -> Fixed {
        self.saturating_mul(rhs)
    }
}

impl std::ops::Div for Fixed {
    type Output = Fixed;
    fn div(self, rhs: Fixed) -> Fixed {
        self.saturating_div(rhs)
    }
}

impl std::ops::Neg for Fixed {
    type Output = Fixed;
    fn neg(self) -> Fixed {
        Fixed {
            raw: self.raw.saturating_neg(),
        }
    }
}

impl std::ops::AddAssign for Fixed {
    fn add_assign(&mut self, rhs: Fixed) {
        *self = *self + rhs;
    }
}

impl From<Fixed> for f32 {
    fn from(x: Fixed) -> f32 {
        x.to_f32()
    }
}

impl std::fmt::Display for Fixed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}", self.to_f32())
    }
}

/// A fixed-point dot product over `f32` slices, quantizing each operand on
/// the way in — the MAC-chain the MEM and OUTPUT modules execute.
///
/// The accumulator is a `Fixed` (32-bit with saturation), so long dot
/// products can saturate exactly as the hardware accumulator would.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn fixed_dot(a: &[f32], b: &[f32]) -> Fixed {
    assert_eq!(a.len(), b.len(), "fixed_dot length mismatch");
    let mut acc = Fixed::ZERO;
    for (&x, &y) in a.iter().zip(b) {
        acc += Fixed::from_f32(x) * Fixed::from_f32(y);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_values() {
        for &x in &[0.0f32, 1.0, -1.0, 0.5, -0.25, 123.456, -7.89] {
            let err = (Fixed::from_f32(x).to_f32() - x).abs();
            assert!(err <= 1.0 / 65536.0, "{x} round-trip error {err}");
        }
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(Fixed::ONE.to_f32(), 1.0);
        assert_eq!(Fixed::ZERO.to_f32(), 0.0);
        assert!(Fixed::MAX.to_f32() > 32767.0);
    }

    #[test]
    fn add_saturates() {
        assert_eq!(Fixed::MAX + Fixed::ONE, Fixed::MAX);
        assert_eq!(Fixed::MIN - Fixed::ONE, Fixed::MIN);
    }

    #[test]
    fn mul_matches_float_for_in_range() {
        let a = Fixed::from_f32(3.25);
        let b = Fixed::from_f32(-2.5);
        assert!(((a * b).to_f32() - -8.125).abs() < 1e-4);
    }

    #[test]
    fn mul_saturates_on_overflow() {
        let big = Fixed::from_f32(30000.0);
        assert_eq!(big * big, Fixed::MAX);
        assert_eq!(big * -big, Fixed::MIN);
    }

    #[test]
    fn div_by_zero_clamps() {
        assert_eq!(Fixed::ONE / Fixed::ZERO, Fixed::MAX);
        assert_eq!(-Fixed::ONE / Fixed::ZERO, Fixed::MIN);
    }

    #[test]
    fn div_matches_float() {
        let a = Fixed::from_f32(7.0);
        let b = Fixed::from_f32(2.0);
        assert!(((a / b).to_f32() - 3.5).abs() < 1e-4);
    }

    #[test]
    fn nan_maps_to_zero() {
        assert_eq!(Fixed::from_f32(f32::NAN), Fixed::ZERO);
    }

    #[test]
    fn narrow_format_loses_precision_monotonically() {
        let x = 0.123_456_79_f32;
        let e16 = (Fixed::quantize_f32(x, 16) - x).abs();
        let e8 = (Fixed::quantize_f32(x, 8) - x).abs();
        let e4 = (Fixed::quantize_f32(x, 4) - x).abs();
        assert!(e16 <= e8 && e8 <= e4, "{e16} {e8} {e4}");
    }

    #[test]
    fn fixed_dot_matches_float_dot() {
        let a = [0.5f32, -1.25, 2.0, 0.75];
        let b = [1.0f32, 0.5, -0.25, 4.0];
        let exact: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((fixed_dot(&a, &b).to_f32() - exact).abs() < 1e-3);
    }

    #[test]
    fn ordering_matches_float_ordering() {
        let a = Fixed::from_f32(1.5);
        let b = Fixed::from_f32(2.5);
        assert!(a < b);
        assert!(-b < -a);
    }

    #[test]
    fn display_shows_decimal() {
        assert_eq!(Fixed::from_f32(1.5).to_string(), "1.500000");
    }
}
