//! Dense linear algebra and fixed-point arithmetic for the MANN accelerator
//! reproduction.
//!
//! This crate is the numeric substrate shared by the software reference model
//! ([`memn2n`]), the inference-thresholding search, and the cycle-level FPGA
//! simulator. It provides:
//!
//! * [`Vector`] and [`Matrix`] — small, row-major, `f32` dense containers with
//!   the handful of kernels a memory network needs (dot products,
//!   matrix-vector products, outer products, softmax).
//! * [`Fixed`] — a Q16.16 fixed-point scalar mirroring the FPGA datapath,
//!   with saturating arithmetic and conversion to/from `f32`.
//! * [`activation`] — exact and LUT-approximated transcendental functions;
//!   the LUT variant models the BRAM exponential unit of the accelerator.
//! * [`NumericStatus`] — sticky numeric-event counters populated by the
//!   `*_tracked` fixed-point ops, mirroring a hardware status register.
//! * [`init`] — seeded weight initializers.
//! * [`stats`] — summary statistics used by calibration and tests.
//!
//! # Example
//!
//! ```
//! use mann_linalg::{Matrix, Vector};
//!
//! # fn main() -> Result<(), mann_linalg::ShapeError> {
//! let w = Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 2.0]])?;
//! let x = Vector::from(vec![3.0, 4.0]);
//! let y = w.matvec(&x)?;
//! assert_eq!(y.as_slice(), &[3.0, 8.0]);
//! # Ok(())
//! # }
//! ```
//!
//! [`memn2n`]: https://docs.rs/memn2n

pub mod activation;
pub mod fixed;
pub mod init;
pub mod matrix;
pub mod numeric;
pub mod reference;
pub mod stats;
pub mod vector;

mod error;

pub use error::ShapeError;
pub use fixed::Fixed;
pub use matrix::Matrix;
pub use numeric::NumericStatus;
pub use vector::Vector;
