use std::error::Error;
use std::fmt;

/// Error returned when operand dimensions do not match an operation's
/// requirements.
///
/// Carries the operation name and both shapes so failures deep inside a
/// training loop or the hardware simulator are immediately diagnosable.
///
/// ```
/// use mann_linalg::{Matrix, Vector};
///
/// let w = Matrix::zeros(2, 3);
/// let x = Vector::zeros(5);
/// let err = w.matvec(&x).unwrap_err();
/// assert!(err.to_string().contains("matvec"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    lhs: (usize, usize),
    rhs: (usize, usize),
}

impl ShapeError {
    /// Creates a shape error for operation `op` with the two offending
    /// shapes. Vectors are reported as `(len, 1)`.
    pub fn new(op: &'static str, lhs: (usize, usize), rhs: (usize, usize)) -> Self {
        Self { op, lhs, rhs }
    }

    /// The operation that rejected the operands.
    pub fn op(&self) -> &'static str {
        self.op
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in {}: {}x{} vs {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_operation_and_shapes() {
        let e = ShapeError::new("dot", (3, 1), (4, 1));
        let s = e.to_string();
        assert!(s.contains("dot"));
        assert!(s.contains("3x1"));
        assert!(s.contains("4x1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<ShapeError>();
    }
}
