//! Exact and hardware-approximated transcendental functions.
//!
//! The MEM module's softmax (paper Eq 1) needs `exp` and divide. On the FPGA
//! these are a BRAM lookup table with linear interpolation and a sequential
//! divider; [`ExpLut`] models the former so the simulator's numerics match
//! what the bitstream would compute.

use serde::{Deserialize, Serialize};

/// A bounded-domain exponential lookup table with linear interpolation.
///
/// The table covers `[x_min, 0]`; content-addressing logits are shifted by
/// their maximum before exponentiation (the standard stable-softmax trick,
/// which hardware performs with a running max register), so only
/// non-positive inputs occur. Inputs below `x_min` flush to zero, inputs
/// above `0` clamp to `exp(0) = 1`.
///
/// ```
/// use mann_linalg::activation::ExpLut;
///
/// let lut = ExpLut::new(256, -10.0);
/// assert!((lut.eval(0.0) - 1.0).abs() < 1e-3);
/// assert!((lut.eval(-1.0) - (-1.0f32).exp()).abs() < 1e-3);
/// assert_eq!(lut.eval(-50.0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpLut {
    x_min: f32,
    step: f32,
    table: Vec<f32>,
}

impl ExpLut {
    /// Builds a LUT with `entries` sample points over `[x_min, 0]`.
    ///
    /// # Panics
    ///
    /// Panics if `entries < 2` or `x_min >= 0`.
    pub fn new(entries: usize, x_min: f32) -> Self {
        assert!(entries >= 2, "need at least two LUT entries");
        assert!(x_min < 0.0, "x_min must be negative");
        let step = -x_min / (entries - 1) as f32;
        let table = (0..entries)
            .map(|i| (x_min + step * i as f32).exp())
            .collect();
        Self { x_min, step, table }
    }

    /// Number of table entries (BRAM depth).
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Lower bound of the covered domain.
    pub fn x_min(&self) -> f32 {
        self.x_min
    }

    /// Evaluates the approximated exponential.
    ///
    /// Inputs `> 0` clamp to `1.0`; inputs `< x_min` flush to `0.0`
    /// (denormal-free hardware behaviour).
    pub fn eval(&self, x: f32) -> f32 {
        if x >= 0.0 {
            return 1.0;
        }
        if x < self.x_min {
            return 0.0;
        }
        let pos = (x - self.x_min) / self.step;
        let idx = pos.floor() as usize;
        let frac = pos - idx as f32;
        if idx + 1 >= self.table.len() {
            return *self.table.last().expect("non-empty table");
        }
        self.table[idx] * (1.0 - frac) + self.table[idx + 1] * frac
    }

    /// Worst-case absolute error against `f32::exp` sampled between table
    /// knots — used by the LUT-size ablation.
    pub fn max_abs_error(&self, samples_per_cell: usize) -> f32 {
        let mut worst = 0.0f32;
        let cells = self.table.len() - 1;
        for i in 0..cells {
            for s in 0..=samples_per_cell {
                let x = self.x_min + self.step * (i as f32 + s as f32 / samples_per_cell as f32);
                let err = (self.eval(x) - x.exp()).abs();
                worst = worst.max(err);
            }
        }
        worst
    }
}

impl Default for ExpLut {
    /// The accelerator's default configuration: 256 entries over `[-16, 0]`
    /// (one 36Kb BRAM of 32-bit words with room to spare).
    fn default() -> Self {
        Self::new(256, -16.0)
    }
}

/// Numerically stable softmax computed through a LUT exponential — the exact
/// arithmetic sequence the MEM module performs (max, shifted exp, running
/// sum, one divide per element).
///
/// Returns an empty vector for empty input.
pub fn softmax_lut(xs: &[f32], lut: &ExpLut) -> Vec<f32> {
    if xs.is_empty() {
        return Vec::new();
    }
    let m = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = xs.iter().map(|&x| lut.eval(x - m)).collect();
    let z: f32 = exps.iter().sum();
    if z == 0.0 {
        // All inputs flushed to zero: fall back to uniform, as a hardware
        // divider guard would.
        return vec![1.0 / xs.len() as f32; xs.len()];
    }
    exps.into_iter().map(|e| e / z).collect()
}

/// Exact logistic sigmoid (reference implementations and tests).
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Exact hyperbolic tangent wrapper (kept for controller variants).
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_endpoints_are_exact() {
        let lut = ExpLut::new(128, -8.0);
        assert!((lut.eval(0.0) - 1.0).abs() < 1e-6);
        assert!((lut.eval(-8.0) - (-8.0f32).exp()).abs() < 1e-6);
    }

    #[test]
    fn lut_flushes_below_domain() {
        let lut = ExpLut::new(64, -4.0);
        assert_eq!(lut.eval(-4.001), 0.0);
        assert_eq!(lut.eval(f32::NEG_INFINITY), 0.0);
    }

    #[test]
    fn lut_clamps_positive_inputs() {
        let lut = ExpLut::default();
        assert_eq!(lut.eval(3.0), 1.0);
    }

    #[test]
    fn bigger_tables_are_more_accurate() {
        let small = ExpLut::new(16, -8.0).max_abs_error(8);
        let large = ExpLut::new(1024, -8.0).max_abs_error(8);
        assert!(large < small, "{large} !< {small}");
        assert!(large < 1e-4);
    }

    #[test]
    fn softmax_lut_close_to_exact() {
        let lut = ExpLut::default();
        let xs = [1.0f32, 2.0, 0.5, -1.0];
        let approx = softmax_lut(&xs, &lut);
        let m = 2.0f32;
        let exact: Vec<f32> = {
            let e: Vec<f32> = xs.iter().map(|x| (x - m).exp()).collect();
            let z: f32 = e.iter().sum();
            e.into_iter().map(|v| v / z).collect()
        };
        for (a, b) in approx.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        let sum: f32 = approx.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_lut_uniform_fallback_when_all_flush() {
        // One huge spike: every other element flushes, the spike keeps 1.0.
        let lut = ExpLut::new(32, -2.0);
        let out = softmax_lut(&[100.0, 0.0, 0.0], &lut);
        assert!((out[0] - 1.0).abs() < 1e-6);
        // Degenerate: empty input.
        assert!(softmax_lut(&[], &lut).is_empty());
    }

    #[test]
    #[should_panic(expected = "x_min must be negative")]
    fn lut_rejects_positive_domain() {
        let _ = ExpLut::new(8, 1.0);
    }

    #[test]
    fn sigmoid_is_centered() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
    }
}
