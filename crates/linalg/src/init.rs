//! Seeded weight initializers.
//!
//! All randomness flows through caller-supplied [`rand::Rng`] instances so
//! every experiment in the reproduction is deterministic given its seed.

use rand::Rng;

use crate::Matrix;

/// Fills a new `rows x cols` matrix with `N(0, std_dev)` samples
/// (Box–Muller via `rand`), the initializer the original MemN2N used
/// (σ = 0.1).
///
/// ```
/// use mann_linalg::init::gaussian;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let w = gaussian(4, 8, 0.1, &mut rng);
/// assert_eq!(w.shape(), (4, 8));
/// ```
pub fn gaussian<R: Rng>(rows: usize, cols: usize, std_dev: f32, rng: &mut R) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for x in m.as_mut_slice() {
        *x = sample_normal(rng) * std_dev;
    }
    m
}

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    let mut m = Matrix::zeros(rows, cols);
    for x in m.as_mut_slice() {
        *x = rng.gen_range(-a..a);
    }
    m
}

/// One standard normal sample via Box–Muller (avoids a dependency on
/// `rand_distr`).
fn sample_normal<R: Rng>(rng: &mut R) -> f32 {
    loop {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_is_deterministic_per_seed() {
        let a = gaussian(3, 3, 0.1, &mut StdRng::seed_from_u64(42));
        let b = gaussian(3, 3, 0.1, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
        let c = gaussian(3, 3, 0.1, &mut StdRng::seed_from_u64(43));
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = gaussian(100, 100, 0.1, &mut rng);
        let n = m.as_slice().len() as f32;
        let mean: f32 = m.as_slice().iter().sum::<f32>() / n;
        let var: f32 = m.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.01, "std {}", var.sqrt());
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = xavier_uniform(10, 20, &mut rng);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(m.as_slice().iter().all(|x| x.abs() <= a));
    }
}
