//! Dense `f32` vector with the kernels a memory network needs.

use serde::{Deserialize, Serialize};

use crate::ShapeError;

/// A dense, heap-allocated `f32` vector.
///
/// `Vector` is intentionally small: it supports exactly the operations used
/// by the MANN forward/backward passes and the accelerator simulator, with
/// shape-checked fallible methods (returning [`ShapeError`]) so dimension
/// bugs surface at the call site rather than as silent truncation.
///
/// ```
/// use mann_linalg::Vector;
///
/// # fn main() -> Result<(), mann_linalg::ShapeError> {
/// let a = Vector::from(vec![1.0, 2.0, 3.0]);
/// let b = Vector::from(vec![4.0, 5.0, 6.0]);
/// assert_eq!(a.dot(&b)?, 32.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f32>,
}

impl Vector {
    /// Creates a zero vector of length `len`.
    ///
    /// ```
    /// use mann_linalg::Vector;
    /// let v = Vector::zeros(4);
    /// assert_eq!(v.len(), 4);
    /// assert!(v.iter().all(|&x| x == 0.0));
    /// ```
    pub fn zeros(len: usize) -> Self {
        Self {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector filled with `value`.
    pub fn filled(len: usize, value: f32) -> Self {
        Self {
            data: vec![value; len],
        }
    }

    /// Creates a one-hot vector of length `len` with a single `1.0` at
    /// `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn one_hot(len: usize, index: usize) -> Self {
        assert!(index < len, "one_hot index {index} out of range {len}");
        let mut v = Self::zeros(len);
        v.data[index] = 1.0;
        v
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the elements as a slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Borrow the elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterate over elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Iterate mutably over elements.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.data.iter_mut()
    }

    /// Element at `index`, or `None` when out of range.
    pub fn get(&self, index: usize) -> Option<f32> {
        self.data.get(index).copied()
    }

    /// Dot product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the lengths differ.
    pub fn dot(&self, other: &Self) -> Result<f32, ShapeError> {
        if self.len() != other.len() {
            return Err(ShapeError::new("dot", (self.len(), 1), (other.len(), 1)));
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum())
    }

    /// Element-wise sum `self + other` as a new vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the lengths differ.
    pub fn add(&self, other: &Self) -> Result<Self, ShapeError> {
        if self.len() != other.len() {
            return Err(ShapeError::new("add", (self.len(), 1), (other.len(), 1)));
        }
        Ok(Self {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// Element-wise difference `self - other` as a new vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the lengths differ.
    pub fn sub(&self, other: &Self) -> Result<Self, ShapeError> {
        if self.len() != other.len() {
            return Err(ShapeError::new("sub", (self.len(), 1), (other.len(), 1)));
        }
        Ok(Self {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        })
    }

    /// In-place `self += scale * other` (AXPY).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the lengths differ.
    pub fn axpy(&mut self, scale: f32, other: &Self) -> Result<(), ShapeError> {
        if self.len() != other.len() {
            return Err(ShapeError::new("axpy", (self.len(), 1), (other.len(), 1)));
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Returns `scale * self` as a new vector.
    pub fn scaled(&self, scale: f32) -> Self {
        Self {
            data: self.data.iter().map(|x| x * scale).collect(),
        }
    }

    /// Multiplies every element by `scale` in place.
    pub fn scale_in_place(&mut self, scale: f32) {
        for x in &mut self.data {
            *x *= scale;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Largest element value, or `None` for an empty vector.
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().fold(None, |acc, x| {
            Some(match acc {
                Some(m) if m >= x => m,
                _ => x,
            })
        })
    }

    /// Index of the largest element, ties broken toward the lower index;
    /// `None` for an empty vector.
    ///
    /// This is the exact maximum inner-product winner the accelerator's
    /// OUTPUT module searches for (paper Eq 6).
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &x) in self.data.iter().enumerate() {
            match best {
                Some((_, bx)) if bx >= x => {}
                _ => best = Some((i, x)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Numerically stable softmax as a new vector.
    ///
    /// An empty vector maps to an empty vector. All outputs are finite,
    /// non-negative, and sum to 1 (up to rounding).
    ///
    /// ```
    /// use mann_linalg::Vector;
    /// let p = Vector::from(vec![1.0, 2.0, 3.0]).softmax();
    /// assert!((p.sum() - 1.0).abs() < 1e-6);
    /// ```
    pub fn softmax(&self) -> Self {
        if self.is_empty() {
            return Self::default();
        }
        let m = self.max().expect("non-empty");
        let exps: Vec<f32> = self.data.iter().map(|x| (x - m).exp()).collect();
        let z: f32 = exps.iter().sum();
        Self {
            data: exps.into_iter().map(|e| e / z).collect(),
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the lengths differ.
    pub fn hadamard(&self, other: &Self) -> Result<Self, ShapeError> {
        if self.len() != other.len() {
            return Err(ShapeError::new(
                "hadamard",
                (self.len(), 1),
                (other.len(), 1),
            ));
        }
        Ok(Self {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        })
    }

    /// Fills the vector with zeros, keeping its length.
    pub fn clear(&mut self) {
        for x in &mut self.data {
            *x = 0.0;
        }
    }

    /// Sets the length to `len` with every element zero, reusing the
    /// existing allocation — the workhorse of the zero-allocation inference
    /// path: scratch vectors are resized instead of freshly allocated.
    #[inline]
    pub fn resize_zeroed(&mut self, len: usize) {
        self.data.clear();
        self.data.resize(len, 0.0);
    }

    /// Makes `self` an element-for-element copy of `other`, reusing the
    /// existing allocation.
    #[inline]
    pub fn copy_from(&mut self, other: &Self) {
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Element-wise sum `a + b` written into `self` (resized, capacity
    /// reused).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the lengths differ.
    #[inline]
    pub fn add_into(&mut self, a: &Self, b: &Self) -> Result<(), ShapeError> {
        if a.len() != b.len() {
            return Err(ShapeError::new("add", (a.len(), 1), (b.len(), 1)));
        }
        self.data.clear();
        self.data
            .extend(a.data.iter().zip(&b.data).map(|(x, y)| x + y));
        Ok(())
    }

    /// Element-wise difference `a - b` written into `self` (resized,
    /// capacity reused).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the lengths differ.
    #[inline]
    pub fn sub_into(&mut self, a: &Self, b: &Self) -> Result<(), ShapeError> {
        if a.len() != b.len() {
            return Err(ShapeError::new("sub", (a.len(), 1), (b.len(), 1)));
        }
        self.data.clear();
        self.data
            .extend(a.data.iter().zip(&b.data).map(|(x, y)| x - y));
        Ok(())
    }

    /// Element-wise (Hadamard) product `a * b` written into `self`
    /// (resized, capacity reused).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the lengths differ.
    #[inline]
    pub fn hadamard_into(&mut self, a: &Self, b: &Self) -> Result<(), ShapeError> {
        if a.len() != b.len() {
            return Err(ShapeError::new("hadamard", (a.len(), 1), (b.len(), 1)));
        }
        self.data.clear();
        self.data
            .extend(a.data.iter().zip(&b.data).map(|(x, y)| x * y));
        Ok(())
    }

    /// Numerically stable softmax of `x` written into `self` (resized,
    /// capacity reused). Performs the same operations in the same order as
    /// [`Vector::softmax`], so results are bit-identical.
    #[inline]
    pub fn softmax_into(&mut self, x: &Self) {
        if x.is_empty() {
            self.data.clear();
            return;
        }
        let m = x.max().expect("non-empty");
        self.data.clear();
        self.data.extend(x.data.iter().map(|v| (v - m).exp()));
        let z: f32 = self.data.iter().sum();
        for e in &mut self.data {
            *e /= z;
        }
    }

    /// Batched softmax: applies [`Vector::softmax_into`] to each input
    /// independently, in input order, reusing the output buffers — the
    /// batched MEM path normalizes every query's score row of a shared
    /// story in one call. Each output is bit-identical to the per-query
    /// [`Vector::softmax_into`].
    pub fn softmax_batch_into(inputs: &[Self], outs: &mut Vec<Self>) {
        outs.resize_with(inputs.len(), Self::default);
        for (out, x) in outs.iter_mut().zip(inputs) {
            out.softmax_into(x);
        }
    }

    /// Fused dot + AXPY over slices: returns `probe · src` while performing
    /// `acc += scale * src` in the same pass — one traversal of `src`
    /// instead of two on the backward soft-read path (Eq 5: `da_i` and
    /// `dM_c[i]` both stream the read gradient).
    ///
    /// The dot accumulates left to right and each `acc[j]` receives exactly
    /// one add, matching the unfused loops bit for bit.
    ///
    /// # Panics
    ///
    /// Panics (via `debug_assert`) when the slice lengths differ; in release
    /// the traversal stops at the shortest slice.
    #[inline]
    pub fn dot_and_axpy(probe: &[f32], scale: f32, src: &[f32], acc: &mut [f32]) -> f32 {
        debug_assert_eq!(probe.len(), src.len());
        debug_assert_eq!(acc.len(), src.len());
        let mut dot = 0.0f32;
        for ((&p, &s), a) in probe.iter().zip(src).zip(acc.iter_mut()) {
            dot += p * s;
            *a += scale * s;
        }
        dot
    }

    /// True when every element is finite (no NaN/inf) — used by training
    /// sanity checks.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl From<Vec<f32>> for Vector {
    fn from(data: Vec<f32>) -> Self {
        Self { data }
    }
}

impl FromIterator<f32> for Vector {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

impl Extend<f32> for Vector {
    fn extend<I: IntoIterator<Item = f32>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl AsRef<[f32]> for Vector {
    fn as_ref(&self) -> &[f32] {
        &self.data
    }
}

impl std::ops::Index<usize> for Vector {
    type Output = f32;
    fn index(&self, index: usize) -> &f32 {
        &self.data[index]
    }
}

impl std::ops::IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut f32 {
        &mut self.data[index]
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f32;
    type IntoIter = std::slice::Iter<'a, f32>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl IntoIterator for Vector {
    type Item = f32;
    type IntoIter = std::vec::IntoIter<f32>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        assert_eq!(Vector::zeros(3).as_slice(), &[0.0; 3]);
        assert_eq!(Vector::filled(2, 7.5).as_slice(), &[7.5, 7.5]);
    }

    #[test]
    fn one_hot_places_single_one() {
        let v = Vector::one_hot(4, 2);
        assert_eq!(v.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
        assert_eq!(v.sum(), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_out_of_range_panics() {
        let _ = Vector::one_hot(3, 3);
    }

    #[test]
    fn dot_matches_manual() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![-1.0, 0.5, 2.0]);
        assert_eq!(a.dot(&b).unwrap(), -1.0 + 1.0 + 6.0);
    }

    #[test]
    fn dot_rejects_mismatched_lengths() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(a.dot(&b).is_err());
    }

    #[test]
    fn add_sub_axpy_roundtrip() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![10.0, 20.0]);
        let s = a.add(&b).unwrap();
        assert_eq!(s.as_slice(), &[11.0, 22.0]);
        let d = s.sub(&b).unwrap();
        assert_eq!(d.as_slice(), a.as_slice());
        let mut c = a.clone();
        c.axpy(2.0, &b).unwrap();
        assert_eq!(c.as_slice(), &[21.0, 42.0]);
    }

    #[test]
    fn argmax_prefers_first_on_ties() {
        let v = Vector::from(vec![1.0, 3.0, 3.0, 2.0]);
        assert_eq!(v.argmax(), Some(1));
        assert_eq!(Vector::zeros(0).argmax(), None);
    }

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let v = Vector::from(vec![0.1, 1.5, -2.0, 3.0]);
        let p = v.softmax();
        assert!((p.sum() - 1.0).abs() < 1e-6);
        let shifted = Vector::from(v.iter().map(|x| x + 100.0).collect::<Vec<_>>());
        let q = shifted.softmax();
        for (a, b) in p.iter().zip(q.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_handles_extreme_inputs() {
        let v = Vector::from(vec![1000.0, -1000.0]);
        let p = v.softmax();
        assert!(p.is_finite());
        assert!((p[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_of_empty_is_empty() {
        assert!(Vector::zeros(0).softmax().is_empty());
    }

    #[test]
    fn norm_and_sum() {
        let v = Vector::from(vec![3.0, 4.0]);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.sum(), 7.0);
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn collect_and_extend() {
        let v: Vector = (0..3).map(|i| i as f32).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
        let mut w = v;
        w.extend([9.0]);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut v = Vector::zeros(2);
        assert!(v.is_finite());
        v[1] = f32::NAN;
        assert!(!v.is_finite());
    }

    #[test]
    fn resize_zeroed_reuses_and_zeroes() {
        let mut v = Vector::from(vec![1.0, 2.0, 3.0]);
        v.resize_zeroed(2);
        assert_eq!(v.as_slice(), &[0.0, 0.0]);
        v.resize_zeroed(4);
        assert_eq!(v.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn into_variants_match_allocating_ops() {
        let a = Vector::from(vec![1.0, -2.0, 0.5]);
        let b = Vector::from(vec![4.0, 0.25, -1.0]);
        let mut out = Vector::zeros(0);
        out.add_into(&a, &b).unwrap();
        assert_eq!(out, a.add(&b).unwrap());
        out.sub_into(&a, &b).unwrap();
        assert_eq!(out, a.sub(&b).unwrap());
        out.hadamard_into(&a, &b).unwrap();
        assert_eq!(out, a.hadamard(&b).unwrap());
        out.softmax_into(&a);
        assert_eq!(out, a.softmax());
        out.copy_from(&b);
        assert_eq!(out, b);
    }

    #[test]
    fn softmax_into_of_empty_is_empty() {
        let mut out = Vector::from(vec![1.0]);
        out.softmax_into(&Vector::zeros(0));
        assert!(out.is_empty());
    }

    #[test]
    fn dot_and_axpy_matches_unfused() {
        let probe = [1.0f32, 2.0, 3.0];
        let src = [0.5f32, -1.0, 4.0];
        let mut acc = [10.0f32, 20.0, 30.0];
        let dot = Vector::dot_and_axpy(&probe, 2.0, &src, &mut acc);
        assert_eq!(dot, 0.5 - 2.0 + 12.0);
        assert_eq!(acc, [11.0, 18.0, 38.0]);
    }
}
