//! Numeric-event accounting for the fixed-point datapath.
//!
//! Hardware fixed-point units do not fail loudly: an adder that overflows
//! saturates, a divider fed a zero denominator clamps, a quantizer handed an
//! out-of-range operand clips. Real accelerators surface these events through
//! a sticky status register that software can read back after an inference.
//! [`NumericStatus`] is that register's simulation: a set of per-class event
//! counters populated by the `*_tracked` arithmetic on
//! [`Fixed`](crate::Fixed). The untracked operators remain untouched, so code
//! that does not attach a monitor pays nothing.
//!
//! Counters are plain `u64` sums, so merging two statuses (e.g. folding
//! per-module registers into a per-inference report) is associative and
//! commutative — the order in which events are observed can never change the
//! final register value.

use serde::{Deserialize, Serialize};

/// Sticky counters for the numeric-event classes a fixed-point datapath can
/// raise.
///
/// A default-constructed status is "clean"; every tracked operation that
/// saturates, clamps or sees a non-finite operand bumps exactly one counter.
/// Values produced by tracked ops are bit-identical to their untracked
/// counterparts — the status is an observer, never a participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NumericStatus {
    /// Additions whose true sum exceeded the representable range.
    pub add_sat: u64,
    /// Subtractions whose true difference exceeded the representable range.
    pub sub_sat: u64,
    /// Wide-result saturations: multiplications (or divisions with a nonzero
    /// divisor) whose 64-bit intermediate clipped at the 32-bit boundary.
    pub mul_sat: u64,
    /// Divisions with an exactly-zero divisor (the divider flag-and-clamps).
    pub div_zero: u64,
    /// Finite `f32` operands clipped by the quantizer at a float→fixed
    /// boundary.
    pub quant_clamp: u64,
    /// Non-finite `f32` operands (NaN or ±∞) observed at a float→fixed
    /// boundary — hardware has neither, so the quantizer maps them to
    /// zero / the clamp rails and raises this flag.
    pub nan_boundary: u64,
}

impl NumericStatus {
    /// A clean status register (all counters zero).
    pub const CLEAN: NumericStatus = NumericStatus {
        add_sat: 0,
        sub_sat: 0,
        mul_sat: 0,
        div_zero: 0,
        quant_clamp: 0,
        nan_boundary: 0,
    };

    /// Folds another status register into this one (field-wise saturating
    /// sum). Merging is associative and commutative.
    pub fn merge(&mut self, other: &NumericStatus) {
        self.add_sat = self.add_sat.saturating_add(other.add_sat);
        self.sub_sat = self.sub_sat.saturating_add(other.sub_sat);
        self.mul_sat = self.mul_sat.saturating_add(other.mul_sat);
        self.div_zero = self.div_zero.saturating_add(other.div_zero);
        self.quant_clamp = self.quant_clamp.saturating_add(other.quant_clamp);
        self.nan_boundary = self.nan_boundary.saturating_add(other.nan_boundary);
    }

    /// The merged form of two registers, by value.
    pub fn merged(mut self, other: &NumericStatus) -> NumericStatus {
        self.merge(other);
        self
    }

    /// Total events across every class.
    pub fn total(&self) -> u64 {
        self.add_sat
            .saturating_add(self.sub_sat)
            .saturating_add(self.mul_sat)
            .saturating_add(self.div_zero)
            .saturating_add(self.quant_clamp)
            .saturating_add(self.nan_boundary)
    }

    /// True when any event of any class was recorded.
    pub fn stressed(&self) -> bool {
        self.total() > 0
    }

    /// True when no event was recorded.
    pub fn is_clean(&self) -> bool {
        !self.stressed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_clean() {
        let st = NumericStatus::default();
        assert!(st.is_clean());
        assert!(!st.stressed());
        assert_eq!(st.total(), 0);
        assert_eq!(st, NumericStatus::CLEAN);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = NumericStatus {
            add_sat: 1,
            mul_sat: 2,
            ..NumericStatus::default()
        };
        let b = NumericStatus {
            add_sat: 3,
            nan_boundary: 4,
            ..NumericStatus::default()
        };
        a.merge(&b);
        assert_eq!(a.add_sat, 4);
        assert_eq!(a.mul_sat, 2);
        assert_eq!(a.nan_boundary, 4);
        assert_eq!(a.total(), 10);
        assert!(a.stressed());
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = NumericStatus {
            add_sat: u64::MAX,
            ..NumericStatus::default()
        };
        a.merge(&NumericStatus {
            add_sat: 5,
            ..NumericStatus::default()
        });
        assert_eq!(a.add_sat, u64::MAX);
    }

    #[test]
    fn serde_roundtrip() {
        let st = NumericStatus {
            add_sat: 1,
            sub_sat: 2,
            mul_sat: 3,
            div_zero: 4,
            quant_clamp: 5,
            nan_boundary: 6,
        };
        let v = serde::Serialize::to_value(&st);
        let back: NumericStatus = serde::Deserialize::from_value(&v).expect("roundtrip");
        assert_eq!(back, st);
    }
}
