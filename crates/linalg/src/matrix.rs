//! Row-major dense `f32` matrix.

use serde::{Deserialize, Serialize};

use crate::{ShapeError, Vector};

/// A row-major dense `f32` matrix.
///
/// Dimensions follow the paper's conventions: an embedding weight is
/// `embed_dim x vocab_size` (columns are word embeddings, Eq 2), the output
/// weight `W_o` is `output_dim x embed_dim` (rows are class weight vectors,
/// Eq 6).
///
/// ```
/// use mann_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), mann_linalg::ShapeError> {
/// let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let y = m.matvec(&Vector::from(vec![1.0, 1.0]))?;
/// assert_eq!(y.as_slice(), &[3.0, 7.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Result<Self, ShapeError> {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in &rows {
            if row.len() != n_cols {
                return Err(ShapeError::new(
                    "from_rows",
                    (n_rows, n_cols),
                    (1, row.len()),
                ));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: n_rows,
            cols: n_cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_flat", (rows, cols), (data.len(), 1)));
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major view of the elements.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat row-major mutable view of the elements.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range {}", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of range {}", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new [`Vector`].
    ///
    /// This is the access pattern of the INPUT & WRITE embedding module,
    /// which reads one weight column per input word index (Eq 2).
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vector {
        assert!(c < self.cols, "col {c} out of range {}", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != cols`.
    #[inline]
    pub fn matvec(&self, x: &Vector) -> Result<Vector, ShapeError> {
        let mut out = Vector::zeros(self.rows);
        self.matvec_into(x, &mut out)?;
        Ok(out)
    }

    /// Matrix-vector product `self * x`, written into a caller-provided
    /// buffer (resized to `rows`, capacity reused) — the zero-allocation
    /// hot path.
    ///
    /// Rows are processed eight at a time with one accumulator register per
    /// row: eight independent dependency chains over a shared stream of `x`
    /// (enough to saturate both FMA ports past the add latency), while each
    /// row's reduction keeps the exact left-to-right summation order of a
    /// plain dot product, so results are bit-identical to the scalar loop.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != cols`.
    #[inline]
    pub fn matvec_into(&self, x: &Vector, out: &mut Vector) -> Result<(), ShapeError> {
        if x.len() != self.cols {
            return Err(ShapeError::new("matvec", self.shape(), (x.len(), 1)));
        }
        out.resize_zeroed(self.rows);
        let xs = x.as_slice();
        let o = out.as_mut_slice();
        let cols = self.cols;
        let mut blocks = self.data.chunks_exact(8 * cols.max(1));
        let mut r = 0;
        if cols > 0 {
            for block in blocks.by_ref() {
                let (r0, tail) = block.split_at(cols);
                let (r1, tail) = tail.split_at(cols);
                let (r2, tail) = tail.split_at(cols);
                let (r3, tail) = tail.split_at(cols);
                let (r4, tail) = tail.split_at(cols);
                let (r5, tail) = tail.split_at(cols);
                let (r6, r7) = tail.split_at(cols);
                let mut acc = [0.0f32; 8];
                for (k, &xk) in xs.iter().enumerate() {
                    acc[0] += r0[k] * xk;
                    acc[1] += r1[k] * xk;
                    acc[2] += r2[k] * xk;
                    acc[3] += r3[k] * xk;
                    acc[4] += r4[k] * xk;
                    acc[5] += r5[k] * xk;
                    acc[6] += r6[k] * xk;
                    acc[7] += r7[k] * xk;
                }
                o[r..r + 8].copy_from_slice(&acc);
                r += 8;
            }
        }
        for row in blocks.remainder().chunks_exact(cols.max(1)) {
            o[r] = row.iter().zip(xs).map(|(a, b)| a * b).sum::<f32>();
            r += 1;
        }
        Ok(())
    }

    /// Batched matrix-vector product: `self * keys[q]` for every query,
    /// written into `outs[q]` (resized, capacity reused).
    ///
    /// This is the shared-story multi-query kernel: the matrix streams
    /// through memory once per 8-row block while every key reuses the
    /// block from L1, instead of `keys.len()` full passes over the matrix.
    /// Per `(key, row)` pair the reduction keeps the exact left-to-right
    /// summation order of [`Matrix::matvec_into`], so each output vector
    /// is bit-identical to the per-query call.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when any key's length differs from `cols`.
    #[inline]
    pub fn matvec_batch_into(
        &self,
        keys: &[Vector],
        outs: &mut Vec<Vector>,
    ) -> Result<(), ShapeError> {
        for key in keys {
            if key.len() != self.cols {
                return Err(ShapeError::new(
                    "matvec_batch",
                    self.shape(),
                    (key.len(), 1),
                ));
            }
        }
        outs.resize_with(keys.len(), Vector::default);
        for out in outs.iter_mut() {
            out.resize_zeroed(self.rows);
        }
        let cols = self.cols;
        let mut blocks = self.data.chunks_exact(8 * cols.max(1));
        let mut r = 0;
        if cols > 0 {
            for block in blocks.by_ref() {
                let (r0, tail) = block.split_at(cols);
                let (r1, tail) = tail.split_at(cols);
                let (r2, tail) = tail.split_at(cols);
                let (r3, tail) = tail.split_at(cols);
                let (r4, tail) = tail.split_at(cols);
                let (r5, tail) = tail.split_at(cols);
                let (r6, r7) = tail.split_at(cols);
                for (key, out) in keys.iter().zip(outs.iter_mut()) {
                    let xs = key.as_slice();
                    let mut acc = [0.0f32; 8];
                    for (k, &xk) in xs.iter().enumerate() {
                        acc[0] += r0[k] * xk;
                        acc[1] += r1[k] * xk;
                        acc[2] += r2[k] * xk;
                        acc[3] += r3[k] * xk;
                        acc[4] += r4[k] * xk;
                        acc[5] += r5[k] * xk;
                        acc[6] += r6[k] * xk;
                        acc[7] += r7[k] * xk;
                    }
                    out.as_mut_slice()[r..r + 8].copy_from_slice(&acc);
                }
                r += 8;
            }
        }
        for row in blocks.remainder().chunks_exact(cols.max(1)) {
            for (key, out) in keys.iter().zip(outs.iter_mut()) {
                out.as_mut_slice()[r] = row
                    .iter()
                    .zip(key.as_slice())
                    .map(|(a, b)| a * b)
                    .sum::<f32>();
            }
            r += 1;
        }
        Ok(())
    }

    /// Transposed matrix-vector product `self^T * x`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != rows`.
    #[inline]
    pub fn matvec_transposed(&self, x: &Vector) -> Result<Vector, ShapeError> {
        let mut out = Vector::zeros(self.cols);
        self.matvec_transposed_into(x, &mut out)?;
        Ok(out)
    }

    /// Transposed matrix-vector product `self^T * x` into a caller-provided
    /// buffer (resized to `cols`, capacity reused).
    ///
    /// Runs as a row-major AXPY sweep — `out += x[r] * row_r` for each row
    /// with a nonzero input — so the matrix streams through memory exactly
    /// once. The inner loop is a pure elementwise AXPY with no reduction,
    /// which the compiler vectorizes without changing any addition order
    /// (each SIMD lane is an independent output element). Per output
    /// element the additions happen in ascending row order starting from
    /// zero, with the same zero-input skip as the scalar loop, so results
    /// are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != rows`.
    #[inline]
    pub fn matvec_transposed_into(&self, x: &Vector, out: &mut Vector) -> Result<(), ShapeError> {
        if x.len() != self.rows {
            return Err(ShapeError::new(
                "matvec_transposed",
                self.shape(),
                (x.len(), 1),
            ));
        }
        out.resize_zeroed(self.cols);
        let xs = x.as_slice();
        let o = out.as_mut_slice();
        let cols = self.cols;
        for (r, &xr) in xs.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let row = &self.data[r * cols..r * cols + cols];
            for (ov, &rv) in o.iter_mut().zip(row) {
                *ov += xr * rv;
            }
        }
        Ok(())
    }

    /// Dense matrix product `self * other`.
    ///
    /// Keeps the cache-friendly `i`-`k`-`j` loop order (both inner streams
    /// are row-major) and the skip over zero left-hand elements, with the
    /// inner row AXPY unrolled four-wide over exact chunks. Per output
    /// element the additions still happen in ascending `k` order, so
    /// results are bit-identical to the scalar loop.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `self.cols != other.rows`.
    pub fn matmul(&self, other: &Self) -> Result<Self, ShapeError> {
        if self.cols != other.rows {
            return Err(ShapeError::new("matmul", self.shape(), other.shape()));
        }
        let mut out = Self::zeros(self.rows, other.cols);
        let n = other.cols;
        for i in 0..self.rows {
            let out_row = &mut out.data[i * n..(i + 1) * n];
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * n..(k + 1) * n];
                axpy_slice(out_row, a, b_row);
            }
        }
        Ok(out)
    }

    /// Returns the transpose as a new matrix.
    pub fn transposed(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        self.transposed_into(&mut out);
        out
    }

    /// Writes the transpose into a caller-provided matrix (reshaped to
    /// `cols x rows`, capacity reused) — the cached-transpose path: callers
    /// that apply `self^T` to many vectors can hoist one transpose and use
    /// the row-major [`Matrix::matvec_into`] repeatedly.
    pub fn transposed_into(&self, out: &mut Self) {
        out.rows = self.cols;
        out.cols = self.rows;
        out.data.clear();
        out.data.resize(self.rows * self.cols, 0.0);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
    }

    /// In-place rank-1 update `self += scale * a * b^T` (outer product
    /// accumulation) — the workhorse of the manual backprop. Rows with a
    /// zero coefficient are skipped; the row update is a four-wide unrolled
    /// AXPY.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `a.len() != rows` or `b.len() != cols`.
    #[inline]
    pub fn add_outer(&mut self, scale: f32, a: &Vector, b: &Vector) -> Result<(), ShapeError> {
        if a.len() != self.rows || b.len() != self.cols {
            return Err(ShapeError::new(
                "add_outer",
                self.shape(),
                (a.len(), b.len()),
            ));
        }
        let bs = b.as_slice();
        for (row, &av) in self
            .data
            .chunks_exact_mut(self.cols.max(1))
            .zip(a.as_slice())
        {
            let ar = scale * av;
            if ar == 0.0 {
                continue;
            }
            axpy_slice(row, ar, bs);
        }
        Ok(())
    }

    /// Fused backprop kernel: performs the rank-1 gradient update
    /// `self += scale * a * b^T` while simultaneously accumulating the
    /// transposed product `out = weights^T * a` in the same pass over `r`.
    ///
    /// In the MemN2N backward pass the pair
    /// `grads.w.add_outer(s, dy, x)` + `params.w.matvec_transposed(dy)`
    /// appears for every weight matrix; fusing them halves the number of
    /// passes over `dy` and shares the zero-skip test (both kernels skip
    /// rows where `scale * a[r] == 0`, which for `scale != 0` is exactly
    /// `a[r] == 0`). Summation orders match the unfused kernels, so
    /// results are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `weights.shape() != self.shape()`, when
    /// `a.len() != rows`, or when `b.len() != cols`.
    #[inline]
    pub fn add_outer_fused_matvec_t(
        &mut self,
        scale: f32,
        a: &Vector,
        b: &Vector,
        weights: &Self,
        out: &mut Vector,
    ) -> Result<(), ShapeError> {
        if weights.shape() != self.shape() {
            return Err(ShapeError::new(
                "add_outer_fused",
                self.shape(),
                weights.shape(),
            ));
        }
        if a.len() != self.rows || b.len() != self.cols {
            return Err(ShapeError::new(
                "add_outer",
                self.shape(),
                (a.len(), b.len()),
            ));
        }
        out.resize_zeroed(self.cols);
        let bs = b.as_slice();
        let o = out.as_mut_slice();
        let cols = self.cols.max(1);
        for ((grow, wrow), &av) in self
            .data
            .chunks_exact_mut(cols)
            .zip(weights.data.chunks_exact(cols))
            .zip(a.as_slice())
        {
            let ar = scale * av;
            if ar != 0.0 {
                axpy_slice(grow, ar, bs);
            }
            if av != 0.0 {
                axpy_slice(o, av, wrow);
            }
        }
        Ok(())
    }

    /// In-place `self += scale * other` (matrix AXPY).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn axpy(&mut self, scale: f32, other: &Self) -> Result<(), ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new("axpy", self.shape(), other.shape()));
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Adds `scale * col_vec` into column `c` in place — the embedding
    /// gradient scatter.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `col_vec.len() != rows`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn add_to_col(&mut self, c: usize, scale: f32, col_vec: &Vector) -> Result<(), ShapeError> {
        assert!(c < self.cols, "col {c} out of range {}", self.cols);
        if col_vec.len() != self.rows {
            return Err(ShapeError::new(
                "add_to_col",
                self.shape(),
                (col_vec.len(), 1),
            ));
        }
        for r in 0..self.rows {
            self.data[r * self.cols + c] += scale * col_vec[r];
        }
        Ok(())
    }

    /// Sums the columns selected by `indices` into a new [`Vector`] — the
    /// index-based embedding of Eq 2 (`M_i = Σ_{idx ∈ S_i} W_emb[:, idx]`).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[inline]
    pub fn sum_cols(&self, indices: &[usize]) -> Vector {
        let mut out = Vector::zeros(self.rows);
        self.sum_cols_into(indices, &mut out);
        out
    }

    /// Column-sum embedding written into a caller-provided buffer (resized
    /// to `rows`, capacity reused).
    ///
    /// Walks rows in the outer loop so each pass gathers from one
    /// contiguous row instead of striding down a column per index. The
    /// per-element additions still happen in `indices` order, matching the
    /// column-outer loop bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[inline]
    pub fn sum_cols_into(&self, indices: &[usize], out: &mut Vector) {
        for &c in indices {
            assert!(c < self.cols, "col {c} out of range {}", self.cols);
        }
        out.resize_zeroed(self.rows);
        let o = out.as_mut_slice();
        for (row, acc) in self.data.chunks_exact(self.cols.max(1)).zip(o) {
            for &c in indices {
                *acc += row[c];
            }
        }
    }

    /// Sets every element to zero, keeping the shape.
    pub fn clear(&mut self) {
        for x in &mut self.data {
            *x = 0.0;
        }
    }

    /// Reshapes to `rows x cols` with every element zero, reusing the
    /// existing allocation — the matrix counterpart of
    /// [`Vector::resize_zeroed`] used by per-sample scratch memories.
    #[inline]
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Slice-input variant of [`Matrix::add_to_col`], for callers whose
    /// column update lives in another matrix's row (the embedding gradient
    /// scatter) — avoids materializing a temporary [`Vector`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `src.len() != rows`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    #[inline]
    pub fn add_to_col_slice(
        &mut self,
        c: usize,
        scale: f32,
        src: &[f32],
    ) -> Result<(), ShapeError> {
        assert!(c < self.cols, "col {c} out of range {}", self.cols);
        if src.len() != self.rows {
            return Err(ShapeError::new("add_to_col", self.shape(), (src.len(), 1)));
        }
        for (r, &v) in src.iter().enumerate() {
            self.data[r * self.cols + c] += scale * v;
        }
        Ok(())
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, scale: f32) {
        for x in &mut self.data {
            *x *= scale;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        // Eight independent accumulators break the loop-carried dependency
        // of a scalar sum (and vectorize cleanly), which matters because
        // the training loop computes this over every gradient entry on
        // every sample for clipping. Lanes are combined in a fixed order,
        // so the result is deterministic (it may differ from a sequential
        // sum in the last ulp, which the clip threshold comparison
        // tolerates).
        let mut acc = [0.0f32; 8];
        let mut chunks = self.data.chunks_exact(8);
        for c in chunks.by_ref() {
            for (a, &x) in acc.iter_mut().zip(c) {
                *a += x * x;
            }
        }
        let mut tail = 0.0f32;
        for &x in chunks.remainder() {
            tail += x * x;
        }
        let pairs = [
            acc[0] + acc[1],
            acc[2] + acc[3],
            acc[4] + acc[5],
            acc[6] + acc[7],
        ];
        ((pairs[0] + pairs[1]) + (pairs[2] + pairs[3]) + tail).sqrt()
    }

    /// True when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks(self.cols.max(1)).take(self.rows)
    }
}

/// Four-wide unrolled slice AXPY `y += a * x`, the shared inner loop of
/// [`Matrix::matmul`], [`Matrix::add_outer`] and the fused backprop kernel.
/// Each `y[j]` receives exactly one `a * x[j]` add per call, so unrolling
/// cannot change results.
#[inline]
fn axpy_slice(y: &mut [f32], a: f32, x: &[f32]) {
    let mut yc = y.chunks_exact_mut(4);
    let mut xc = x.chunks_exact(4);
    for (yb, xb) in yc.by_ref().zip(xc.by_ref()) {
        yb[0] += a * xb[0];
        yb[1] += a * xb[1];
        yb[2] += a * xb[2];
        yb[3] += a * xb[3];
    }
    for (yv, &xv) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yv += a * xv;
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn shape_accessors() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn from_flat_checks_size() {
        assert!(Matrix::from_flat(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_flat(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn row_and_col_access() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2).as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = sample();
        let y = m.matvec(&Vector::from(vec![1.0, 0.0, -1.0])).unwrap();
        assert_eq!(y.as_slice(), &[-2.0, -2.0]);
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let m = sample();
        let x = Vector::from(vec![1.0, 2.0]);
        let a = m.matvec_transposed(&x).unwrap();
        let b = m.transposed().matvec(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let id = Matrix::identity(3);
        assert_eq!(m.matmul(&id).unwrap(), m);
    }

    #[test]
    fn matmul_shape_check() {
        let m = sample();
        assert!(m.matmul(&sample()).is_err());
    }

    #[test]
    fn add_outer_matches_manual() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(
            2.0,
            &Vector::from(vec![1.0, 3.0]),
            &Vector::from(vec![5.0, 7.0]),
        )
        .unwrap();
        assert_eq!(m.as_slice(), &[10.0, 14.0, 30.0, 42.0]);
    }

    #[test]
    fn sum_cols_implements_eq2_embedding() {
        let m = sample();
        // words {0, 2, 2}: column 0 + column 2 twice
        let v = m.sum_cols(&[0, 2, 2]);
        assert_eq!(v.as_slice(), &[1.0 + 3.0 + 3.0, 4.0 + 6.0 + 6.0]);
    }

    #[test]
    fn add_to_col_scatters() {
        let mut m = Matrix::zeros(2, 3);
        m.add_to_col(1, 1.0, &Vector::from(vec![9.0, 8.0])).unwrap();
        assert_eq!(m.col(1).as_slice(), &[9.0, 8.0]);
        assert_eq!(m.col(0).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn transpose_is_involution() {
        let m = sample();
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((Matrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn iter_rows_yields_all_rows() {
        let m = sample();
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], &[1.0, 2.0, 3.0]);
    }

    fn counting_matrix(rows: usize, cols: usize) -> Matrix {
        // Deterministic non-uniform values exercising the unrolled blocks.
        Matrix::from_flat(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| ((i * 7 + 3) % 13) as f32 - 6.0)
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn matvec_into_reuses_buffer_and_matches_reference() {
        // 9 rows x 7 cols: exercises the 4-row blocks plus a remainder row.
        let m = counting_matrix(9, 7);
        let x: Vector = (0..7).map(|i| i as f32 * 0.5 - 1.0).collect();
        let mut out = Vector::zeros(3); // wrong size on purpose
        m.matvec_into(&x, &mut out).unwrap();
        assert_eq!(out, crate::reference::matvec(&m, &x));
        // A second call into the same (now correctly sized) buffer.
        m.matvec_into(&x, &mut out).unwrap();
        assert_eq!(out, crate::reference::matvec(&m, &x));
    }

    #[test]
    fn matvec_transposed_into_matches_reference_exactly() {
        // 7 rows x 10 cols with zeros in x to exercise the skip path.
        let m = counting_matrix(7, 10);
        let mut x: Vector = (0..7).map(|i| i as f32 - 3.0).collect();
        x[3] = 0.0;
        let mut out = Vector::zeros(0);
        m.matvec_transposed_into(&x, &mut out).unwrap();
        assert_eq!(out, crate::reference::matvec_transposed(&m, &x));
    }

    #[test]
    fn matmul_matches_reference_exactly() {
        let a = counting_matrix(5, 6);
        let b = counting_matrix(6, 9);
        assert_eq!(a.matmul(&b).unwrap(), crate::reference::matmul(&a, &b));
    }

    #[test]
    fn add_outer_matches_reference_exactly() {
        let a: Vector = (0..5).map(|i| (i % 3) as f32 - 1.0).collect(); // has zeros
        let b: Vector = (0..6).map(|i| i as f32 * 0.25).collect();
        let mut fast = counting_matrix(5, 6);
        let mut slow = fast.clone();
        fast.add_outer(1.5, &a, &b).unwrap();
        crate::reference::add_outer(&mut slow, 1.5, &a, &b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn sum_cols_row_major_matches_reference_exactly() {
        let m = counting_matrix(6, 8);
        let indices = [0, 7, 3, 3, 5];
        assert_eq!(
            m.sum_cols(&indices),
            crate::reference::sum_cols(&m, &indices)
        );
    }

    #[test]
    fn fused_add_outer_matvec_t_matches_unfused() {
        let w = counting_matrix(6, 5);
        let mut dy: Vector = (0..6).map(|i| i as f32 * 0.3 - 0.9).collect();
        dy[2] = 0.0; // exercise the shared zero-skip
        let x: Vector = (0..5).map(|i| 1.0 - i as f32 * 0.4).collect();

        let mut grad_fused = counting_matrix(6, 5);
        let mut grad_plain = grad_fused.clone();
        let mut out_fused = Vector::zeros(0);
        grad_fused
            .add_outer_fused_matvec_t(1.0, &dy, &x, &w, &mut out_fused)
            .unwrap();
        grad_plain.add_outer(1.0, &dy, &x).unwrap();
        let out_plain = w.matvec_transposed(&dy).unwrap();

        assert_eq!(grad_fused, grad_plain);
        assert_eq!(out_fused, out_plain);
    }

    #[test]
    fn transposed_into_reshapes_buffer() {
        let m = counting_matrix(4, 7);
        let mut t = Matrix::zeros(2, 2);
        m.transposed_into(&mut t);
        assert_eq!(t, m.transposed());
        assert_eq!(t.shape(), (7, 4));
    }

    #[test]
    fn empty_shapes_are_handled() {
        let m = Matrix::zeros(3, 0);
        let y = m.matvec(&Vector::zeros(0)).unwrap();
        assert_eq!(y.as_slice(), &[0.0; 3]);
        let t = m.matvec_transposed(&Vector::zeros(3)).unwrap();
        assert!(t.is_empty());
        assert_eq!(m.sum_cols(&[]).as_slice(), &[0.0; 3]);
    }
}
