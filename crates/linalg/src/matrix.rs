//! Row-major dense `f32` matrix.

use serde::{Deserialize, Serialize};

use crate::{ShapeError, Vector};

/// A row-major dense `f32` matrix.
///
/// Dimensions follow the paper's conventions: an embedding weight is
/// `embed_dim x vocab_size` (columns are word embeddings, Eq 2), the output
/// weight `W_o` is `output_dim x embed_dim` (rows are class weight vectors,
/// Eq 6).
///
/// ```
/// use mann_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), mann_linalg::ShapeError> {
/// let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let y = m.matvec(&Vector::from(vec![1.0, 1.0]))?;
/// assert_eq!(y.as_slice(), &[3.0, 7.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Result<Self, ShapeError> {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in &rows {
            if row.len() != n_cols {
                return Err(ShapeError::new("from_rows", (n_rows, n_cols), (1, row.len())));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: n_rows,
            cols: n_cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_flat", (rows, cols), (data.len(), 1)));
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major view of the elements.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat row-major mutable view of the elements.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range {}", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of range {}", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new [`Vector`].
    ///
    /// This is the access pattern of the INPUT & WRITE embedding module,
    /// which reads one weight column per input word index (Eq 2).
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vector {
        assert!(c < self.cols, "col {c} out of range {}", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != cols`.
    pub fn matvec(&self, x: &Vector) -> Result<Vector, ShapeError> {
        if x.len() != self.cols {
            return Err(ShapeError::new("matvec", self.shape(), (x.len(), 1)));
        }
        let xs = x.as_slice();
        Ok((0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(xs)
                    .map(|(a, b)| a * b)
                    .sum::<f32>()
            })
            .collect())
    }

    /// Transposed matrix-vector product `self^T * x`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `x.len() != rows`.
    pub fn matvec_transposed(&self, x: &Vector) -> Result<Vector, ShapeError> {
        if x.len() != self.rows {
            return Err(ShapeError::new("matvec_transposed", self.shape(), (x.len(), 1)));
        }
        let mut out = Vector::zeros(self.cols);
        for r in 0..self.rows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            let row = self.row(r);
            let o = out.as_mut_slice();
            for c in 0..self.cols {
                o[c] += xr * row[c];
            }
        }
        Ok(out)
    }

    /// Dense matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `self.cols != other.rows`.
    pub fn matmul(&self, other: &Self) -> Result<Self, ShapeError> {
        if self.cols != other.rows {
            return Err(ShapeError::new("matmul", self.shape(), other.shape()));
        }
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose as a new matrix.
    pub fn transposed(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// In-place rank-1 update `self += scale * a * b^T` (outer product
    /// accumulation) — the workhorse of the manual backprop.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `a.len() != rows` or `b.len() != cols`.
    pub fn add_outer(&mut self, scale: f32, a: &Vector, b: &Vector) -> Result<(), ShapeError> {
        if a.len() != self.rows || b.len() != self.cols {
            return Err(ShapeError::new("add_outer", self.shape(), (a.len(), b.len())));
        }
        for r in 0..self.rows {
            let ar = scale * a[r];
            if ar == 0.0 {
                continue;
            }
            let row = self.row_mut(r);
            for (c, bv) in b.iter().enumerate() {
                row[c] += ar * bv;
            }
        }
        Ok(())
    }

    /// In-place `self += scale * other` (matrix AXPY).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn axpy(&mut self, scale: f32, other: &Self) -> Result<(), ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new("axpy", self.shape(), other.shape()));
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Adds `scale * col_vec` into column `c` in place — the embedding
    /// gradient scatter.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `col_vec.len() != rows`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn add_to_col(&mut self, c: usize, scale: f32, col_vec: &Vector) -> Result<(), ShapeError> {
        assert!(c < self.cols, "col {c} out of range {}", self.cols);
        if col_vec.len() != self.rows {
            return Err(ShapeError::new("add_to_col", self.shape(), (col_vec.len(), 1)));
        }
        for r in 0..self.rows {
            self.data[r * self.cols + c] += scale * col_vec[r];
        }
        Ok(())
    }

    /// Sums the columns selected by `indices` into a new [`Vector`] — the
    /// index-based embedding of Eq 2 (`M_i = Σ_{idx ∈ S_i} W_emb[:, idx]`).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn sum_cols(&self, indices: &[usize]) -> Vector {
        let mut out = Vector::zeros(self.rows);
        for &c in indices {
            assert!(c < self.cols, "col {c} out of range {}", self.cols);
            for r in 0..self.rows {
                out[r] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Sets every element to zero, keeping the shape.
    pub fn clear(&mut self) {
        for x in &mut self.data {
            *x = 0.0;
        }
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, scale: f32) {
        for x in &mut self.data {
            *x *= scale;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks(self.cols.max(1)).take(self.rows)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn shape_accessors() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn from_flat_checks_size() {
        assert!(Matrix::from_flat(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_flat(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn row_and_col_access() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2).as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = sample();
        let y = m.matvec(&Vector::from(vec![1.0, 0.0, -1.0])).unwrap();
        assert_eq!(y.as_slice(), &[-2.0, -2.0]);
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let m = sample();
        let x = Vector::from(vec![1.0, 2.0]);
        let a = m.matvec_transposed(&x).unwrap();
        let b = m.transposed().matvec(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let id = Matrix::identity(3);
        assert_eq!(m.matmul(&id).unwrap(), m);
    }

    #[test]
    fn matmul_shape_check() {
        let m = sample();
        assert!(m.matmul(&sample()).is_err());
    }

    #[test]
    fn add_outer_matches_manual() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(2.0, &Vector::from(vec![1.0, 3.0]), &Vector::from(vec![5.0, 7.0]))
            .unwrap();
        assert_eq!(m.as_slice(), &[10.0, 14.0, 30.0, 42.0]);
    }

    #[test]
    fn sum_cols_implements_eq2_embedding() {
        let m = sample();
        // words {0, 2, 2}: column 0 + column 2 twice
        let v = m.sum_cols(&[0, 2, 2]);
        assert_eq!(v.as_slice(), &[1.0 + 3.0 + 3.0, 4.0 + 6.0 + 6.0]);
    }

    #[test]
    fn add_to_col_scatters() {
        let mut m = Matrix::zeros(2, 3);
        m.add_to_col(1, 1.0, &Vector::from(vec![9.0, 8.0])).unwrap();
        assert_eq!(m.col(1).as_slice(), &[9.0, 8.0]);
        assert_eq!(m.col(0).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn transpose_is_involution() {
        let m = sample();
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((Matrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn iter_rows_yields_all_rows() {
        let m = sample();
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], &[1.0, 2.0, 3.0]);
    }
}
