//! Summary statistics shared by calibration code and tests.

/// Arithmetic mean; `0.0` for empty input.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population variance; `0.0` for inputs shorter than two elements.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f32>() / xs.len() as f32
}

/// Population standard deviation.
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Minimum value; `None` for empty input. NaNs are ignored.
pub fn min(xs: &[f32]) -> Option<f32> {
    xs.iter().copied().filter(|x| !x.is_nan()).reduce(f32::min)
}

/// Maximum value; `None` for empty input. NaNs are ignored.
pub fn max(xs: &[f32]) -> Option<f32> {
    xs.iter().copied().filter(|x| !x.is_nan()).reduce(f32::max)
}

/// Linear-interpolated percentile (`q` in `[0, 1]`); `None` for empty input.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn percentile(xs: &[f32], q: f32) -> Option<f32> {
    assert!((0.0..=1.0).contains(&q), "percentile q={q} outside [0,1]");
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f32> = xs.to_vec();
    // total_cmp gives NaNs a fixed position (after +inf) instead of the
    // arbitrary placement a partial_cmp-with-Equal-fallback produces.
    sorted.sort_by(f32::total_cmp);
    let pos = q * (sorted.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f32;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-6);
        assert!((std_dev(&xs) - 1.25f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn min_max_skip_nan() {
        let xs = [f32::NAN, 2.0, -1.0];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(2.0));
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 0.0), Some(0.0));
        assert_eq!(percentile(&xs, 1.0), Some(10.0));
        assert_eq!(percentile(&xs, 0.5), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn percentile_rejects_bad_q() {
        let _ = percentile(&[1.0], 1.5);
    }
}
