//! Scalar reference kernels — the pre-optimization implementations.
//!
//! These are the straightforward loops the optimized [`Matrix`] kernels
//! replaced. They are kept for two jobs:
//!
//! * **Correctness oracle**: property tests check the unrolled/blocked
//!   kernels against these on random shapes (exact for order-preserving
//!   kernels, within tolerance otherwise).
//! * **Perf baseline**: the `perf_gate` binary in `mann-bench` times these
//!   against the optimized kernels to enforce the speedup floor, so the
//!   "before" side of the comparison is real code, not a stale number.
//!
//! Shape checking is the caller's job here; these panic on mismatched
//! dimensions via slice indexing.

use crate::{Matrix, Vector};

/// Naive matrix-vector product: one sequential dot product per row.
pub fn matvec(m: &Matrix, x: &Vector) -> Vector {
    let xs = x.as_slice();
    (0..m.rows())
        .map(|r| m.row(r).iter().zip(xs).map(|(a, b)| a * b).sum::<f32>())
        .collect()
}

/// Naive batched matrix-vector product: one independent [`matvec`] per
/// key, in key order — the per-query loop the batched kernel fuses.
pub fn matvec_batch(m: &Matrix, keys: &[Vector]) -> Vec<Vector> {
    keys.iter().map(|k| matvec(m, k)).collect()
}

/// Naive numerically stable softmax: max-shift, exponentiate, normalize —
/// the same operation order as [`Vector::softmax`].
pub fn softmax(x: &Vector) -> Vector {
    if x.is_empty() {
        return Vector::default();
    }
    let m = x.iter().fold(f32::NEG_INFINITY, |a, &v| a.max(v));
    let exps: Vec<f32> = x.iter().map(|&v| (v - m).exp()).collect();
    let z: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / z).collect()
}

/// Naive batched softmax: one independent [`softmax`] per row.
pub fn softmax_batch(rows: &[Vector]) -> Vec<Vector> {
    rows.iter().map(softmax).collect()
}

/// Naive transposed matrix-vector product: row-outer scalar accumulation
/// through memory, skipping zero inputs.
pub fn matvec_transposed(m: &Matrix, x: &Vector) -> Vector {
    let mut out = Vector::zeros(m.cols());
    for r in 0..m.rows() {
        let xr = x[r];
        if xr == 0.0 {
            continue;
        }
        let row = m.row(r);
        let o = out.as_mut_slice();
        for c in 0..m.cols() {
            o[c] += xr * row[c];
        }
    }
    out
}

/// Naive dense matrix product: scalar `i`-`k`-`j` loops with a zero-skip
/// on the left operand.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a[(i, k)];
            if av == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                out[(i, j)] += av * b[(k, j)];
            }
        }
    }
    out
}

/// Naive rank-1 update `m += scale * a * b^T`.
pub fn add_outer(m: &mut Matrix, scale: f32, a: &Vector, b: &Vector) {
    for r in 0..m.rows() {
        let ar = scale * a[r];
        if ar == 0.0 {
            continue;
        }
        let row = m.row_mut(r);
        for (c, bv) in b.iter().enumerate() {
            row[c] += ar * bv;
        }
    }
}

/// Naive column-sum embedding: column-outer, strided row walk per index.
pub fn sum_cols(m: &Matrix, indices: &[usize]) -> Vector {
    let mut out = Vector::zeros(m.rows());
    for &c in indices {
        assert!(c < m.cols(), "col {c} out of range {}", m.cols());
        for r in 0..m.rows() {
            out[r] += m[(r, c)];
        }
    }
    out
}
