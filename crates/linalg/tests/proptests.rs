//! Property-based tests for the linear-algebra substrate.

use mann_linalg::activation::{softmax_lut, ExpLut};
use mann_linalg::{reference, Fixed, Matrix, Vector};
use proptest::prelude::*;

/// Deterministic pseudo-random fill so shapes can vary freely without
/// flat-mapping data strategies; `zeros` plants exact zeros to exercise the
/// kernels' zero-input skip paths.
fn lcg_fill(slice: &mut [f32], mut state: u64, zeros: bool) {
    for (i, x) in slice.iter_mut().enumerate() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *x = if zeros && i % 3 == 0 {
            0.0
        } else {
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        };
    }
}

fn filled_matrix(rows: usize, cols: usize, seed: u64, zeros: bool) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    lcg_fill(m.as_mut_slice(), seed, zeros);
    m
}

fn filled_vector(len: usize, seed: u64, zeros: bool) -> Vector {
    let mut v = Vector::zeros(len);
    lcg_fill(v.as_mut_slice(), seed, zeros);
    v
}

fn small_f32() -> impl Strategy<Value = f32> {
    (-100.0f32..100.0).prop_map(|x| (x * 1024.0).round() / 1024.0)
}

fn vec_of(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(small_f32(), len)
}

proptest! {
    #[test]
    fn softmax_is_a_distribution(xs in proptest::collection::vec(-50.0f32..50.0, 1..64)) {
        let p = Vector::from(xs).softmax();
        prop_assert!(p.is_finite());
        prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
        prop_assert!((p.sum() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn softmax_preserves_argmax(xs in proptest::collection::vec(-50.0f32..50.0, 1..64)) {
        let v = Vector::from(xs);
        prop_assert_eq!(v.argmax(), v.softmax().argmax());
    }

    #[test]
    fn dot_is_commutative(a in vec_of(16), b in vec_of(16)) {
        let va = Vector::from(a);
        let vb = Vector::from(b);
        let ab = va.dot(&vb).unwrap();
        let ba = vb.dot(&va).unwrap();
        prop_assert!((ab - ba).abs() <= 1e-3 * (1.0 + ab.abs()));
    }

    #[test]
    fn matvec_is_linear(rows in 1usize..8, cols in 1usize..8, s in -4.0f32..4.0) {
        let mut m = Matrix::zeros(rows, cols);
        for (i, x) in m.as_mut_slice().iter_mut().enumerate() {
            *x = (i as f32 * 0.37).sin();
        }
        let x: Vector = (0..cols).map(|i| (i as f32 * 0.91).cos()).collect();
        let y1 = m.matvec(&x.scaled(s)).unwrap();
        let y2 = m.matvec(&x).unwrap().scaled(s);
        for (a, b) in y1.iter().zip(y2.iter()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_matvec_agree(rows in 1usize..8, cols in 1usize..8) {
        let mut m = Matrix::zeros(rows, cols);
        for (i, x) in m.as_mut_slice().iter_mut().enumerate() {
            *x = ((i * 7 % 13) as f32) - 6.0;
        }
        let x: Vector = (0..rows).map(|i| i as f32 - 2.0).collect();
        let a = m.matvec_transposed(&x).unwrap();
        let b = m.transposed().matvec(&x).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn fixed_roundtrip_error_is_bounded(x in -30000.0f32..30000.0) {
        let err = (Fixed::from_f32(x).to_f32() - x).abs();
        prop_assert!(err <= 1.0 / 65536.0 + f32::EPSILON * x.abs());
    }

    #[test]
    fn fixed_add_matches_float_in_range(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
        let s = (Fixed::from_f32(a) + Fixed::from_f32(b)).to_f32();
        prop_assert!((s - (a + b)).abs() < 1e-3);
    }

    #[test]
    fn fixed_mul_matches_float_in_range(a in -100.0f32..100.0, b in -100.0f32..100.0) {
        let p = (Fixed::from_f32(a) * Fixed::from_f32(b)).to_f32();
        prop_assert!((p - a * b).abs() < 0.01 + 1e-4 * (a * b).abs());
    }

    #[test]
    fn fixed_ordering_is_consistent(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
        // Quantization can merge near-equal values but must never invert order.
        let (fa, fb) = (Fixed::from_f32(a), Fixed::from_f32(b));
        if a < b {
            prop_assert!(fa <= fb);
        } else if a > b {
            prop_assert!(fa >= fb);
        }
    }

    #[test]
    fn exp_lut_monotone_nonincreasing_toward_neg(x in -15.9f32..0.0) {
        let lut = ExpLut::default();
        let y1 = lut.eval(x);
        let y2 = lut.eval(x - 0.05);
        prop_assert!(y2 <= y1 + 1e-6);
        prop_assert!((0.0..=1.0).contains(&y1));
    }

    #[test]
    fn softmax_lut_is_distribution(xs in proptest::collection::vec(-8.0f32..8.0, 1..32)) {
        let lut = ExpLut::default();
        let p = softmax_lut(&xs, &lut);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| x >= 0.0));
    }

    // The optimized kernels (unrolled matvec, AXPY-sweep transposed matvec,
    // blocked matmul, fused scatter/gather) are documented to preserve the
    // exact per-output-element floating-point operation order of the naive
    // loops in `reference`, so these assert bit-identical results — a
    // stronger property than the 1e-5 agreement the experiments need.

    #[test]
    fn unrolled_matvec_matches_reference(rows in 1usize..48, cols in 1usize..48, seed in 0u64..1024, zeros in any::<bool>()) {
        let m = filled_matrix(rows, cols, seed, false);
        let x = filled_vector(cols, seed ^ 0xa5a5, zeros);
        let got = m.matvec(&x).unwrap();
        prop_assert_eq!(&got, &reference::matvec(&m, &x));
        // The `_into` form must agree even when reusing a dirty buffer.
        let mut out = filled_vector(rows + 3, seed ^ 0x5a5a, false);
        m.matvec_into(&x, &mut out).unwrap();
        prop_assert_eq!(&out, &got);
    }

    #[test]
    fn axpy_sweep_matvec_transposed_matches_reference(rows in 1usize..48, cols in 1usize..48, seed in 0u64..1024, zeros in any::<bool>()) {
        let m = filled_matrix(rows, cols, seed, false);
        let x = filled_vector(rows, seed ^ 0x77, zeros);
        let got = m.matvec_transposed(&x).unwrap();
        prop_assert_eq!(&got, &reference::matvec_transposed(&m, &x));
        let mut out = filled_vector(cols + 1, seed ^ 0x99, false);
        m.matvec_transposed_into(&x, &mut out).unwrap();
        prop_assert_eq!(&out, &got);
    }

    #[test]
    fn blocked_matmul_matches_reference(rows in 1usize..24, inner in 1usize..24, cols in 1usize..24, seed in 0u64..1024, zeros in any::<bool>()) {
        let a = filled_matrix(rows, inner, seed, zeros);
        let b = filled_matrix(inner, cols, seed ^ 0x1234, false);
        prop_assert_eq!(a.matmul(&b).unwrap(), reference::matmul(&a, &b));
    }

    #[test]
    fn add_outer_matches_reference(rows in 1usize..32, cols in 1usize..32, seed in 0u64..1024, scale in -2.0f32..2.0) {
        let mut got = filled_matrix(rows, cols, seed, false);
        let mut want = got.clone();
        let a = filled_vector(rows, seed ^ 0x55, false);
        let b = filled_vector(cols, seed ^ 0xaa, false);
        got.add_outer(scale, &a, &b).unwrap();
        reference::add_outer(&mut want, scale, &a, &b);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sum_cols_matches_reference(cols in 1usize..32, seed in 0u64..1024, picks in proptest::collection::vec(0usize..64, 0..16)) {
        let picks: Vec<usize> = picks.into_iter().map(|p| p % cols).collect();
        let m = filled_matrix(8, cols, seed, false);
        let got = m.sum_cols(&picks);
        prop_assert_eq!(&got, &reference::sum_cols(&m, &picks));
        let mut out = filled_vector(11, seed ^ 0x3c, false);
        m.sum_cols_into(&picks, &mut out);
        prop_assert_eq!(&out, &got);
    }

    #[test]
    fn batched_matvec_matches_per_query_loops(rows in 1usize..40, cols in 1usize..40, batch in 0usize..9, seed in 0u64..1024, zeros in any::<bool>()) {
        let m = filled_matrix(rows, cols, seed, false);
        let keys: Vec<Vector> = (0..batch)
            .map(|q| filled_vector(cols, seed ^ (0x1000 + q as u64), zeros))
            .collect();
        // Reuse dirty output buffers of the wrong length: the kernel must
        // resize and still match both the naive oracle and the per-query
        // optimized kernel bit for bit.
        let mut outs: Vec<Vector> = (0..batch.saturating_sub(1))
            .map(|q| filled_vector(rows + 2, seed ^ (0x2000 + q as u64), false))
            .collect();
        m.matvec_batch_into(&keys, &mut outs).unwrap();
        prop_assert_eq!(&outs, &reference::matvec_batch(&m, &keys));
        for (key, out) in keys.iter().zip(&outs) {
            prop_assert_eq!(out, &m.matvec(key).unwrap());
        }
    }

    #[test]
    fn batched_softmax_matches_per_row(batch in 0usize..8, len in 1usize..32, seed in 0u64..1024) {
        let inputs: Vec<Vector> = (0..batch)
            .map(|q| filled_vector(len, seed ^ (0x3000 + q as u64), false))
            .collect();
        let mut outs: Vec<Vector> = vec![filled_vector(3, seed, false); batch.saturating_sub(1)];
        Vector::softmax_batch_into(&inputs, &mut outs);
        prop_assert_eq!(&outs, &reference::softmax_batch(&inputs));
        for (x, out) in inputs.iter().zip(&outs) {
            let mut want = Vector::default();
            want.softmax_into(x);
            prop_assert_eq!(out, &want);
        }
    }

    #[test]
    fn dot_and_axpy_matches_separate_ops(len in 1usize..64, seed in 0u64..1024, scale in -2.0f32..2.0) {
        let probe = filled_vector(len, seed, false);
        let src = filled_vector(len, seed ^ 0x11, false);
        let mut acc = filled_vector(len, seed ^ 0x22, false);
        let mut acc_ref = acc.clone();
        let dot = Vector::dot_and_axpy(probe.as_slice(), scale, src.as_slice(), acc.as_mut_slice());
        let dot_ref: f32 = probe.iter().zip(src.iter()).map(|(p, s)| p * s).sum();
        for (a, &s) in acc_ref.iter_mut().zip(src.as_slice()) {
            *a += scale * s;
        }
        prop_assert_eq!(dot, dot_ref);
        prop_assert_eq!(acc, acc_ref);
    }

    #[test]
    fn sum_cols_equals_matvec_with_count_vector(cols in 1usize..10, picks in proptest::collection::vec(0usize..10, 0..12)) {
        let picks: Vec<usize> = picks.into_iter().map(|p| p % cols).collect();
        let mut m = Matrix::zeros(4, cols);
        for (i, x) in m.as_mut_slice().iter_mut().enumerate() {
            *x = (i as f32).sin();
        }
        let direct = m.sum_cols(&picks);
        let mut counts = Vector::zeros(cols);
        for &p in &picks {
            counts[p] += 1.0;
        }
        let via_matvec = m.matvec(&counts).unwrap();
        for (a, b) in direct.iter().zip(via_matvec.iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }
}
