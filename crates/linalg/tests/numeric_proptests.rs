//! Property tests for the numeric-health layer: tracked fixed-point ops are
//! bit-identical to the untracked ops on every input, the status register
//! merge is associative and commutative, and the event counters fire exactly
//! when the untracked op would have saturated or clamped.

use mann_linalg::{Fixed, NumericStatus};
use proptest::prelude::*;

fn any_status() -> impl Strategy<Value = NumericStatus> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((add_sat, sub_sat, mul_sat), (div_zero, quant_clamp, nan_boundary))| NumericStatus {
                add_sat,
                sub_sat,
                mul_sat,
                div_zero,
                quant_clamp,
                nan_boundary,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Tracked add/sub/mul/div return exactly the untracked values on
    /// arbitrary raw bit patterns.
    #[test]
    fn tracked_ops_bit_identical(a in any::<i32>(), b in any::<i32>()) {
        let (x, y) = (Fixed::from_raw(a), Fixed::from_raw(b));
        let mut st = NumericStatus::default();
        prop_assert_eq!(x.add_tracked(y, &mut st), x.saturating_add(y));
        prop_assert_eq!(x.sub_tracked(y, &mut st), x.saturating_sub(y));
        prop_assert_eq!(x.mul_tracked(y, &mut st), x.saturating_mul(y));
        prop_assert_eq!(x.div_tracked(y, &mut st), x.saturating_div(y));
    }

    /// Tracked quantization returns exactly the untracked conversion for
    /// arbitrary f32 bit patterns (including NaN and ±inf) and any
    /// fractional width.
    #[test]
    fn tracked_quantize_bit_identical(bits in any::<u32>(), frac in 0u32..=30) {
        let x = f32::from_bits(bits);
        let mut st = NumericStatus::default();
        prop_assert_eq!(
            Fixed::from_f32_q_tracked(x, frac, &mut st),
            Fixed::from_f32_q(x, frac)
        );
        prop_assert_eq!(
            Fixed::from_f32_tracked(x, &mut st),
            Fixed::from_f32(x)
        );
    }

    /// Merge is commutative: a ⊕ b == b ⊕ a.
    #[test]
    fn merge_commutative(a in any_status(), b in any_status()) {
        prop_assert_eq!(a.merged(&b), b.merged(&a));
    }

    /// Merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_associative(a in any_status(), b in any_status(), c in any_status()) {
        prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
    }

    /// The identity element is the clean register.
    #[test]
    fn merge_identity(a in any_status()) {
        prop_assert_eq!(a.merged(&NumericStatus::CLEAN), a);
    }

    /// Add/sub events fire exactly when the checked i32 op overflows.
    #[test]
    fn add_sub_events_match_overflow(a in any::<i32>(), b in any::<i32>()) {
        let (x, y) = (Fixed::from_raw(a), Fixed::from_raw(b));
        let mut st = NumericStatus::default();
        let _ = x.add_tracked(y, &mut st);
        prop_assert_eq!(st.add_sat, u64::from(a.checked_add(b).is_none()));
        let _ = x.sub_tracked(y, &mut st);
        prop_assert_eq!(st.sub_sat, u64::from(a.checked_sub(b).is_none()));
    }

    /// Mul events fire exactly when the shifted wide product leaves the
    /// i32 range; div-by-zero fires exactly on a zero divisor.
    #[test]
    fn mul_div_events_match_clamp(a in any::<i32>(), b in any::<i32>()) {
        let (x, y) = (Fixed::from_raw(a), Fixed::from_raw(b));
        let mut st = NumericStatus::default();
        let _ = x.mul_tracked(y, &mut st);
        let shifted = (i64::from(a) * i64::from(b)) >> 16;
        prop_assert_eq!(
            st.mul_sat,
            u64::from(shifted != shifted.clamp(i64::from(i32::MIN), i64::from(i32::MAX)))
        );
        let mut st = NumericStatus::default();
        let _ = x.div_tracked(y, &mut st);
        prop_assert_eq!(st.div_zero, u64::from(b == 0));
    }

    /// Non-finite operands raise `nan_boundary` (never `quant_clamp`);
    /// finite in-range operands raise nothing.
    #[test]
    fn quantize_event_classes_disjoint(bits in any::<u32>()) {
        let x = f32::from_bits(bits);
        let mut st = NumericStatus::default();
        let _ = Fixed::from_f32_tracked(x, &mut st);
        if x.is_finite() {
            prop_assert_eq!(st.nan_boundary, 0);
            if x.abs() <= 32000.0 {
                prop_assert_eq!(st.quant_clamp, 0);
            }
        } else {
            prop_assert_eq!(st.nan_boundary, 1);
            prop_assert_eq!(st.quant_clamp, 0);
        }
    }
}
