//! Kernel density estimation of the conditional logit distributions
//! (Step 1 of Algorithm 1).

use serde::{Deserialize, Serialize};

/// The smoothing kernel.
///
/// The paper's ρ = 1.0 operating point needs the posterior to *reach* 1,
/// which requires the off-class density to be exactly zero somewhere — so
/// the default kernel is the compactly supported Epanechnikov. Gaussian is
/// available for the kernel ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Kernel {
    /// `K(u) = 0.75 (1 - u²)` on `|u| ≤ 1` — compact support.
    #[default]
    Epanechnikov,
    /// Standard normal kernel — infinite support.
    Gaussian,
}

impl Kernel {
    fn eval(self, u: f32) -> f32 {
        match self {
            Kernel::Epanechnikov => {
                if u.abs() <= 1.0 {
                    0.75 * (1.0 - u * u)
                } else {
                    0.0
                }
            }
            Kernel::Gaussian => (-0.5 * u * u).exp() / (2.0 * std::f32::consts::PI).sqrt(),
        }
    }
}

/// A 1-D kernel density estimate over a fixed sample set.
///
/// ```
/// use mann_ith::{Kde, Kernel};
///
/// let kde = Kde::fit(&[0.0, 0.1, -0.1, 0.05], Kernel::Epanechnikov);
/// assert!(kde.density(0.0) > kde.density(5.0));
/// assert_eq!(kde.density(5.0), 0.0); // compact support
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kde {
    samples: Vec<f32>,
    bandwidth: f32,
    kernel: Kernel,
}

impl Kde {
    /// Fits a KDE with Silverman's rule-of-thumb bandwidth
    /// (`1.06 σ n^{-1/5}`, floored to avoid degenerate spikes).
    pub fn fit(samples: &[f32], kernel: Kernel) -> Self {
        let clean: Vec<f32> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        let sigma = mann_linalg::stats::std_dev(&clean);
        let n = clean.len().max(1) as f32;
        let bandwidth = (1.06 * sigma * n.powf(-0.2)).max(1e-3);
        Self {
            samples: clean,
            bandwidth,
            kernel,
        }
    }

    /// Fits with an explicit bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth <= 0`.
    pub fn fit_with_bandwidth(samples: &[f32], kernel: Kernel, bandwidth: f32) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        Self {
            samples: samples.iter().copied().filter(|x| x.is_finite()).collect(),
            bandwidth,
            kernel,
        }
    }

    /// Number of support samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the estimate has no support samples (density is 0
    /// everywhere).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The fitted bandwidth.
    pub fn bandwidth(&self) -> f32 {
        self.bandwidth
    }

    /// Estimated density at `x` (0 for an empty estimate).
    pub fn density(&self, x: f32) -> f32 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let h = self.bandwidth;
        let sum: f32 = self
            .samples
            .iter()
            .map(|&s| self.kernel.eval((x - s) / h))
            .sum();
        sum / (self.samples.len() as f32 * h)
    }

    /// The support samples (finite values only).
    pub fn samples(&self) -> &[f32] {
        &self.samples
    }

    /// The leftmost point with non-zero density; `None` when empty.
    pub fn support_min(&self) -> Option<f32> {
        let m = mann_linalg::stats::min(&self.samples)?;
        Some(match self.kernel {
            Kernel::Epanechnikov => m - self.bandwidth,
            Kernel::Gaussian => m - 6.0 * self.bandwidth,
        })
    }

    /// The rightmost point with non-zero density (for compact kernels:
    /// `max(samples) + bandwidth`); `None` when empty.
    pub fn support_max(&self) -> Option<f32> {
        let m = mann_linalg::stats::max(&self.samples)?;
        Some(match self.kernel {
            Kernel::Epanechnikov => m + self.bandwidth,
            // Treat 6σ as effective support for the Gaussian.
            Kernel::Gaussian => m + 6.0 * self.bandwidth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_integrates_to_one() {
        for kernel in [Kernel::Epanechnikov, Kernel::Gaussian] {
            let kde = Kde::fit(&[0.0, 1.0, 2.0, 1.5, 0.5], kernel);
            // Trapezoid integral over a generous range.
            let (lo, hi, n) = (-10.0f32, 12.0f32, 4000);
            let step = (hi - lo) / n as f32;
            let integral: f32 = (0..=n)
                .map(|i| kde.density(lo + step * i as f32))
                .sum::<f32>()
                * step;
            assert!((integral - 1.0).abs() < 0.02, "{kernel:?}: {integral}");
        }
    }

    #[test]
    fn epanechnikov_has_compact_support() {
        let kde = Kde::fit(&[0.0, 0.5], Kernel::Epanechnikov);
        let beyond = kde.support_max().unwrap() + 0.1;
        assert_eq!(kde.density(beyond), 0.0);
    }

    #[test]
    fn gaussian_is_everywhere_positive() {
        let kde = Kde::fit(&[0.0, 1.0, 2.0], Kernel::Gaussian);
        assert!(kde.density(8.0) > 0.0);
    }

    #[test]
    fn empty_estimate_is_zero() {
        let kde = Kde::fit(&[], Kernel::Epanechnikov);
        assert!(kde.is_empty());
        assert_eq!(kde.density(0.0), 0.0);
        assert_eq!(kde.support_max(), None);
    }

    #[test]
    fn density_peaks_near_data() {
        let kde = Kde::fit(&[5.0, 5.1, 4.9, 5.05], Kernel::Epanechnikov);
        assert!(kde.density(5.0) > kde.density(4.0));
        assert!(kde.density(5.0) > kde.density(6.0));
    }

    #[test]
    fn bandwidth_shrinks_with_more_data() {
        let few = Kde::fit(&[0.0, 1.0, 2.0, 3.0], Kernel::Gaussian);
        let many: Vec<f32> = (0..400).map(|i| (i % 4) as f32).collect();
        let dense = Kde::fit(&many, Kernel::Gaussian);
        assert!(dense.bandwidth() < few.bandwidth());
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = Kde::fit_with_bandwidth(&[1.0], Kernel::Gaussian, 0.0);
    }
}
