//! Silhouette coefficient for the efficient index order (Step 3 of
//! Algorithm 1, citing Rousseeuw 1987).
//!
//! For class `i` the two clusters are the on-class logits (`z_i` when `i`
//! is the answer) and the off-class logits. A class whose clusters are far
//! apart and tight gets a silhouette near 1 — thresholding it first is most
//! likely to terminate the search.

/// Mean silhouette coefficient of cluster `on` against cluster `off`
/// (1-dimensional, absolute-difference metric).
///
/// Both clusters are subsampled to at most `cap` points to bound the O(n²)
/// distance computation. Returns 0 when either cluster has no points or
/// `on` has a single point with no distances.
pub fn mean_silhouette(on: &[f32], off: &[f32], cap: usize) -> f32 {
    let on = subsample(on, cap);
    let off = subsample(off, cap);
    if on.is_empty() || off.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f32;
    let mut counted = 0usize;
    for (idx, &x) in on.iter().enumerate() {
        // a(x): mean intra-cluster distance (excluding self).
        let a = if on.len() > 1 {
            on.iter()
                .enumerate()
                .filter(|(j, _)| *j != idx)
                .map(|(_, &y)| (x - y).abs())
                .sum::<f32>()
                / (on.len() - 1) as f32
        } else {
            0.0
        };
        // b(x): mean distance to the other cluster.
        let b = off.iter().map(|&y| (x - y).abs()).sum::<f32>() / off.len() as f32;
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f32
    }
}

/// Deterministic stride subsampling to at most `cap` elements.
fn subsample(xs: &[f32], cap: usize) -> Vec<f32> {
    if cap == 0 || xs.len() <= cap {
        return xs.to_vec();
    }
    let stride = xs.len() as f32 / cap as f32;
    (0..cap).map(|i| xs[(i as f32 * stride) as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_separated_clusters_score_near_one() {
        let on: Vec<f32> = (0..50).map(|i| 10.0 + i as f32 * 0.01).collect();
        let off: Vec<f32> = (0..50).map(|i| -10.0 + i as f32 * 0.01).collect();
        let s = mean_silhouette(&on, &off, 100);
        assert!(s > 0.95, "{s}");
    }

    #[test]
    fn identical_clusters_score_near_zero() {
        let xs: Vec<f32> = (0..40).map(|i| (i % 7) as f32).collect();
        let s = mean_silhouette(&xs, &xs, 100);
        assert!(s.abs() < 0.15, "{s}");
    }

    #[test]
    fn inverted_structure_scores_negative() {
        // on-cluster is spread wide, off-cluster sits inside it.
        let on = vec![-10.0, 10.0, -9.5, 9.5];
        let off = vec![0.0, 0.1, -0.1];
        let s = mean_silhouette(&on, &off, 100);
        assert!(s < 0.0, "{s}");
    }

    #[test]
    fn empty_cluster_scores_zero() {
        assert_eq!(mean_silhouette(&[], &[1.0], 10), 0.0);
        assert_eq!(mean_silhouette(&[1.0], &[], 10), 0.0);
    }

    #[test]
    fn silhouette_is_bounded() {
        let on = vec![1.0, 2.0, 3.0];
        let off = vec![2.5, 3.5];
        let s = mean_silhouette(&on, &off, 10);
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn subsampling_caps_cost_but_keeps_signal() {
        let on: Vec<f32> = (0..10_000).map(|i| 5.0 + (i % 10) as f32 * 0.01).collect();
        let off: Vec<f32> = (0..10_000).map(|i| -5.0 + (i % 10) as f32 * 0.01).collect();
        let s = mean_silhouette(&on, &off, 50);
        assert!(s > 0.9);
    }
}
