//! Adaptive hop pruning — the A2P-MANN-style attention early exit.
//!
//! Multi-hop MemN2N inference refines the controller state once per hop,
//! but on easy questions the attention distribution collapses onto one
//! sentence after the first hop or two; the remaining hops re-read the
//! same row and barely move the answer. [`HopPrune`] models the
//! accelerator-side shortcut: when a hop's softmax output is already
//! confident — its maximum attention weight meets a convergence threshold
//! — the remaining MEM/READ hops are skipped and their streaming cycles
//! are never spent.
//!
//! Two safety rails keep the shortcut honest:
//!
//! * **Saturation veto** (the [`crate::ExitGuard`] discipline applied to
//!   attention): a Q16.16 score row that saturated can report a confident
//!   maximum that carries no information, so a prune whose winning
//!   attention weight was computed through flagged arithmetic is vetoed
//!   and the full hop schedule runs.
//! * **Determinism**: the criterion is a pure function of the hop's
//!   attention vector, so pruning decisions — like everything else in the
//!   simulator — replay byte-identically.
//!
//! The criterion is deliberately monotone in the threshold: raising it can
//! only prune later (or not at all), which the proptests pin down.

use serde::{Deserialize, Serialize};

/// Configuration for the adaptive hop-pruning early exit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HopPrune {
    /// When false, every configured hop runs — the exact seed datapath.
    pub enabled: bool,
    /// Convergence threshold on the maximum attention weight, in `(0, 1]`.
    /// A hop whose max softmax output is `>= threshold` is considered
    /// converged and the remaining hops are skipped.
    pub threshold: f32,
}

impl Default for HopPrune {
    fn default() -> Self {
        HopPrune {
            enabled: false,
            threshold: 1.0,
        }
    }
}

/// A malformed hop-prune spec (CLI flag or `MANN_HOP_PRUNE`). Invalid
/// values are rejected rather than silently falling back to the default.
#[derive(Debug, Clone, PartialEq, thiserror::Error)]
#[error("invalid hop-prune threshold {value:?}: expected `off` or a number in (0, 1]")]
pub struct HopPruneError {
    /// The rejected input.
    pub value: String,
}

impl HopPrune {
    /// An enabled criterion with the given convergence threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `threshold` is in `(0, 1]`.
    pub fn with_threshold(threshold: f32) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "hop-prune threshold {threshold} outside (0, 1]"
        );
        HopPrune {
            enabled: true,
            threshold,
        }
    }

    /// Parses a CLI-style spec: `off` disables pruning, anything else must
    /// be a threshold in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`HopPruneError`] for non-numeric input or a threshold
    /// outside `(0, 1]`.
    pub fn parse(s: &str) -> Result<Self, HopPruneError> {
        if s == "off" {
            return Ok(Self::default());
        }
        match s.parse::<f32>() {
            Ok(t) if t > 0.0 && t <= 1.0 => Ok(Self::with_threshold(t)),
            _ => Err(HopPruneError {
                value: s.to_owned(),
            }),
        }
    }

    /// Criterion from the `MANN_HOP_PRUNE` environment variable, falling
    /// back to the default (off) when unset.
    ///
    /// # Errors
    ///
    /// Returns [`HopPruneError`] when the variable is set to a malformed
    /// value.
    pub fn from_env() -> Result<Self, HopPruneError> {
        match std::env::var("MANN_HOP_PRUNE") {
            Err(_) => Ok(Self::default()),
            Ok(v) => Self::parse(&v),
        }
    }

    /// Whether the criterion fires on a hop whose maximum attention weight
    /// is `max_attention`. A fired criterion can still be vetoed by the
    /// winning weight's saturation flag (see [`crate::ExitGuard`]).
    pub fn fires(&self, max_attention: f32) -> bool {
        self.enabled && max_attention >= self.threshold
    }
}

impl std::fmt::Display for HopPrune {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.enabled {
            write!(f, "{}", self.threshold)
        } else {
            write!(f, "off")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off_and_never_fires() {
        let p = HopPrune::default();
        assert!(!p.enabled);
        assert!(!p.fires(1.0));
        assert!(!p.fires(f32::INFINITY));
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(HopPrune::parse("off"), Ok(HopPrune::default()));
        let p = HopPrune::parse("0.9").unwrap();
        assert_eq!(p, HopPrune::with_threshold(0.9));
        assert_eq!(HopPrune::parse(&p.to_string()), Ok(p));
        assert_eq!(
            HopPrune::parse(&HopPrune::default().to_string()),
            Ok(HopPrune::default())
        );
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in ["", "of", "O.9", "0", "-0.5", "1.5", "NaN", "inf", "0.9x"] {
            let err = HopPrune::parse(bad).unwrap_err();
            assert!(err.to_string().contains(bad) || bad.is_empty(), "{bad}");
        }
    }

    #[test]
    fn env_round_trip() {
        // Unset: default. (Set/invalid paths are covered through `parse`;
        // mutating the process environment races other tests.)
        if std::env::var("MANN_HOP_PRUNE").is_err() {
            assert_eq!(HopPrune::from_env(), Ok(HopPrune::default()));
        }
    }

    #[test]
    fn criterion_is_monotone_in_threshold() {
        let weights = [0.2f32, 0.5, 0.85, 0.95, 1.0];
        let mut thresholds = [0.1f32, 0.3, 0.8, 0.9, 1.0];
        thresholds.sort_by(f32::total_cmp);
        for &w in &weights {
            let fired: Vec<bool> = thresholds
                .iter()
                .map(|&t| HopPrune::with_threshold(t).fires(w))
                .collect();
            // Once the criterion stops firing as the threshold rises, it
            // never fires again: `fired` is non-increasing.
            assert!(fired.windows(2).all(|w| w[0] || !w[1]), "{w}: {fired:?}");
        }
    }
}
