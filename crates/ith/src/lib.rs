//! Inference thresholding — the paper's data-based approximate maximum
//! inner-product search (Algorithm 1).
//!
//! In an NLP task the output dimension `|I|` is much larger than the
//! embedding dimension `|E|`, so the accelerator's OUTPUT module computes
//! logits `z_i = W_o[i] · h` *sequentially* and the output layer dominates
//! inference time. Inference thresholding speculates: if logit `z_i` clears
//! a per-class threshold `θ_i` whose Bayesian posterior `p(y = i | z_i)`
//! exceeds a confidence `ρ`, the search stops early.
//!
//! The calibration pipeline (Steps 1–3 of Algorithm 1) lives in
//! [`calibrate`]:
//!
//! 1. run the trained model over its training set and histogram each class's
//!    logit conditioned on being the (correct) answer ([`LogitStats`]);
//! 2. fit conditional densities by kernel density estimation ([`kde`]) and
//!    invert them through Bayes' rule into per-class thresholds
//!    ([`threshold`], Eq 8);
//! 3. order classes by descending silhouette coefficient ([`silhouette`]) so
//!    the most separable classes are probed first.
//!
//! Step 4 — the actual search — is [`search::ThresholdedMips`], with
//! [`search::ExhaustiveMips`] as the conventional baseline.
//!
//! # Example
//!
//! ```
//! use mann_babi::{DatasetBuilder, TaskId};
//! use memn2n::{ModelConfig, TrainConfig, Trainer};
//! use mann_ith::{ThresholdingCalibrator, search::{ExhaustiveMips, MipsStrategy, ThresholdedMips}};
//!
//! let data = DatasetBuilder::new().train_samples(60).test_samples(10).seed(2)
//!     .build_task(TaskId::SingleSupportingFact);
//! let mut trainer = Trainer::from_task_data(
//!     &data,
//!     ModelConfig { embed_dim: 16, hops: 2, ..ModelConfig::default() },
//!     TrainConfig { epochs: 5, ..TrainConfig::default() },
//! );
//! trainer.train();
//! let (model, train_set, test_set) = trainer.into_parts();
//! let ith = ThresholdingCalibrator::new().rho(1.0).calibrate(&model, &train_set);
//! let h = memn2n::forward::forward_until_output(&model.params, &test_set[0]);
//! let fast = ThresholdedMips::new(&ith).search(&model.params, &h);
//! let exact = ExhaustiveMips.search(&model.params, &h);
//! assert!(fast.comparisons <= exact.comparisons);
//! ```

pub mod baselines;
pub mod calibrate;
pub mod guard;
pub mod histogram;
pub mod kde;
pub mod prune;
pub mod search;
pub mod silhouette;
pub mod threshold;

pub use calibrate::{LogitStats, PriorMode, ThresholdingCalibrator, ThresholdingModel};
pub use guard::ExitGuard;
pub use kde::{Kde, Kernel};
pub use prune::{HopPrune, HopPruneError};
pub use search::{ExhaustiveMips, MipsResult, MipsStrategy, ThresholdedMips};
