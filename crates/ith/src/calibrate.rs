//! Calibration: Steps 1–3 of Algorithm 1.

use mann_babi::EncodedSample;
use memn2n::{forward, TrainedModel};
use serde::{Deserialize, Serialize};

use crate::histogram::Histogram;
use crate::silhouette::mean_silhouette;
use crate::threshold::{class_threshold, ClassThreshold};
use crate::{Kde, Kernel};

/// Per-class logit statistics collected from correct training predictions
/// (the `HG_i` / `HG_ī` histograms of Algorithm 1, Step 1). Also the data
/// behind Fig 2(b).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LogitStats {
    /// `on[i]`: values of `z_i` when `i` was the (correctly predicted)
    /// answer.
    pub on: Vec<Histogram>,
    /// `off[i]`: values of `z_i` when the answer was some other class.
    pub off: Vec<Histogram>,
    /// Label counts over the calibration set (for the prior `p(y = i)`).
    pub label_counts: Vec<usize>,
    /// Number of samples whose prediction was correct (and therefore
    /// contributed to the histograms).
    pub contributing: usize,
    /// Total calibration samples.
    pub total: usize,
}

impl LogitStats {
    /// Collects logit statistics by running `model` over `samples`.
    pub fn collect(model: &TrainedModel, samples: &[EncodedSample]) -> Self {
        let v = model.params.vocab_size;
        let mut stats = Self {
            on: vec![Histogram::new(); v],
            off: vec![Histogram::new(); v],
            label_counts: vec![0; v],
            contributing: 0,
            total: samples.len(),
        };
        for s in samples {
            stats.label_counts[s.answer] += 1;
            let trace = forward(&model.params, s);
            let pred = trace.prediction();
            if pred != s.answer {
                continue; // Algorithm 1 only learns from correct passes.
            }
            stats.contributing += 1;
            for (i, &z) in trace.logits.iter().enumerate() {
                if i == s.answer {
                    stats.on[i].add(z);
                } else {
                    stats.off[i].add(z);
                }
            }
        }
        stats
    }

    /// Prior `p(y = i)` with Laplace smoothing.
    pub fn prior(&self, i: usize) -> f32 {
        (self.label_counts[i] + 1) as f32 / (self.total + self.label_counts.len()) as f32
    }
}

/// The calibrated thresholding model: per-class thresholds θ, the silhouette
/// probe order, and the configuration that produced them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdingModel {
    /// θ_i per class (Eq 8); `None` disables speculation on that class.
    pub thresholds: Vec<ClassThreshold>,
    /// Class indices sorted by descending silhouette coefficient (Step 3).
    pub order: Vec<usize>,
    /// Silhouette coefficient per class (diagnostics and the ordering
    /// ablation).
    pub silhouettes: Vec<f32>,
    /// The confidence constant ρ.
    pub rho: f32,
    /// The KDE kernel used.
    pub kernel: Kernel,
}

impl ThresholdingModel {
    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.thresholds.len()
    }

    /// How many classes have an active threshold.
    pub fn active_classes(&self) -> usize {
        self.thresholds.iter().filter(|t| t.theta.is_some()).count()
    }

    /// A copy of the model with every active threshold lowered by
    /// `margin` — the aggressive operating point a server shifts to under
    /// overload. Lower θ admits smaller logits, so the sequential output
    /// scan exits earlier: cheaper answers at some accuracy cost (the
    /// Fig 3 trade-off pushed past the calibrated ρ). Classes with
    /// speculation disabled stay disabled — there is no calibrated density
    /// to loosen.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is negative or not finite.
    pub fn degraded(&self, margin: f32) -> Self {
        assert!(
            margin.is_finite() && margin >= 0.0,
            "degraded margin must be finite and non-negative, got {margin}"
        );
        let mut out = self.clone();
        for t in &mut out.thresholds {
            if let Some(theta) = &mut t.theta {
                *theta -= margin;
            }
        }
        out
    }
}

/// How the per-class hypothesis weight of the posterior is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PriorMode {
    /// Balanced binary hypothesis (weight ½) — the interpretation under
    /// which the paper's ρ ∈ {1.0, 0.99, 0.95, 0.9} operating points are
    /// meaningful. Default.
    #[default]
    Balanced,
    /// Weight each class by its empirical label frequency (Laplace
    /// smoothed). Very small priors make the posterior so conservative the
    /// ρ sweep degenerates; kept for the ablation.
    Empirical,
}

/// Builder for the calibration pipeline.
///
/// ```
/// use mann_ith::{Kernel, ThresholdingCalibrator};
///
/// let cal = ThresholdingCalibrator::new().rho(0.95).kernel(Kernel::Gaussian);
/// assert_eq!(cal.rho_value(), 0.95);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdingCalibrator {
    rho: f32,
    kernel: Kernel,
    silhouette_cap: usize,
    prior_mode: PriorMode,
}

impl Default for ThresholdingCalibrator {
    fn default() -> Self {
        Self {
            rho: 1.0,
            kernel: Kernel::default(),
            silhouette_cap: 200,
            prior_mode: PriorMode::default(),
        }
    }
}

impl ThresholdingCalibrator {
    /// Paper defaults: ρ = 1.0, Epanechnikov kernel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the confidence constant ρ.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is outside `(0, 1]`.
    pub fn rho(mut self, rho: f32) -> Self {
        assert!(rho > 0.0 && rho <= 1.0, "rho {rho} outside (0, 1]");
        self.rho = rho;
        self
    }

    /// The configured ρ.
    pub fn rho_value(&self) -> f32 {
        self.rho
    }

    /// Sets the KDE kernel.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Caps the per-class silhouette subsample size.
    pub fn silhouette_cap(mut self, cap: usize) -> Self {
        self.silhouette_cap = cap;
        self
    }

    /// Selects how the posterior's hypothesis weight is chosen.
    pub fn prior_mode(mut self, mode: PriorMode) -> Self {
        self.prior_mode = mode;
        self
    }

    /// Runs Steps 1–3 of Algorithm 1 against a trained model and its
    /// training set.
    pub fn calibrate(&self, model: &TrainedModel, train: &[EncodedSample]) -> ThresholdingModel {
        let stats = LogitStats::collect(model, train);
        self.calibrate_from_stats(&stats)
    }

    /// Runs Steps 2–3 from pre-collected statistics (lets callers reuse one
    /// expensive collection pass across many ρ values, as the Fig 3 sweep
    /// does).
    pub fn calibrate_from_stats(&self, stats: &LogitStats) -> ThresholdingModel {
        let v = stats.on.len();
        let mut thresholds = Vec::with_capacity(v);
        let mut silhouettes = Vec::with_capacity(v);
        for i in 0..v {
            let on = Kde::fit(stats.on[i].samples(), self.kernel);
            let off = Kde::fit(stats.off[i].samples(), self.kernel);
            let weight = match self.prior_mode {
                PriorMode::Balanced => 0.5,
                PriorMode::Empirical => stats.prior(i),
            };
            thresholds.push(class_threshold(weight, &on, &off, self.rho));
            silhouettes.push(mean_silhouette(
                stats.on[i].samples(),
                stats.off[i].samples(),
                self.silhouette_cap,
            ));
        }
        let mut order: Vec<usize> = (0..v).collect();
        // total_cmp: a NaN silhouette sorts deterministically (last) instead
        // of landing at an arbitrary probe position.
        order.sort_by(|&a, &b| silhouettes[b].total_cmp(&silhouettes[a]));
        ThresholdingModel {
            thresholds,
            order,
            silhouettes,
            rho: self.rho,
            kernel: self.kernel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mann_babi::{DatasetBuilder, TaskId};
    use memn2n::{ModelConfig, TrainConfig, Trainer};

    fn trained() -> (TrainedModel, Vec<EncodedSample>, Vec<EncodedSample>) {
        let data = DatasetBuilder::new()
            .train_samples(200)
            .test_samples(40)
            .seed(4)
            .build_task(TaskId::SingleSupportingFact);
        let mut trainer = Trainer::from_task_data(
            &data,
            ModelConfig {
                embed_dim: 20,
                hops: 2,
                tie_embeddings: false,
                ..ModelConfig::default()
            },
            TrainConfig {
                epochs: 20,
                learning_rate: 0.05,
                decay_every: 8,
                clip_norm: 40.0,
                seed: 4,
                ..TrainConfig::default()
            },
        );
        trainer.train();
        trainer.into_parts()
    }

    #[test]
    fn degraded_lowers_active_thresholds_only() {
        let model = ThresholdingModel {
            thresholds: vec![
                ClassThreshold { theta: Some(3.0) },
                ClassThreshold { theta: None },
                ClassThreshold { theta: Some(-1.0) },
            ],
            order: vec![0, 2, 1],
            silhouettes: vec![0.5, 0.0, 0.3],
            rho: 0.99,
            kernel: Kernel::Epanechnikov,
        };
        let deg = model.degraded(0.75);
        assert_eq!(deg.thresholds[0].theta, Some(2.25));
        assert_eq!(deg.thresholds[1].theta, None);
        assert_eq!(deg.thresholds[2].theta, Some(-1.75));
        assert_eq!(deg.order, model.order);
        // Zero margin is the identity.
        assert_eq!(model.degraded(0.0).thresholds, model.thresholds);
        // A lower threshold fires on logits the calibrated one rejects.
        assert!(deg.thresholds[0].fires(2.5));
        assert!(!model.thresholds[0].fires(2.5));
    }

    #[test]
    #[should_panic(expected = "margin")]
    fn degraded_rejects_negative_margin() {
        let model = ThresholdingModel {
            thresholds: vec![ClassThreshold { theta: Some(1.0) }],
            order: vec![0],
            silhouettes: vec![0.1],
            rho: 0.99,
            kernel: Kernel::Epanechnikov,
        };
        let _ = model.degraded(-0.1);
    }

    #[test]
    fn stats_only_come_from_correct_predictions() {
        let (model, train, _) = trained();
        let stats = LogitStats::collect(&model, &train);
        assert!(stats.contributing > 0);
        assert!(stats.contributing <= stats.total);
        let on_total: usize = stats.on.iter().map(Histogram::len).sum();
        assert_eq!(on_total, stats.contributing);
        let off_total: usize = stats.off.iter().map(Histogram::len).sum();
        assert_eq!(
            off_total,
            stats.contributing * (model.params.vocab_size - 1)
        );
    }

    #[test]
    fn priors_form_a_distribution() {
        let (model, train, _) = trained();
        let stats = LogitStats::collect(&model, &train);
        let total: f32 = (0..model.params.vocab_size).map(|i| stats.prior(i)).sum();
        assert!((total - 1.0).abs() < 1e-4, "{total}");
    }

    #[test]
    fn calibration_produces_some_active_thresholds() {
        let (model, train, _) = trained();
        let ith = ThresholdingCalibrator::new()
            .rho(1.0)
            .calibrate(&model, &train);
        assert_eq!(ith.classes(), model.params.vocab_size);
        assert!(
            ith.active_classes() > 0,
            "no class became separable after training"
        );
        // The order is a permutation.
        let mut sorted = ith.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..ith.classes()).collect::<Vec<_>>());
    }

    #[test]
    fn order_is_sorted_by_silhouette() {
        let (model, train, _) = trained();
        let ith = ThresholdingCalibrator::new().calibrate(&model, &train);
        for w in ith.order.windows(2) {
            assert!(ith.silhouettes[w[0]] >= ith.silhouettes[w[1]]);
        }
    }

    #[test]
    fn lower_rho_never_reduces_active_classes() {
        let (model, train, _) = trained();
        let stats = LogitStats::collect(&model, &train);
        let strict = ThresholdingCalibrator::new()
            .rho(1.0)
            .calibrate_from_stats(&stats);
        let loose = ThresholdingCalibrator::new()
            .rho(0.9)
            .calibrate_from_stats(&stats);
        assert!(loose.active_classes() >= strict.active_classes());
    }
}
