//! Clustering-based approximate MIPS (Auvolat et al., 2015).
//!
//! Spherical k-means partitions the output rows; a query scores the `k`
//! centroids, then exhaustively searches the rows of the `top_p`
//! best-scoring clusters. Per-query work is `k + Σ |top clusters|` dot
//! products — cheap when clusters are balanced, but still strictly more
//! than inference thresholding's early exit on separable classes.

use mann_linalg::Vector;
use memn2n::forward::output_logit;
use memn2n::Params;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{MipsResult, MipsStrategy};

/// Clustering parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of clusters `k`.
    pub clusters: usize,
    /// Clusters searched per query.
    pub top_p: usize,
    /// Lloyd iterations.
    pub iterations: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            clusters: 8,
            top_p: 2,
            iterations: 12,
        }
    }
}

/// A k-means index over one output weight matrix.
#[derive(Debug, Clone)]
pub struct ClusterMips {
    config: ClusterConfig,
    centroids: Vec<Vector>,
    members: Vec<Vec<usize>>,
}

impl ClusterMips {
    /// Clusters `params.w_o`'s rows by spherical k-means.
    ///
    /// # Panics
    ///
    /// Panics if `clusters == 0`, `top_p == 0`, or there are fewer rows
    /// than clusters.
    pub fn build(params: &Params, config: ClusterConfig, seed: u64) -> Self {
        assert!(
            config.clusters > 0 && config.top_p > 0,
            "degenerate cluster config"
        );
        let v = params.w_o.rows();
        let e = params.w_o.cols();
        assert!(v >= config.clusters, "fewer rows than clusters");
        let mut rng = StdRng::seed_from_u64(seed);

        // Initialize centroids from distinct random rows.
        let mut picks: Vec<usize> = (0..v).collect();
        for i in 0..config.clusters {
            let j = rng.gen_range(i..v);
            picks.swap(i, j);
        }
        let mut centroids: Vec<Vector> = picks[..config.clusters]
            .iter()
            .map(|&r| normalized(params.w_o.row(r)))
            .collect();

        let mut assignment = vec![0usize; v];
        for _ in 0..config.iterations {
            // Assign.
            for (r, slot) in assignment.iter_mut().enumerate() {
                let row = params.w_o.row(r);
                let mut best = 0usize;
                let mut best_sim = f32::NEG_INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let sim: f32 = row.iter().zip(centroid.iter()).map(|(a, b)| a * b).sum();
                    if sim > best_sim {
                        best_sim = sim;
                        best = c;
                    }
                }
                *slot = best;
            }
            // Update.
            for (c, centroid) in centroids.iter_mut().enumerate() {
                let mut acc = vec![0.0f32; e];
                let mut count = 0usize;
                for (r, &a_c) in assignment.iter().enumerate() {
                    if a_c == c {
                        for (a, x) in acc.iter_mut().zip(params.w_o.row(r)) {
                            *a += x;
                        }
                        count += 1;
                    }
                }
                if count > 0 {
                    *centroid = normalized(&acc);
                }
                // Empty clusters keep their previous centroid.
            }
        }

        let mut members = vec![Vec::new(); config.clusters];
        for r in 0..v {
            members[assignment[r]].push(r);
        }
        Self {
            config,
            centroids,
            members,
        }
    }

    /// Number of clusters actually populated.
    pub fn populated_clusters(&self) -> usize {
        self.members.iter().filter(|m| !m.is_empty()).count()
    }

    /// Centroid probes per query (`k` dot products).
    pub fn centroid_probes(&self) -> usize {
        self.centroids.len()
    }
}

impl MipsStrategy for ClusterMips {
    fn search(&self, params: &Params, h: &Vector) -> MipsResult {
        // Score centroids (counted as comparisons: they are dot products of
        // the same width).
        let mut scored: Vec<(usize, f32)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(c, centroid)| {
                let sim: f32 = centroid.iter().zip(h.iter()).map(|(a, b)| a * b).sum();
                (c, sim)
            })
            .collect();
        // total_cmp: a NaN similarity sorts deterministically (last) instead
        // of poisoning the whole ranking.
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut comparisons = self.centroids.len();

        let mut best = 0usize;
        let mut best_z = f32::NEG_INFINITY;
        let mut evaluated = false;
        for &(c, _) in scored.iter().take(self.config.top_p) {
            for &r in &self.members[c] {
                let z = output_logit(params, h, r);
                comparisons += 1;
                evaluated = true;
                if z > best_z {
                    best_z = z;
                    best = r;
                }
            }
        }
        if !evaluated {
            // All probed clusters empty (degenerate k-means): exhaustive
            // fallback.
            for r in 0..params.vocab_size {
                let z = output_logit(params, h, r);
                comparisons += 1;
                if z > best_z {
                    best_z = z;
                    best = r;
                }
            }
        }
        MipsResult {
            label: best,
            comparisons,
            speculated: true,
        }
    }

    fn name(&self) -> &'static str {
        "cluster"
    }
}

fn normalized(xs: &[f32]) -> Vector {
    let n = xs.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
    xs.iter().map(|x| x / n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExhaustiveMips;
    use memn2n::ModelConfig;

    fn params(v: usize, e: usize, seed: u64) -> Params {
        Params::init(
            ModelConfig {
                embed_dim: e,
                hops: 1,
                tie_embeddings: false,
                ..ModelConfig::default()
            },
            v,
            &mut StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn every_row_lands_in_exactly_one_cluster() {
        let p = params(50, 12, 1);
        let idx = ClusterMips::build(&p, ClusterConfig::default(), 2);
        let total: usize = idx.members.iter().map(Vec::len).sum();
        assert_eq!(total, 50);
        assert!(idx.populated_clusters() >= 2);
    }

    #[test]
    fn build_is_deterministic() {
        let p = params(30, 8, 3);
        let a = ClusterMips::build(&p, ClusterConfig::default(), 5);
        let b = ClusterMips::build(&p, ClusterConfig::default(), 5);
        assert_eq!(a.members, b.members);
    }

    #[test]
    fn searching_all_clusters_is_exact() {
        let p = params(40, 10, 4);
        let idx = ClusterMips::build(
            &p,
            ClusterConfig {
                clusters: 4,
                top_p: 4,
                iterations: 8,
            },
            6,
        );
        for s in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(s);
            let h: Vector = (0..10).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let exact = ExhaustiveMips.search(&p, &h);
            let approx = idx.search(&p, &h);
            assert_eq!(exact.label, approx.label, "seed {s}");
            // Work = centroids + all rows.
            assert_eq!(approx.comparisons, 4 + 40);
        }
    }

    #[test]
    fn narrow_search_does_less_work() {
        let p = params(80, 10, 5);
        let idx = ClusterMips::build(
            &p,
            ClusterConfig {
                clusters: 8,
                top_p: 1,
                iterations: 10,
            },
            7,
        );
        let h: Vector = (0..10).map(|i| (i as f32 * 0.4).sin()).collect();
        let r = idx.search(&p, &h);
        assert!(r.comparisons < 80, "no saving: {}", r.comparisons);
    }

    #[test]
    #[should_panic(expected = "fewer rows")]
    fn too_many_clusters_rejected() {
        let p = params(4, 8, 6);
        let _ = ClusterMips::build(
            &p,
            ClusterConfig {
                clusters: 10,
                ..ClusterConfig::default()
            },
            8,
        );
    }
}
