//! Approximate-MIPS baselines from the paper's related work (§VI-B).
//!
//! The paper argues that hashing- and clustering-based maximum inner-product
//! search (Shrivastava & Li 2014; Auvolat et al. 2015) "may be too slow to
//! be used in the output layer of a DNN in resource-limited environments".
//! These modules implement both families so the claim is measurable:
//!
//! * [`AlshMips`] — asymmetric locality-sensitive hashing: rows are
//!   norm-augmented so MIPS becomes cosine near-neighbour search over
//!   sign-random-projection hash tables.
//! * [`ClusterMips`] — spherical k-means over the output rows; a query
//!   scores the centroids and exhaustively searches the top clusters.
//!
//! Both report the same [`MipsResult`](crate::MipsResult) accounting as
//! inference thresholding, with `comparisons` counting *exact dot products
//! evaluated* (hash/centroid probes are tracked separately on the structs),
//! so the `mips_compare` harness can weigh recall against work.

mod alsh;
mod cluster;

pub use alsh::{AlshConfig, AlshMips};
pub use cluster::{ClusterConfig, ClusterMips};
