//! Asymmetric LSH for MIPS (Shrivastava & Li, NIPS 2014).
//!
//! MIPS is reduced to cosine near-neighbour search by the asymmetric
//! transform: every row `x` is scaled into the unit ball and augmented with
//! `m` norm-powers `‖x‖², ‖x‖⁴, …`; the query is augmented with `m` halves.
//! Sign random projections then hash the augmented vectors into `L` tables
//! of `K`-bit buckets; a query exhaustively scores only the rows sharing a
//! bucket in some table.

use mann_linalg::Vector;
use memn2n::forward::output_logit;
use memn2n::Params;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{MipsResult, MipsStrategy};

/// ALSH structural parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlshConfig {
    /// Hash bits per table (bucket specificity).
    pub bits_per_table: usize,
    /// Number of hash tables (recall knob).
    pub tables: usize,
    /// Norm-augmentation components `m` (the paper's transform uses 3).
    pub norm_powers: usize,
    /// Scale headroom `U < 1` applied before augmentation.
    pub scale: f32,
}

impl Default for AlshConfig {
    fn default() -> Self {
        Self {
            bits_per_table: 8,
            tables: 8,
            norm_powers: 3,
            scale: 0.83,
        }
    }
}

/// An ALSH index over one output weight matrix.
#[derive(Debug, Clone)]
pub struct AlshMips {
    config: AlshConfig,
    /// `tables x bits` random hyperplanes in augmented space.
    planes: Vec<Vec<Vector>>,
    /// `tables` maps bucket → row indices.
    buckets: Vec<std::collections::HashMap<u64, Vec<usize>>>,
    /// Augmented (preprocessed) rows, retained for hashing the query only.
    augmented_dim: usize,
    row_scale: f32,
    classes: usize,
}

impl AlshMips {
    /// Builds the index over `params.w_o`.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero tables or bits.
    pub fn build(params: &Params, config: AlshConfig, seed: u64) -> Self {
        assert!(
            config.tables > 0 && config.bits_per_table > 0,
            "degenerate ALSH config"
        );
        let e = params.w_o.cols();
        let v = params.w_o.rows();
        let augmented_dim = e + config.norm_powers;

        // Scale all rows into the U-ball.
        let max_norm = (0..v)
            .map(|i| norm(params.w_o.row(i)))
            .fold(0.0f32, f32::max)
            .max(1e-12);
        let row_scale = config.scale / max_norm;

        let mut rng = StdRng::seed_from_u64(seed);
        let mut planes = Vec::with_capacity(config.tables);
        for _ in 0..config.tables {
            let table: Vec<Vector> = (0..config.bits_per_table)
                .map(|_| {
                    (0..augmented_dim)
                        .map(|_| standard_normal(&mut rng))
                        .collect()
                })
                .collect();
            planes.push(table);
        }

        let mut buckets = vec![std::collections::HashMap::new(); config.tables];
        for row_idx in 0..v {
            let aug = augment_row(params.w_o.row(row_idx), row_scale, config.norm_powers);
            for (t, table) in planes.iter().enumerate() {
                let h = hash(&aug, table);
                buckets[t].entry(h).or_insert_with(Vec::new).push(row_idx);
            }
        }
        Self {
            config,
            planes,
            buckets,
            augmented_dim,
            row_scale,
            classes: v,
        }
    }

    /// Number of hash probes a query performs (`tables x bits` dot products
    /// in augmented space) — the index-side overhead ITH does not pay.
    pub fn hash_probes(&self) -> usize {
        self.config.tables * self.config.bits_per_table
    }

    /// The augmented dimensionality (for overhead accounting).
    pub fn augmented_dim(&self) -> usize {
        self.augmented_dim
    }

    /// Candidate rows for a hidden state (union over tables).
    pub fn candidates(&self, h: &Vector) -> Vec<usize> {
        let aug = augment_query(h.as_slice(), self.config.norm_powers);
        let mut seen = vec![false; self.classes];
        let mut out = Vec::new();
        for (t, table) in self.planes.iter().enumerate() {
            let hsh = hash(&aug, table);
            if let Some(rows) = self.buckets[t].get(&hsh) {
                for &r in rows {
                    if !seen[r] {
                        seen[r] = true;
                        out.push(r);
                    }
                }
            }
        }
        out
    }
}

impl MipsStrategy for AlshMips {
    fn search(&self, params: &Params, h: &Vector) -> MipsResult {
        let candidates = self.candidates(h);
        let mut best = 0usize;
        let mut best_z = f32::NEG_INFINITY;
        let mut comparisons = 0usize;
        for &i in &candidates {
            let z = output_logit(params, h, i);
            comparisons += 1;
            if z > best_z {
                best_z = z;
                best = i;
            }
        }
        if candidates.is_empty() {
            // Total hash miss: fall back to the exact search (a real system
            // would probe neighbouring buckets; exhaustive is the upper
            // bound and keeps the result well-defined).
            for i in 0..self.classes {
                let z = output_logit(params, h, i);
                comparisons += 1;
                if z > best_z {
                    best_z = z;
                    best = i;
                }
            }
        }
        let _ = self.row_scale;
        MipsResult {
            label: best,
            comparisons,
            speculated: true,
        }
    }

    fn name(&self) -> &'static str {
        "alsh"
    }
}

fn norm(xs: &[f32]) -> f32 {
    xs.iter().map(|x| x * x).sum::<f32>().sqrt()
}

fn augment_row(row: &[f32], scale: f32, m: usize) -> Vector {
    let scaled: Vec<f32> = row.iter().map(|x| x * scale).collect();
    let mut out = scaled.clone();
    let mut n2 = scaled.iter().map(|x| x * x).sum::<f32>();
    for _ in 0..m {
        out.push(n2);
        n2 = n2 * n2;
    }
    out.into()
}

fn augment_query(q: &[f32], m: usize) -> Vector {
    let n = norm(q).max(1e-12);
    let mut out: Vec<f32> = q.iter().map(|x| x / n).collect();
    out.extend(std::iter::repeat_n(0.5, m));
    out.into()
}

fn hash(v: &Vector, planes: &[Vector]) -> u64 {
    let mut h = 0u64;
    for (b, p) in planes.iter().enumerate() {
        let dot: f32 = v.iter().zip(p.iter()).map(|(a, b)| a * b).sum();
        if dot >= 0.0 {
            h |= 1 << b;
        }
    }
    h
}

fn standard_normal(rng: &mut StdRng) -> f32 {
    // Box–Muller.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExhaustiveMips;
    use memn2n::ModelConfig;

    fn params(v: usize, e: usize, seed: u64) -> Params {
        Params::init(
            ModelConfig {
                embed_dim: e,
                hops: 1,
                tie_embeddings: false,
                ..ModelConfig::default()
            },
            v,
            &mut StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn index_is_deterministic() {
        let p = params(40, 16, 1);
        let a = AlshMips::build(&p, AlshConfig::default(), 7);
        let b = AlshMips::build(&p, AlshConfig::default(), 7);
        let h: Vector = (0..16).map(|i| (i as f32 * 0.2).sin()).collect();
        assert_eq!(a.candidates(&h), b.candidates(&h));
    }

    #[test]
    fn more_tables_increase_candidates() {
        let p = params(100, 16, 2);
        let h: Vector = (0..16).map(|i| (i as f32 * 0.3).cos()).collect();
        let small = AlshMips::build(
            &p,
            AlshConfig {
                tables: 2,
                ..AlshConfig::default()
            },
            3,
        );
        let large = AlshMips::build(
            &p,
            AlshConfig {
                tables: 16,
                ..AlshConfig::default()
            },
            3,
        );
        assert!(large.candidates(&h).len() >= small.candidates(&h).len());
    }

    #[test]
    fn high_recall_configuration_finds_the_argmax_mostly() {
        let p = params(60, 16, 3);
        let index = AlshMips::build(
            &p,
            AlshConfig {
                bits_per_table: 6,
                tables: 24,
                ..AlshConfig::default()
            },
            4,
        );
        let mut hits = 0usize;
        for s in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(s);
            let h: Vector = (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let exact = ExhaustiveMips.search(&p, &h);
            let approx = index.search(&p, &h);
            if exact.label == approx.label {
                hits += 1;
            }
        }
        assert!(hits >= 30, "recall {hits}/40");
    }

    #[test]
    fn fallback_covers_empty_buckets() {
        let p = params(10, 8, 4);
        // One very specific table: most queries miss.
        let index = AlshMips::build(
            &p,
            AlshConfig {
                bits_per_table: 24,
                tables: 1,
                ..AlshConfig::default()
            },
            5,
        );
        let h: Vector = (0..8).map(|i| (i as f32).sin()).collect();
        let r = index.search(&p, &h);
        // Either found candidates or fell back, but always a valid label.
        assert!(r.label < 10);
        assert!(r.comparisons >= 1);
    }

    #[test]
    fn probe_accounting_is_config_product() {
        let p = params(20, 8, 5);
        let index = AlshMips::build(
            &p,
            AlshConfig {
                bits_per_table: 8,
                tables: 4,
                ..AlshConfig::default()
            },
            6,
        );
        assert_eq!(index.hash_probes(), 32);
        assert_eq!(index.augmented_dim(), 8 + 3);
    }
}
