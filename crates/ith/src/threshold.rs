//! Per-class threshold computation (Step 2 of Algorithm 1, Eq 8).
//!
//! Given the two conditional densities of a class's logit — on-class
//! `p(z | y = i)` and off-class `p(z | y ≠ i)` — the two-hypothesis Bayes
//! posterior with on-class weight `w` is
//!
//! ```text
//! p(y = i | z) = w p_on(z) / (w p_on(z) + (1 - w) p_off(z))
//! ```
//!
//! Following Eq 8 literally, the threshold is the *smallest observed*
//! on-class logit whose posterior reaches ρ:
//! `θ_i = min({z_i | p(y = i | z_i) ≥ ρ})`. Lower ρ admits smaller observed
//! logits, pushing θ into the class-overlap region — fewer comparisons,
//! some accuracy loss: the Fig 3 trade-off.
//!
//! The weight `w` defaults to ½ (a balanced binary hypothesis, which is
//! what makes the paper's ρ ∈ {1.0, 0.99, 0.95, 0.9} operating points
//! meaningful); the empirical class prior is available through
//! [`PriorMode::Empirical`](crate::calibrate::PriorMode).

use serde::{Deserialize, Serialize};

use crate::Kde;

/// A per-class decision threshold; `None` means "never speculate on this
/// class" (insufficient calibration data or the posterior never reaches ρ).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ClassThreshold {
    /// θ_i, when speculation is permitted.
    pub theta: Option<f32>,
}

impl ClassThreshold {
    /// Whether logit `z` clears the threshold (always false when
    /// speculation is disabled for the class).
    pub fn fires(&self, z: f32) -> bool {
        match self.theta {
            Some(t) => z > t,
            None => false,
        }
    }
}

/// Two-hypothesis Bayes posterior `p(y = i | z)` with on-class weight
/// `weight`.
pub fn posterior(z: f32, weight: f32, on: &Kde, off: &Kde) -> f32 {
    let num = weight * on.density(z);
    let den = num + (1.0 - weight) * off.density(z);
    if den <= 0.0 {
        // No density from either hypothesis: undefined; treat as not
        // confident.
        0.0
    } else {
        num / den
    }
}

/// Computes θ_i as the smallest observed on-class logit whose posterior
/// reaches ρ (Eq 8).
///
/// # Panics
///
/// Panics if `rho` is not in `(0, 1]` or `weight` is outside `[0, 1]`.
pub fn class_threshold(weight: f32, on: &Kde, off: &Kde, rho: f32) -> ClassThreshold {
    assert!(rho > 0.0 && rho <= 1.0, "rho {rho} outside (0, 1]");
    assert!(
        (0.0..=1.0).contains(&weight),
        "weight {weight} outside [0, 1]"
    );
    let theta = on
        .samples()
        .iter()
        .copied()
        .filter(|&z| posterior(z, weight, on, off) >= rho)
        .fold(None, |acc: Option<f32>, z| {
            Some(match acc {
                Some(t) if t <= z => t,
                _ => z,
            })
        });
    ClassThreshold { theta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;

    fn kde(xs: &[f32]) -> Kde {
        Kde::fit(xs, Kernel::Epanechnikov)
    }

    #[test]
    fn posterior_is_one_beyond_off_support() {
        let on = kde(&[5.0, 5.5, 6.0]);
        let off = kde(&[-1.0, 0.0, 1.0]);
        let p = posterior(5.8, 0.5, &on, &off);
        assert!((p - 1.0).abs() < 1e-6, "{p}");
    }

    #[test]
    fn posterior_is_low_in_off_territory() {
        let on = kde(&[5.0, 5.5, 6.0]);
        let off = kde(&[-1.0, 0.0, 1.0]);
        let p = posterior(0.0, 0.5, &on, &off);
        assert!(p < 0.1, "{p}");
    }

    #[test]
    fn posterior_is_half_where_densities_match() {
        let xs = [0.0f32, 1.0, 2.0, 3.0];
        let on = kde(&xs);
        let p = posterior(1.5, 0.5, &on, &on);
        assert!((p - 0.5).abs() < 1e-6, "{p}");
    }

    #[test]
    fn separated_classes_get_a_threshold_at_rho_one() {
        let on = kde(&[5.0, 5.5, 6.0, 5.2, 5.8]);
        let off = kde(&[-1.0, 0.0, 1.0, 0.5]);
        let t = class_threshold(0.5, &on, &off, 1.0);
        let theta = t.theta.expect("separable classes threshold");
        // The threshold is an observed on-class logit past the off support.
        assert!((5.0..=6.0).contains(&theta), "theta {theta}");
        assert!(t.fires(theta + 0.1));
        assert!(!t.fires(theta - 0.1));
    }

    #[test]
    fn overlapping_classes_get_no_threshold_at_rho_one() {
        let xs: Vec<f32> = (0..50).map(|i| (i % 10) as f32 * 0.1).collect();
        let on = kde(&xs);
        // Identical densities → posterior is 0.5 inside the support and 0
        // outside it, so no observed sample reaches 1.0.
        let t = class_threshold(0.5, &on, &on, 1.0);
        assert_eq!(t.theta, None);
    }

    #[test]
    fn lower_rho_lowers_the_threshold() {
        // Partially overlapping clusters.
        let on = kde(&[2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0]);
        let off = kde(&[0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5]);
        let strict = class_threshold(0.5, &on, &off, 1.0);
        let loose = class_threshold(0.5, &on, &off, 0.8);
        match (strict.theta, loose.theta) {
            (Some(s), Some(l)) => assert!(l <= s, "{l} > {s}"),
            (None, Some(_)) => {}
            other => panic!("unexpected thresholds {other:?}"),
        }
    }

    #[test]
    fn rho_sweep_is_monotone_in_theta() {
        let on = kde(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let off = kde(&[0.0, 1.0, 2.0, 3.0]);
        let mut prev = f32::INFINITY;
        for rho in [1.0f32, 0.99, 0.95, 0.9, 0.8] {
            let t = class_threshold(0.5, &on, &off, rho);
            if let Some(theta) = t.theta {
                assert!(theta <= prev + 1e-6, "theta rose at rho {rho}");
                prev = theta;
            }
        }
    }

    #[test]
    fn empty_on_class_disables_speculation() {
        let on = kde(&[]);
        let off = kde(&[0.0, 1.0]);
        assert_eq!(class_threshold(0.5, &on, &off, 0.9).theta, None);
    }

    #[test]
    fn higher_weight_is_more_permissive() {
        let on = kde(&[2.0, 3.0, 4.0, 5.0]);
        let off = kde(&[0.0, 1.0, 2.0, 3.0]);
        let balanced = class_threshold(0.5, &on, &off, 0.9);
        let confident = class_threshold(0.9, &on, &off, 0.9);
        match (balanced.theta, confident.theta) {
            (Some(b), Some(c)) => assert!(c <= b + 1e-6, "{c} > {b}"),
            (None, Some(_)) | (None, None) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn invalid_rho_rejected() {
        let on = kde(&[1.0]);
        let _ = class_threshold(0.5, &on, &on, 0.0);
    }
}
