//! Exit guard for the inference-thresholding early exit.
//!
//! Algorithm 1 fires the moment a logit clears its class threshold θ_i. That
//! is sound only when the logit is numerically meaningful: a Q16.16 dot
//! product that saturated at `Fixed::MAX` clears *every* threshold while
//! carrying no information. The guard vetoes a speculative exit whose winning
//! logit carries a saturation flag — or, with a nonzero guard band, when any
//! band-adjacent logit computed so far carried one — and lets the sequential
//! MIPS continue to the exact argmax.
//!
//! The guard only consults per-logit [`NumericStatus`] registers; it never
//! changes a logit's value, so on a flag-free inference a guarded search is
//! bit-identical to an unguarded one.

use mann_linalg::NumericStatus;
use serde::{Deserialize, Serialize};

/// Configuration for the saturation-aware early-exit veto.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExitGuard {
    /// When false, early exits fire exactly as in the unguarded Algorithm 1.
    pub enabled: bool,
    /// Band (in logit units) around θ_i: with a positive band, an exit is
    /// also vetoed when *any* previously probed logit landed within the band
    /// of its own threshold while carrying a saturation flag. Zero restricts
    /// the veto to the winning logit's own flags.
    pub band: f32,
}

impl Default for ExitGuard {
    fn default() -> Self {
        ExitGuard {
            enabled: true,
            band: 0.0,
        }
    }
}

impl ExitGuard {
    /// A disabled guard: the unguarded Algorithm 1 behaviour.
    pub fn off() -> Self {
        ExitGuard {
            enabled: false,
            band: 0.0,
        }
    }

    /// An enabled guard with the given band (in logit units).
    pub fn with_band(band: f32) -> Self {
        ExitGuard {
            enabled: true,
            band,
        }
    }

    /// Whether a firing early exit must be vetoed.
    ///
    /// `winning` is the status register of the winning logit's own
    /// computation; `band_flagged` reports whether any logit probed so far
    /// landed within the guard band of its threshold while flagged.
    pub fn vetoes(&self, winning: &NumericStatus, band_flagged: bool) -> bool {
        self.enabled && (winning.stressed() || (self.band > 0.0 && band_flagged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flagged() -> NumericStatus {
        NumericStatus {
            mul_sat: 1,
            ..NumericStatus::default()
        }
    }

    #[test]
    fn default_guard_vetoes_flagged_winner_only() {
        let g = ExitGuard::default();
        assert!(g.vetoes(&flagged(), false));
        assert!(!g.vetoes(&NumericStatus::CLEAN, false));
        // Zero band: band-adjacent flags alone do not veto.
        assert!(!g.vetoes(&NumericStatus::CLEAN, true));
    }

    #[test]
    fn banded_guard_vetoes_adjacent_flags() {
        let g = ExitGuard::with_band(0.5);
        assert!(g.vetoes(&NumericStatus::CLEAN, true));
        assert!(!g.vetoes(&NumericStatus::CLEAN, false));
    }

    #[test]
    fn disabled_guard_never_vetoes() {
        let g = ExitGuard::off();
        assert!(!g.vetoes(&flagged(), true));
    }
}
