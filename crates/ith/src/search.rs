//! Maximum inner-product search strategies (Step 4 of Algorithm 1 and the
//! conventional baseline of Fig 2(a)).

use mann_linalg::Vector;
use memn2n::forward::output_logit;
use memn2n::Params;
use serde::{Deserialize, Serialize};

use crate::ThresholdingModel;

/// Outcome of one output-layer search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MipsResult {
    /// The predicted class.
    pub label: usize,
    /// Number of logit comparisons performed (= output rows evaluated).
    pub comparisons: usize,
    /// Whether the search terminated early through a threshold.
    pub speculated: bool,
}

/// A strategy for finding `argmax_i W_o[i] · h`.
///
/// Object-safe so the platform models can hold `&dyn MipsStrategy`.
pub trait MipsStrategy {
    /// Runs the search over the output layer of `params` for hidden state
    /// `h`.
    fn search(&self, params: &Params, h: &Vector) -> MipsResult;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// The conventional method (Fig 2(a)): evaluate every logit, return the
/// argmax.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExhaustiveMips;

impl MipsStrategy for ExhaustiveMips {
    fn search(&self, params: &Params, h: &Vector) -> MipsResult {
        let v = params.vocab_size;
        let mut best = 0usize;
        let mut best_z = f32::NEG_INFINITY;
        for i in 0..v {
            let z = output_logit(params, h, i);
            if z > best_z {
                best_z = z;
                best = i;
            }
        }
        MipsResult {
            label: best,
            comparisons: v,
            speculated: false,
        }
    }

    fn name(&self) -> &'static str {
        "exhaustive"
    }
}

/// Inference thresholding (Fig 2(b)): probe classes in silhouette order and
/// stop at the first logit that clears its threshold; fall back to the exact
/// argmax when none fires.
#[derive(Debug, Clone)]
pub struct ThresholdedMips<'a> {
    model: &'a ThresholdingModel,
    use_ordering: bool,
}

impl<'a> ThresholdedMips<'a> {
    /// Creates the strategy with silhouette index ordering enabled (the
    /// paper's full method).
    pub fn new(model: &'a ThresholdingModel) -> Self {
        Self {
            model,
            use_ordering: true,
        }
    }

    /// Disables Step 3's index ordering (the ablation in Fig 3): classes are
    /// probed in natural index order instead.
    pub fn without_ordering(model: &'a ThresholdingModel) -> Self {
        Self {
            model,
            use_ordering: false,
        }
    }

    /// The probe order in effect.
    fn order(&self) -> Box<dyn Iterator<Item = usize> + '_> {
        if self.use_ordering {
            Box::new(self.model.order.iter().copied())
        } else {
            Box::new(0..self.model.classes())
        }
    }
}

impl MipsStrategy for ThresholdedMips<'_> {
    fn search(&self, params: &Params, h: &Vector) -> MipsResult {
        debug_assert_eq!(params.vocab_size, self.model.classes());
        let mut best = 0usize;
        let mut best_z = f32::NEG_INFINITY;
        let mut comparisons = 0usize;
        for i in self.order() {
            let z = output_logit(params, h, i);
            comparisons += 1;
            if self.model.thresholds[i].fires(z) {
                return MipsResult {
                    label: i,
                    comparisons,
                    speculated: true,
                };
            }
            if z > best_z {
                best_z = z;
                best = i;
            }
        }
        MipsResult {
            label: best,
            comparisons,
            speculated: false,
        }
    }

    fn name(&self) -> &'static str {
        if self.use_ordering {
            "inference-thresholding"
        } else {
            "inference-thresholding-unordered"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::ClassThreshold;
    use crate::Kernel;
    use memn2n::ModelConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> Params {
        Params::init(
            ModelConfig {
                embed_dim: 4,
                hops: 1,
                tie_embeddings: false,
                ..ModelConfig::default()
            },
            6,
            &mut StdRng::seed_from_u64(2),
        )
    }

    fn ith_model(thetas: Vec<Option<f32>>, order: Vec<usize>) -> ThresholdingModel {
        let n = thetas.len();
        ThresholdingModel {
            thresholds: thetas
                .into_iter()
                .map(|theta| ClassThreshold { theta })
                .collect(),
            order,
            silhouettes: vec![0.0; n],
            rho: 1.0,
            kernel: Kernel::Epanechnikov,
        }
    }

    #[test]
    fn exhaustive_visits_every_class() {
        let p = params();
        let h = Vector::from(vec![1.0, -0.5, 0.25, 2.0]);
        let r = ExhaustiveMips.search(&p, &h);
        assert_eq!(r.comparisons, 6);
        assert!(!r.speculated);
        // Matches the dense matvec argmax.
        let z = p.w_o.matvec(&h).unwrap();
        assert_eq!(Some(r.label), z.argmax());
    }

    #[test]
    fn disabled_thresholds_reduce_to_exhaustive_result() {
        let p = params();
        let h = Vector::from(vec![0.3, 0.1, -0.2, 0.9]);
        let ith = ith_model(vec![None; 6], (0..6).collect());
        let fast = ThresholdedMips::new(&ith).search(&p, &h);
        let exact = ExhaustiveMips.search(&p, &h);
        assert_eq!(fast.label, exact.label);
        assert_eq!(fast.comparisons, 6);
        assert!(!fast.speculated);
    }

    #[test]
    fn firing_threshold_stops_early() {
        let p = params();
        let h = Vector::from(vec![1.0, 1.0, 1.0, 1.0]);
        // Class probed first fires immediately (threshold far below any
        // logit).
        let first = 3usize;
        let mut thetas = vec![None; 6];
        thetas[first] = Some(-1e6);
        let ith = ith_model(thetas, vec![3, 0, 1, 2, 4, 5]);
        let r = ThresholdedMips::new(&ith).search(&p, &h);
        assert_eq!(r.label, first);
        assert_eq!(r.comparisons, 1);
        assert!(r.speculated);
    }

    #[test]
    fn ordering_controls_probe_sequence() {
        let p = params();
        let h = Vector::from(vec![1.0, 0.0, 0.0, 0.0]);
        let mut thetas = vec![None; 6];
        thetas[5] = Some(-1e6); // fires for any logit
                                // With ordering, class 5 is probed first → 1 comparison.
        let ith = ith_model(thetas, vec![5, 0, 1, 2, 3, 4]);
        let ordered = ThresholdedMips::new(&ith).search(&p, &h);
        assert_eq!(ordered.comparisons, 1);
        // Without ordering, classes 0..4 are probed before 5.
        let unordered = ThresholdedMips::without_ordering(&ith).search(&p, &h);
        assert_eq!(unordered.comparisons, 6);
        assert_eq!(unordered.label, 5);
        assert!(unordered.speculated);
    }

    #[test]
    fn names_distinguish_variants() {
        let ith = ith_model(vec![None; 6], (0..6).collect());
        assert_eq!(ExhaustiveMips.name(), "exhaustive");
        assert_eq!(ThresholdedMips::new(&ith).name(), "inference-thresholding");
        assert_eq!(
            ThresholdedMips::without_ordering(&ith).name(),
            "inference-thresholding-unordered"
        );
    }

    #[test]
    fn strategy_is_object_safe() {
        let ith = ith_model(vec![None; 6], (0..6).collect());
        let strategies: Vec<Box<dyn MipsStrategy + '_>> = vec![
            Box::new(ExhaustiveMips),
            Box::new(ThresholdedMips::new(&ith)),
        ];
        let p = params();
        let h = Vector::from(vec![0.1, 0.2, 0.3, 0.4]);
        for s in &strategies {
            let r = s.search(&p, &h);
            assert!(r.comparisons >= 1);
        }
    }
}
