//! Fixed-width histograms of logit values (the `HG_i` / `HG_ī` of
//! Algorithm 1).

use serde::{Deserialize, Serialize};

/// A uniform-bin histogram that also retains its raw samples (the KDE and
/// silhouette steps need them; the binned view drives Fig 2(b)-style plots).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<f32>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation. Non-finite values are ignored (they cannot
    /// occur in the fixed-point datapath and would poison the KDE).
    pub fn add(&mut self, value: f32) {
        if value.is_finite() {
            self.samples.push(value);
        }
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no observation was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw observations.
    pub fn samples(&self) -> &[f32] {
        &self.samples
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f32> {
        mann_linalg::stats::min(&self.samples)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f32> {
        mann_linalg::stats::max(&self.samples)
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f32 {
        mann_linalg::stats::mean(&self.samples)
    }

    /// Sample standard deviation (0 when empty).
    pub fn std_dev(&self) -> f32 {
        mann_linalg::stats::std_dev(&self.samples)
    }

    /// Bins the observations into `bins` uniform cells over `[lo, hi]`,
    /// returning normalized frequencies (sum 1 when non-empty). Values
    /// outside the range clamp to the boundary cells.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn binned(&self, bins: usize, lo: f32, hi: f32) -> Vec<f32> {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "invalid range [{lo}, {hi}]");
        let mut counts = vec![0.0f32; bins];
        let width = (hi - lo) / bins as f32;
        for &x in &self.samples {
            let idx = (((x - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
            counts[idx] += 1.0;
        }
        let n = self.samples.len() as f32;
        if n > 0.0 {
            for c in &mut counts {
                *c /= n;
            }
        }
        counts
    }
}

impl Extend<f32> for Histogram {
    fn extend<I: IntoIterator<Item = f32>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f32> for Histogram {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let mut h = Self::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_summaries() {
        let h: Histogram = [1.0f32, 2.0, 3.0].into_iter().collect();
        assert_eq!(h.len(), 3);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(3.0));
        assert!((h.mean() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let mut h = Histogram::new();
        h.add(f32::NAN);
        h.add(f32::INFINITY);
        h.add(1.0);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn binned_frequencies_sum_to_one() {
        let h: Histogram = (0..100).map(|i| i as f32 / 10.0).collect();
        let bins = h.binned(8, 0.0, 10.0);
        let sum: f32 = bins.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn out_of_range_values_clamp_to_edges() {
        let h: Histogram = [-100.0f32, 100.0].into_iter().collect();
        let bins = h.binned(4, 0.0, 1.0);
        assert_eq!(bins[0], 0.5);
        assert_eq!(bins[3], 0.5);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn binned_rejects_empty_range() {
        let _ = Histogram::new().binned(4, 1.0, 1.0);
    }
}
