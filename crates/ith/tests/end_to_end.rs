//! End-to-end properties of inference thresholding on a really trained
//! model — the invariants behind Fig 3.

use mann_babi::{DatasetBuilder, EncodedSample, TaskId};
use mann_ith::search::{ExhaustiveMips, MipsStrategy, ThresholdedMips};
use mann_ith::{LogitStats, ThresholdingCalibrator};
use memn2n::forward::forward_until_output;
use memn2n::{ModelConfig, TrainConfig, TrainedModel, Trainer};

fn train_task1() -> (TrainedModel, Vec<EncodedSample>, Vec<EncodedSample>) {
    let data = DatasetBuilder::new()
        .train_samples(300)
        .test_samples(60)
        .seed(17)
        .build_task(TaskId::SingleSupportingFact);
    let mut trainer = Trainer::from_task_data(
        &data,
        ModelConfig {
            embed_dim: 24,
            hops: 2,
            tie_embeddings: false,
            ..ModelConfig::default()
        },
        TrainConfig {
            epochs: 25,
            learning_rate: 0.05,
            decay_every: 10,
            clip_norm: 40.0,
            seed: 17,
            ..TrainConfig::default()
        },
    );
    trainer.train();
    trainer.into_parts()
}

struct Outcome {
    accuracy: f32,
    mean_comparisons: f32,
}

fn evaluate(model: &TrainedModel, test: &[EncodedSample], strategy: &dyn MipsStrategy) -> Outcome {
    let mut correct = 0usize;
    let mut comparisons = 0usize;
    for s in test {
        let h = forward_until_output(&model.params, s);
        let r = strategy.search(&model.params, &h);
        if r.label == s.answer {
            correct += 1;
        }
        comparisons += r.comparisons;
    }
    Outcome {
        accuracy: correct as f32 / test.len() as f32,
        mean_comparisons: comparisons as f32 / test.len() as f32,
    }
}

#[test]
fn thresholding_preserves_accuracy_and_cuts_comparisons_at_rho_one() {
    let (model, train, test) = train_task1();
    let exact = evaluate(&model, &test, &ExhaustiveMips);
    assert!(exact.accuracy > 0.7, "baseline accuracy {}", exact.accuracy);

    let ith = ThresholdingCalibrator::new()
        .rho(1.0)
        .calibrate(&model, &train);
    let fast = evaluate(&model, &test, &ThresholdedMips::new(&ith));

    // Paper: ρ = 1.0 costs < 0.1 % accuracy. Allow a couple of test
    // questions of slack on this small split.
    assert!(
        fast.accuracy >= exact.accuracy - 0.05,
        "accuracy dropped {} -> {}",
        exact.accuracy,
        fast.accuracy
    );
    assert!(
        fast.mean_comparisons < exact.mean_comparisons,
        "no comparison savings: {} vs {}",
        fast.mean_comparisons,
        exact.mean_comparisons
    );
}

#[test]
fn lower_rho_means_fewer_comparisons() {
    let (model, train, test) = train_task1();
    let stats = LogitStats::collect(&model, &train);
    let mut prev = f32::INFINITY;
    for rho in [1.0f32, 0.99, 0.95, 0.9] {
        let ith = ThresholdingCalibrator::new()
            .rho(rho)
            .calibrate_from_stats(&stats);
        let out = evaluate(&model, &test, &ThresholdedMips::new(&ith));
        assert!(
            out.mean_comparisons <= prev + 1e-3,
            "rho {rho}: comparisons rose to {}",
            out.mean_comparisons
        );
        prev = out.mean_comparisons;
    }
}

#[test]
fn ordering_never_hurts_comparisons_on_average() {
    let (model, train, test) = train_task1();
    let ith = ThresholdingCalibrator::new()
        .rho(0.95)
        .calibrate(&model, &train);
    let ordered = evaluate(&model, &test, &ThresholdedMips::new(&ith));
    let unordered = evaluate(&model, &test, &ThresholdedMips::without_ordering(&ith));
    // Fig 3: ordering improves (or at worst matches) the comparison count.
    assert!(
        ordered.mean_comparisons <= unordered.mean_comparisons * 1.05,
        "ordered {} vs unordered {}",
        ordered.mean_comparisons,
        unordered.mean_comparisons
    );
}

#[test]
fn comparisons_never_exceed_class_count() {
    let (model, train, test) = train_task1();
    let ith = ThresholdingCalibrator::new()
        .rho(0.9)
        .calibrate(&model, &train);
    let strategy = ThresholdedMips::new(&ith);
    for s in &test {
        let h = forward_until_output(&model.params, s);
        let r = strategy.search(&model.params, &h);
        assert!(r.comparisons <= model.params.vocab_size);
        assert!(r.comparisons >= 1);
    }
}

#[test]
fn speculation_fires_on_a_trained_separable_task() {
    let (model, train, test) = train_task1();
    let ith = ThresholdingCalibrator::new()
        .rho(1.0)
        .calibrate(&model, &train);
    let strategy = ThresholdedMips::new(&ith);
    let fired = test
        .iter()
        .filter(|s| {
            let h = forward_until_output(&model.params, s);
            strategy.search(&model.params, &h).speculated
        })
        .count();
    assert!(
        fired > test.len() / 4,
        "speculation fired on only {fired}/{} samples",
        test.len()
    );
}
