//! Property tests for inference thresholding: posterior bounds, threshold
//! monotonicity, ordering invariants, and baseline-search totality.

use mann_ith::baselines::{AlshConfig, AlshMips, ClusterConfig, ClusterMips};
use mann_ith::search::{ExhaustiveMips, MipsStrategy, ThresholdedMips};
use mann_ith::threshold::{class_threshold, posterior, ClassThreshold};
use mann_ith::{Kde, Kernel, ThresholdingModel};
use mann_linalg::Vector;
use memn2n::{ModelConfig, Params};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cluster_pair() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    let cluster = |center: f32| {
        proptest::collection::vec((-1.0f32..1.0).prop_map(move |d| center + d), 3..40)
    };
    ((-5.0f32..5.0), (-5.0f32..5.0)).prop_flat_map(move |(c1, c2)| (cluster(c1), cluster(c2)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The posterior is always a probability.
    #[test]
    fn posterior_is_bounded((on, off) in cluster_pair(), z in -10.0f32..10.0, w in 0.0f32..=1.0) {
        for kernel in [Kernel::Epanechnikov, Kernel::Gaussian] {
            let on_kde = Kde::fit(&on, kernel);
            let off_kde = Kde::fit(&off, kernel);
            let p = posterior(z, w, &on_kde, &off_kde);
            prop_assert!((0.0..=1.0).contains(&p), "{p}");
        }
    }

    /// θ never increases as ρ decreases, for any cluster pair.
    #[test]
    fn theta_is_monotone_in_rho((on, off) in cluster_pair()) {
        let on_kde = Kde::fit(&on, Kernel::Epanechnikov);
        let off_kde = Kde::fit(&off, Kernel::Epanechnikov);
        let mut prev = f32::INFINITY;
        for rho in [1.0f32, 0.99, 0.95, 0.9, 0.8, 0.6] {
            if let Some(theta) = class_threshold(0.5, &on_kde, &off_kde, rho).theta {
                prop_assert!(theta <= prev + 1e-5, "theta rose to {theta} at rho {rho}");
                prev = theta;
            }
        }
    }

    /// Any threshold produced is an observed on-class sample.
    #[test]
    fn theta_is_an_observed_sample((on, off) in cluster_pair(), rho in 0.5f32..=1.0) {
        let on_kde = Kde::fit(&on, Kernel::Epanechnikov);
        let off_kde = Kde::fit(&off, Kernel::Epanechnikov);
        if let Some(theta) = class_threshold(0.5, &on_kde, &off_kde, rho).theta {
            prop_assert!(on.contains(&theta), "theta {theta} not observed");
        }
    }

    /// The thresholded search always returns a valid label with bounded
    /// comparisons, under arbitrary (even adversarial) threshold tables.
    #[test]
    fn thresholded_search_is_total(
        seed in 0u64..500,
        thetas in proptest::collection::vec(proptest::option::of(-5.0f32..5.0), 12),
    ) {
        let params = Params::init(
            ModelConfig { embed_dim: 6, hops: 1, tie_embeddings: false,
 ..ModelConfig::default()
},
            12,
            &mut StdRng::seed_from_u64(seed),
        );
        let model = ThresholdingModel {
            thresholds: thetas.into_iter().map(|theta| ClassThreshold { theta }).collect(),
            order: (0..12).rev().collect(),
            silhouettes: vec![0.0; 12],
            rho: 1.0,
            kernel: Kernel::Epanechnikov,
        };
        let h: Vector = (0..6).map(|i| ((seed + i as u64) as f32 * 0.37).sin()).collect();
        for strategy in [ThresholdedMips::new(&model), ThresholdedMips::without_ordering(&model)] {
            let r = strategy.search(&params, &h);
            prop_assert!(r.label < 12);
            prop_assert!((1..=12).contains(&r.comparisons));
            // Non-speculated searches must agree with the exact argmax.
            if !r.speculated {
                prop_assert_eq!(r.label, ExhaustiveMips.search(&params, &h).label);
            }
        }
    }

    /// ALSH and clustering always return valid labels and never evaluate a
    /// row twice (comparisons ≤ classes + probes).
    #[test]
    fn baselines_are_total(seed in 0u64..200) {
        let params = Params::init(
            ModelConfig { embed_dim: 8, hops: 1, tie_embeddings: false,
 ..ModelConfig::default()
},
            24,
            &mut StdRng::seed_from_u64(seed),
        );
        let h: Vector = (0..8).map(|i| ((seed ^ 0xAB) as f32 * 0.1 + i as f32 * 0.4).cos()).collect();
        let alsh = AlshMips::build(&params, AlshConfig::default(), seed);
        let ra = alsh.search(&params, &h);
        prop_assert!(ra.label < 24);
        prop_assert!(ra.comparisons <= 2 * 24, "{}", ra.comparisons);
        let cluster = ClusterMips::build(&params, ClusterConfig { clusters: 4, top_p: 2, iterations: 5 }, seed);
        let rc = cluster.search(&params, &h);
        prop_assert!(rc.label < 24);
        prop_assert!(rc.comparisons <= 24 + 4 + 24);
    }
}
