//! Property tests for the platform models and the FLOPS/kJ metric.

use mann_babi::EncodedSample;
use mann_platform::{flops_per_kj, CpuModel, EfficiencyRow, ExecutionModel, GpuModel, MipsMode};
use memn2n::{ModelConfig, Params, TrainedModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model_and_sample(seed: u64, sentences: usize) -> (TrainedModel, EncodedSample) {
    let params = Params::init(
        ModelConfig {
            embed_dim: 8,
            hops: 2,
            tie_embeddings: false,
            ..ModelConfig::default()
        },
        20,
        &mut StdRng::seed_from_u64(seed),
    );
    let model = TrainedModel {
        task: mann_babi::TaskId::SingleSupportingFact,
        params,
        encoder: mann_babi::Encoder::with_time_tokens(mann_babi::Vocab::new(), 0),
    };
    let sample = EncodedSample {
        sentences: (0..sentences).map(|i| vec![i % 19, (i + 1) % 19]).collect(),
        question: vec![3],
        answer: 1,
    };
    (model, sample)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The normalized metric identity: value vs reference equals
    /// speedup² x power ratio, for any positive inputs with equal work.
    #[test]
    fn metric_identity(
        t1 in 0.01f64..1e4, p1 in 1.0f64..500.0,
        t2 in 0.01f64..1e4, p2 in 1.0f64..500.0,
        flops in 1u64..u64::MAX / 2,
    ) {
        let a = EfficiencyRow { name: "a".into(), time_s: t1, power_w: p1, flops, accuracy: 1.0 };
        let b = EfficiencyRow { name: "b".into(), time_s: t2, power_w: p2, flops, accuracy: 1.0 };
        let lhs = a.efficiency_vs(&b);
        let rhs = a.speedup_vs(&b).powi(2) * (b.power_w / a.power_w);
        prop_assert!((lhs / rhs - 1.0).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    /// The metric is monotone in each argument the right way.
    #[test]
    fn metric_monotonicity(t in 0.01f64..100.0, p in 1.0f64..100.0, f in 1u64..1_000_000) {
        let base = flops_per_kj(f, t, p);
        prop_assert!(flops_per_kj(f, t * 2.0, p) < base);
        prop_assert!(flops_per_kj(f, t, p * 2.0) < base);
        prop_assert!(flops_per_kj(f * 2, t, p) > base);
    }

    /// CPU latency grows with story length (more framework ops), and both
    /// analytic platforms always report positive, finite measurements.
    #[test]
    fn analytic_platforms_are_sane(seed in 0u64..100, sentences in 1usize..12) {
        let (model, sample) = model_and_sample(seed, sentences);
        let (model2, bigger) = model_and_sample(seed, sentences + 3);
        for platform in [&CpuModel::new() as &dyn ExecutionModel, &GpuModel::new()] {
            let m = platform.run_inference(&model, &sample, MipsMode::Exhaustive);
            prop_assert!(m.time_s.is_finite() && m.time_s > 0.0);
            prop_assert!(m.power_w > 0.0);
            prop_assert!(m.flops > 0);
            let m2 = platform.run_inference(&model2, &bigger, MipsMode::Exhaustive);
            prop_assert!(m2.time_s > m.time_s, "{} vs {}", m2.time_s, m.time_s);
        }
    }

    /// CPU and GPU always agree on the predicted label (both are exact).
    #[test]
    fn cpu_gpu_label_agreement(seed in 0u64..100) {
        let (model, sample) = model_and_sample(seed, 4);
        let c = CpuModel::new().run_inference(&model, &sample, MipsMode::Exhaustive);
        let g = GpuModel::new().run_inference(&model, &sample, MipsMode::Exhaustive);
        prop_assert_eq!(c.correct, g.correct);
    }
}
