//! Analytic CPU/GPU execution models and energy-efficiency accounting.
//!
//! The paper measures an Intel Core i9-7900X, an NVIDIA TITAN V, and the
//! FPGA accelerator on the same workload and reports time, power, speedup,
//! and energy efficiency in FLOPS/kJ (Table I). Without the physical
//! testbed, this crate substitutes *calibrated analytic models*:
//!
//! * [`CpuModel`] — per-operation dispatch overhead plus bounded-throughput
//!   math; recurrent MANN inference on a CPU is dominated by op dispatch.
//! * [`GpuModel`] — per-kernel launch latency plus transfer time; small
//!   recurrent kernels leave a TITAN V almost entirely latency-bound.
//! * [`FpgaPlatform`] — an adapter over the cycle-level simulator in
//!   [`mann_hw`].
//!
//! Calibration constants and their derivation from Table I live in
//! [`calibration`].
//!
//! # The FLOPS/kJ metric
//!
//! Table I's "FLOPS/kJ" is achieved *throughput per energy*:
//! `(FLOPs / t) / (P · t / 1000)`. Both a platform's speed and its energy
//! enter, which is why the FPGA's advantage (~84x at 25 MHz) exceeds the
//! plain energy ratio (~16x): the normalized metric equals
//! `speedup² x power-ratio`. [`metrics::flops_per_kj`] implements exactly
//! this definition and the identity is property-tested.

pub mod calibration;
pub mod cpu;
pub mod fpga;
pub mod gpu;
pub mod metrics;

mod device;

pub use cpu::CpuModel;
pub use device::{ExecutionModel, Measurement, MipsMode};
pub use fpga::FpgaPlatform;
pub use gpu::GpuModel;
pub use metrics::{flops_per_kj, EfficiencyRow};
