//! Calibration constants and their derivation.
//!
//! Table I of the paper reports, for the complete workload (20 bAbI tasks,
//! 100 test questions each, 100 repetitions ≈ 200 k inferences):
//!
//! | platform     | time (s) | power (W) |
//! |--------------|----------|-----------|
//! | CPU i9-7900X | 242.77   | 23.28     |
//! | GPU TITAN V  | 226.90   | 45.36     |
//! | FPGA 25 MHz  | 43.54    | 14.71     |
//! | FPGA 100 MHz | 30.28    | 20.10     |
//!
//! Dividing by ≈ 200 k inferences gives per-inference latencies of
//! ≈ 1.21 ms (CPU), ≈ 1.13 ms (GPU), ≈ 218 µs (FPGA 25 MHz), ≈ 151 µs
//! (FPGA 100 MHz). The analytic models reproduce those from first
//! principles:
//!
//! * **CPU** — a MANN inference is ~25–30 small framework ops (embedding
//!   lookups, four ops per hop, the output matvec); each op costs tens of
//!   microseconds of dispatch in the Torch-era stack the authors used, so
//!   `ops x OP_OVERHEAD` dominates and the math itself is noise.
//! * **GPU** — the same ops become kernel launches (~40 µs each through
//!   driver + synchronization on small tensors) plus a host transfer; a
//!   TITAN V's arithmetic throughput never matters at bAbI sizes.
//! * **FPGA** — cycles come from the simulator; the host interface is two
//!   DMA transfers (~65 µs each) per inference, independent of fabric
//!   clock — which reproduces the sub-linear frequency scaling.
//!
//! The constants below land each platform within ~15 % of the Table I
//! per-inference latencies; EXPERIMENTS.md records the resulting
//! paper-vs-measured comparison for every row.

/// CPU effective arithmetic throughput (FLOP/s) for small unbatched GEMV.
pub const CPU_EFFECTIVE_FLOPS: f64 = 1.5e9;

/// CPU per-operation dispatch overhead, seconds.
pub const CPU_OP_OVERHEAD_S: f64 = 47e-6;

/// CPU package + DRAM power under this workload, watts (measured value from
/// Table I).
pub const CPU_POWER_W: f64 = 23.28;

/// GPU effective throughput (FLOP/s) on tiny kernels — far below peak.
pub const GPU_EFFECTIVE_FLOPS: f64 = 2.0e10;

/// GPU per-kernel launch + sync latency, seconds.
pub const GPU_KERNEL_OVERHEAD_S: f64 = 40e-6;

/// GPU host-transfer time per inference, seconds (pinned-memory copy of the
/// story/question plus result readback).
pub const GPU_TRANSFER_S: f64 = 130e-6;

/// GPU board power under this workload, watts (Table I).
pub const GPU_POWER_W: f64 = 45.36;

/// Number of framework operations in one MANN inference with `hops` hops
/// and `sentences` story sentences.
///
/// Embedding: one op per sentence per memory (address + content) plus the
/// question; per hop: score matvec, softmax, weighted read, controller;
/// output: one matvec + argmax.
pub fn framework_ops(sentences: usize, hops: usize) -> usize {
    2 * sentences + 1 + 4 * hops + 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_inference_latencies_match_table1_scale() {
        // Typical bAbI shape: 7 sentences, 3 hops.
        let ops = framework_ops(7, 3) as f64;
        let cpu = ops * CPU_OP_OVERHEAD_S;
        let gpu = ops * GPU_KERNEL_OVERHEAD_S + GPU_TRANSFER_S;
        // Table I / 200k inferences: CPU 1.21 ms, GPU 1.13 ms.
        assert!((1.0e-3..1.6e-3).contains(&cpu), "cpu {cpu}");
        assert!((0.9e-3..1.5e-3).contains(&gpu), "gpu {gpu}");
        // CPU slightly slower than GPU, as in the paper (speedup 0.94).
        let ratio = cpu / gpu;
        assert!((0.9..1.3).contains(&ratio), "cpu/gpu ratio {ratio}");
    }

    #[test]
    fn framework_op_count_grows_with_story_and_hops() {
        assert!(framework_ops(10, 3) > framework_ops(5, 3));
        assert!(framework_ops(5, 4) > framework_ops(5, 2));
    }
}
