//! The execution-model abstraction shared by all platforms.

use mann_babi::EncodedSample;
use mann_ith::ThresholdingModel;
use memn2n::TrainedModel;
use serde::{Deserialize, Serialize};

/// Which output-layer search the platform runs.
#[derive(Debug, Clone, Copy, Default)]
pub enum MipsMode<'a> {
    /// The conventional full argmax.
    #[default]
    Exhaustive,
    /// Inference thresholding with the given calibrated model (index
    /// ordering enabled).
    Thresholded(&'a ThresholdingModel),
}

impl MipsMode<'_> {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            MipsMode::Exhaustive => "",
            MipsMode::Thresholded(_) => "+ITH",
        }
    }
}

/// One inference's measurement on a platform.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Measurement {
    /// End-to-end latency, seconds.
    pub time_s: f64,
    /// Average device power during the run, watts.
    pub power_w: f64,
    /// Floating-point operations the inference performed.
    pub flops: u64,
    /// Whether the answer matched the sample's label.
    pub correct: bool,
}

impl Measurement {
    /// Energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.time_s * self.power_w
    }
}

/// A platform that can execute one MANN inference and report time, power,
/// and work. Object-safe: experiment runners hold `&dyn ExecutionModel`.
pub trait ExecutionModel {
    /// Platform label for tables ("CPU", "GPU", "FPGA 25 MHz", …).
    fn name(&self) -> String;

    /// Executes one inference.
    fn run_inference(
        &self,
        model: &TrainedModel,
        sample: &EncodedSample,
        mips: MipsMode<'_>,
    ) -> Measurement;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_time_times_power() {
        let m = Measurement {
            time_s: 2.0,
            power_w: 10.0,
            flops: 100,
            correct: true,
        };
        assert!((m.energy_j() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn mips_mode_labels() {
        assert_eq!(MipsMode::Exhaustive.label(), "");
        // Thresholded label checked in integration tests where a model
        // exists.
    }
}
