//! Energy-efficiency math: the Table I columns.

use serde::{Deserialize, Serialize};

/// Table I's energy-efficiency metric: achieved throughput per energy,
/// `(flops / t) / (P · t / 1000)` — FLOPS per kilojoule.
///
/// With identical work across platforms the *normalized* metric reduces to
/// `speedup² x power-ratio`, which is how Table I's 83.74x at 25 MHz
/// follows from a 5.21x speedup and a 45.36 W / 14.71 W power ratio.
///
/// # Panics
///
/// Panics if `time_s` or `power_w` is not positive.
pub fn flops_per_kj(flops: u64, time_s: f64, power_w: f64) -> f64 {
    assert!(time_s > 0.0, "time must be positive");
    assert!(power_w > 0.0, "power must be positive");
    let throughput = flops as f64 / time_s;
    let energy_kj = power_w * time_s / 1000.0;
    throughput / energy_kj
}

/// One row of a Table I-style report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyRow {
    /// Platform label.
    pub name: String,
    /// Total workload time, seconds.
    pub time_s: f64,
    /// Average power, watts.
    pub power_w: f64,
    /// Total work, FLOPs.
    pub flops: u64,
    /// Workload accuracy (fraction of correct answers).
    pub accuracy: f64,
}

impl EfficiencyRow {
    /// Energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.time_s * self.power_w
    }

    /// Raw FLOPS/kJ.
    pub fn flops_per_kj(&self) -> f64 {
        flops_per_kj(self.flops, self.time_s, self.power_w)
    }

    /// Speedup relative to `reference` (reference time / this time).
    pub fn speedup_vs(&self, reference: &EfficiencyRow) -> f64 {
        reference.time_s / self.time_s
    }

    /// FLOPS/kJ normalized to `reference`.
    pub fn efficiency_vs(&self, reference: &EfficiencyRow) -> f64 {
        self.flops_per_kj() / reference.flops_per_kj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, time_s: f64, power_w: f64, flops: u64) -> EfficiencyRow {
        EfficiencyRow {
            name: name.into(),
            time_s,
            power_w,
            flops,
            accuracy: 1.0,
        }
    }

    #[test]
    fn normalized_metric_is_speedup_squared_times_power_ratio() {
        let gpu = row("GPU", 226.90, 45.36, 1_000_000);
        let fpga = row("FPGA", 43.54, 14.71, 1_000_000);
        let normalized = fpga.efficiency_vs(&gpu);
        let speedup = fpga.speedup_vs(&gpu);
        let identity = speedup * speedup * (gpu.power_w / fpga.power_w);
        assert!((normalized - identity).abs() < 1e-9);
        // And it reproduces Table I's 83.74x.
        assert!((normalized - 83.74).abs() < 1.0, "{normalized}");
    }

    #[test]
    fn table1_cpu_row_reproduces() {
        let gpu = row("GPU", 226.90, 45.36, 1_000_000);
        let cpu = row("CPU", 242.77, 23.28, 1_000_000);
        assert!((cpu.speedup_vs(&gpu) - 0.94).abs() < 0.01);
        assert!((cpu.efficiency_vs(&gpu) - 1.70).abs() < 0.05);
    }

    #[test]
    fn table1_100mhz_row_reproduces() {
        let gpu = row("GPU", 226.90, 45.36, 1_000_000);
        let fpga = row("FPGA 100", 30.28, 20.10, 1_000_000);
        assert!((fpga.speedup_vs(&gpu) - 7.49).abs() < 0.02);
        assert!((fpga.efficiency_vs(&gpu) - 126.72).abs() < 1.0);
    }

    #[test]
    fn fewer_flops_lower_the_metric_at_fixed_time() {
        let a = flops_per_kj(1000, 1.0, 10.0);
        let b = flops_per_kj(500, 1.0, 10.0);
        assert!(b < a);
    }

    #[test]
    #[should_panic(expected = "time")]
    fn zero_time_rejected() {
        let _ = flops_per_kj(1, 0.0, 1.0);
    }
}
