//! Adapter exposing the cycle-level accelerator simulator as an
//! [`ExecutionModel`].

use mann_babi::EncodedSample;
use mann_hw::{AccelConfig, Accelerator, ClockDomain};
use mann_ith::ThresholdingModel;
use memn2n::TrainedModel;

use crate::{ExecutionModel, Measurement, MipsMode};

/// The FPGA accelerator as a measurable platform.
///
/// Unlike [`CpuModel`](crate::CpuModel) / [`GpuModel`](crate::GpuModel),
/// the FPGA's thresholding mode is baked into the loaded bitstream, so it is
/// fixed at construction; the per-inference [`MipsMode`] argument is
/// ignored (asserted consistent in debug builds).
#[derive(Debug, Clone)]
pub struct FpgaPlatform {
    accel: Accelerator,
}

impl FpgaPlatform {
    /// Loads `model` at the given clock without thresholding.
    pub fn new(model: TrainedModel, clock: ClockDomain) -> Self {
        Self {
            accel: Accelerator::new(
                model,
                AccelConfig {
                    clock,
                    ..AccelConfig::default()
                },
            ),
        }
    }

    /// Loads `model` at the given clock with calibrated inference
    /// thresholding (index ordering enabled).
    pub fn with_thresholding(
        model: TrainedModel,
        clock: ClockDomain,
        ith: ThresholdingModel,
    ) -> Self {
        Self {
            accel: Accelerator::new(model, AccelConfig::with_thresholding(clock, ith)),
        }
    }

    /// Builds from a fully custom accelerator configuration.
    pub fn from_config(model: TrainedModel, config: AccelConfig) -> Self {
        Self {
            accel: Accelerator::new(model, config),
        }
    }

    /// The underlying simulator.
    pub fn accelerator(&self) -> &Accelerator {
        &self.accel
    }

    /// Whether thresholding is loaded.
    pub fn has_thresholding(&self) -> bool {
        self.accel.config().ith.is_some()
    }
}

impl ExecutionModel for FpgaPlatform {
    fn name(&self) -> String {
        let mhz = self.accel.config().clock.freq_mhz();
        if self.has_thresholding() {
            format!("FPGA+ITH {mhz:.0} MHz")
        } else {
            format!("FPGA {mhz:.0} MHz")
        }
    }

    fn run_inference(
        &self,
        _model: &TrainedModel,
        sample: &EncodedSample,
        _mips: MipsMode<'_>,
    ) -> Measurement {
        let run = self.accel.run(sample);
        let power_w = self.accel.power_w(run.busy_fraction());
        // The FLOPS/kJ metric credits the *nominal* workload (the useful
        // work delivered): a search shortcut delivers the same answer in
        // less time/energy, which is exactly how Table I's ITH rows exceed
        // the plain rows. The actually executed (reduced) count remains
        // available on `InferenceRun::flops`.
        let model = self.accel.model();
        let nominal =
            memn2n::flops::count_inference(&model.params.config, model.params.vocab_size, sample)
                .total();
        Measurement {
            time_s: run.total_s,
            power_w,
            flops: nominal,
            correct: run.answer == sample.answer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mann_babi::{DatasetBuilder, TaskId};
    use memn2n::{ModelConfig, TrainConfig, Trainer};

    fn trained() -> (TrainedModel, Vec<EncodedSample>, Vec<EncodedSample>) {
        let data = DatasetBuilder::new()
            .train_samples(100)
            .test_samples(20)
            .seed(20)
            .build_task(TaskId::SingleSupportingFact);
        let mut t = Trainer::from_task_data(
            &data,
            ModelConfig {
                embed_dim: 16,
                hops: 2,
                tie_embeddings: false,
                ..ModelConfig::default()
            },
            TrainConfig {
                epochs: 10,
                learning_rate: 0.05,
                decay_every: 5,
                clip_norm: 40.0,
                seed: 20,
                ..TrainConfig::default()
            },
        );
        t.train();
        t.into_parts()
    }

    #[test]
    fn names_reflect_configuration() {
        let (model, train, _) = trained();
        let plain = FpgaPlatform::new(model.clone(), ClockDomain::mhz(25.0));
        assert_eq!(plain.name(), "FPGA 25 MHz");
        let ith = mann_ith::ThresholdingCalibrator::new().calibrate(&model, &train);
        let fast = FpgaPlatform::with_thresholding(model, ClockDomain::mhz(100.0), ith);
        assert_eq!(fast.name(), "FPGA+ITH 100 MHz");
        assert!(fast.has_thresholding());
    }

    #[test]
    fn fpga_beats_analytic_gpu_latency() {
        let (model, _, test) = trained();
        let fpga = FpgaPlatform::new(model.clone(), ClockDomain::mhz(25.0));
        let gpu = crate::GpuModel::new();
        let mf = fpga.run_inference(&model, &test[0], MipsMode::Exhaustive);
        let mg = gpu.run_inference(&model, &test[0], MipsMode::Exhaustive);
        assert!(
            mf.time_s < mg.time_s,
            "FPGA {} should beat GPU {}",
            mf.time_s,
            mg.time_s
        );
        assert!(mf.power_w < mg.power_w);
    }

    #[test]
    fn higher_clock_draws_more_power_and_less_time() {
        let (model, _, test) = trained();
        let slow = FpgaPlatform::new(model.clone(), ClockDomain::mhz(25.0));
        let fast = FpgaPlatform::new(model.clone(), ClockDomain::mhz(100.0));
        let ms = slow.run_inference(&model, &test[0], MipsMode::Exhaustive);
        let mf = fast.run_inference(&model, &test[0], MipsMode::Exhaustive);
        assert!(mf.time_s < ms.time_s);
        assert!(mf.power_w > ms.power_w);
    }
}
