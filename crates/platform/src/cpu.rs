//! The CPU execution model (Intel Core i9-7900X class).

use mann_babi::EncodedSample;
use mann_ith::search::{ExhaustiveMips, MipsStrategy, ThresholdedMips};
use memn2n::flops::count_inference_with_output_rows;
use memn2n::forward::forward_until_output;
use memn2n::TrainedModel;

use crate::calibration::{framework_ops, CPU_EFFECTIVE_FLOPS, CPU_OP_OVERHEAD_S, CPU_POWER_W};
use crate::{ExecutionModel, Measurement, MipsMode};

/// Per-op-overhead-dominated CPU model.
///
/// Inference thresholding barely helps here — the output layer is a small
/// share of the op count, exactly as the paper observes ("on the CPU, the
/// output layer only represents a small part of the computation").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Effective FLOP/s for the arithmetic part.
    pub effective_flops: f64,
    /// Per-operation dispatch overhead, seconds.
    pub op_overhead_s: f64,
    /// Package power, watts.
    pub power_w: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        Self {
            effective_flops: CPU_EFFECTIVE_FLOPS,
            op_overhead_s: CPU_OP_OVERHEAD_S,
            power_w: CPU_POWER_W,
        }
    }
}

impl CpuModel {
    /// The calibrated i9-7900X model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ExecutionModel for CpuModel {
    fn name(&self) -> String {
        "CPU".to_owned()
    }

    fn run_inference(
        &self,
        model: &TrainedModel,
        sample: &EncodedSample,
        mips: MipsMode<'_>,
    ) -> Measurement {
        let h = forward_until_output(&model.params, sample);
        let (label, rows) = match mips {
            MipsMode::Exhaustive => {
                let r = ExhaustiveMips.search(&model.params, &h);
                (r.label, r.comparisons)
            }
            MipsMode::Thresholded(ith) => {
                let r = ThresholdedMips::new(ith).search(&model.params, &h);
                (r.label, r.comparisons)
            }
        };
        let executed = count_inference_with_output_rows(
            &model.params.config,
            model.params.vocab_size,
            sample,
            rows,
        )
        .total();
        // Time reflects the work actually executed; the FLOPS/kJ metric
        // credits the nominal workload (see `FpgaPlatform::run_inference`).
        let nominal =
            memn2n::flops::count_inference(&model.params.config, model.params.vocab_size, sample)
                .total();
        let ops = framework_ops(sample.sentences.len(), model.params.config.hops);
        let time_s = ops as f64 * self.op_overhead_s + executed as f64 / self.effective_flops;
        Measurement {
            time_s,
            power_w: self.power_w,
            flops: nominal,
            correct: label == sample.answer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memn2n::{ModelConfig, Params};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (TrainedModel, EncodedSample) {
        let params = Params::init(
            ModelConfig {
                embed_dim: 8,
                hops: 3,
                tie_embeddings: false,
                ..ModelConfig::default()
            },
            25,
            &mut StdRng::seed_from_u64(3),
        );
        let model = TrainedModel {
            task: mann_babi::TaskId::SingleSupportingFact,
            params,
            encoder: mann_babi::Encoder::with_time_tokens(mann_babi::Vocab::new(), 0),
        };
        let sample = EncodedSample {
            sentences: vec![vec![1, 2, 3], vec![4, 5], vec![6, 7]],
            question: vec![8, 9],
            answer: 3,
        };
        (model, sample)
    }

    #[test]
    fn latency_is_dispatch_dominated() {
        let (model, sample) = setup();
        let m = CpuModel::new().run_inference(&model, &sample, MipsMode::Exhaustive);
        let dispatch = framework_ops(3, 3) as f64 * CPU_OP_OVERHEAD_S;
        assert!(m.time_s >= dispatch);
        assert!(
            m.time_s < dispatch * 1.2,
            "math should be minor: {}",
            m.time_s
        );
    }

    #[test]
    fn thresholding_changes_cpu_time_insignificantly() {
        let (model, sample) = setup();
        let cpu = CpuModel::new();
        let base = cpu.run_inference(&model, &sample, MipsMode::Exhaustive);
        // A fake ITH model that always fires on the first class.
        let ith = mann_ith::ThresholdingModel {
            thresholds: (0..25)
                .map(|i| mann_ith::threshold::ClassThreshold {
                    theta: if i == 0 { Some(-1e9) } else { None },
                })
                .collect(),
            order: (0..25).collect(),
            silhouettes: vec![0.0; 25],
            rho: 1.0,
            kernel: mann_ith::Kernel::Epanechnikov,
        };
        let fast = cpu.run_inference(&model, &sample, MipsMode::Thresholded(&ith));
        let saving = (base.time_s - fast.time_s) / base.time_s;
        assert!(saving < 0.05, "CPU saving should be negligible: {saving}");
    }

    #[test]
    fn power_is_constant() {
        let (model, sample) = setup();
        let m = CpuModel::new().run_inference(&model, &sample, MipsMode::Exhaustive);
        assert_eq!(m.power_w, CPU_POWER_W);
        assert!(m.flops > 0);
    }
}
