//! The GPU execution model (NVIDIA TITAN V class).

use mann_babi::EncodedSample;
use memn2n::flops::count_inference;
use memn2n::forward;
use memn2n::TrainedModel;

use crate::calibration::{
    framework_ops, GPU_EFFECTIVE_FLOPS, GPU_KERNEL_OVERHEAD_S, GPU_POWER_W, GPU_TRANSFER_S,
};
use crate::{ExecutionModel, Measurement, MipsMode};

/// Launch-latency-dominated GPU model.
///
/// Every framework op becomes a kernel; at bAbI tensor sizes each kernel is
/// pure launch overhead. The output layer runs as *one parallel matvec*, so
/// inference thresholding cannot help — the paper's observation that "the
/// GPU can process the output layer in parallel" — and this model therefore
/// ignores the ITH mode for timing (the answer is the exact argmax either
/// way).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Effective FLOP/s on tiny kernels.
    pub effective_flops: f64,
    /// Per-kernel launch + sync latency, seconds.
    pub kernel_overhead_s: f64,
    /// Host transfer per inference, seconds.
    pub transfer_s: f64,
    /// Board power, watts.
    pub power_w: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        Self {
            effective_flops: GPU_EFFECTIVE_FLOPS,
            kernel_overhead_s: GPU_KERNEL_OVERHEAD_S,
            transfer_s: GPU_TRANSFER_S,
            power_w: GPU_POWER_W,
        }
    }
}

impl GpuModel {
    /// The calibrated TITAN V model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ExecutionModel for GpuModel {
    fn name(&self) -> String {
        "GPU".to_owned()
    }

    fn run_inference(
        &self,
        model: &TrainedModel,
        sample: &EncodedSample,
        _mips: MipsMode<'_>,
    ) -> Measurement {
        // The GPU always evaluates the full output layer in parallel.
        let trace = forward(&model.params, sample);
        let label = trace.prediction();
        let flops = count_inference(&model.params.config, model.params.vocab_size, sample).total();
        let kernels = framework_ops(sample.sentences.len(), model.params.config.hops);
        let time_s = kernels as f64 * self.kernel_overhead_s
            + self.transfer_s
            + flops as f64 / self.effective_flops;
        Measurement {
            time_s,
            power_w: self.power_w,
            flops,
            correct: label == sample.answer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memn2n::{ModelConfig, Params};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (TrainedModel, EncodedSample) {
        let params = Params::init(
            ModelConfig {
                embed_dim: 8,
                hops: 3,
                tie_embeddings: false,
                ..ModelConfig::default()
            },
            25,
            &mut StdRng::seed_from_u64(5),
        );
        let model = TrainedModel {
            task: mann_babi::TaskId::SingleSupportingFact,
            params,
            encoder: mann_babi::Encoder::with_time_tokens(mann_babi::Vocab::new(), 0),
        };
        let sample = EncodedSample {
            sentences: vec![vec![1, 2], vec![3, 4]],
            question: vec![5],
            answer: 2,
        };
        (model, sample)
    }

    #[test]
    fn ith_has_no_timing_effect_on_gpu() {
        let (model, sample) = setup();
        let gpu = GpuModel::new();
        let base = gpu.run_inference(&model, &sample, MipsMode::Exhaustive);
        let ith = mann_ith::ThresholdingModel {
            thresholds: vec![mann_ith::threshold::ClassThreshold { theta: Some(-1e9) }; 25],
            order: (0..25).collect(),
            silhouettes: vec![0.0; 25],
            rho: 1.0,
            kernel: mann_ith::Kernel::Epanechnikov,
        };
        let with = gpu.run_inference(&model, &sample, MipsMode::Thresholded(&ith));
        assert_eq!(base.time_s, with.time_s);
        assert_eq!(base.correct, with.correct);
    }

    #[test]
    fn launch_overhead_dominates() {
        let (model, sample) = setup();
        let m = GpuModel::new().run_inference(&model, &sample, MipsMode::Exhaustive);
        let launches = framework_ops(2, 3) as f64 * GPU_KERNEL_OVERHEAD_S;
        assert!(m.time_s > launches);
        assert!(m.time_s < launches + GPU_TRANSFER_S + 1e-4);
    }

    #[test]
    fn gpu_power_exceeds_cpu_power() {
        let (gpu, cpu) = (GPU_POWER_W, crate::calibration::CPU_POWER_W);
        assert!(gpu > cpu, "{gpu} vs {cpu}");
    }
}
