//! Property tests for the WAL disk format (ISSUE 9 satellite).
//!
//! Three families, mirroring the durability contract:
//!
//! 1. record framing round-trips bit-exactly,
//! 2. arbitrary tail truncation of a sealed segment is always detected
//!    (and lenient recovery only ever yields an order-preserving prefix —
//!    records are never reordered or partially absorbed),
//! 3. replay of a segment directory is order-canonical regardless of the
//!    order the segment files were created in.

use std::fs;

use mann_store::{
    decode_segment_bytes, frame_payload, frame_record, recover_segment_bytes, replay_dir,
    seal_payload, segment_path, WalRecord,
};
use proptest::prelude::*;

/// Builds a record deterministically from one seed, covering all kinds
/// and a spread of row lengths (including empty).
fn record_from(seed: u64) -> WalRecord {
    let mix = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    match seed % 3 {
        0 => {
            let rows = (0..(mix % 9) as usize)
                .map(|i| (mix.rotate_left(i as u32 * 7) as u32) as i32)
                .collect();
            WalRecord::story(mix, (seed % 23) as u32, mix >> 13, rows)
        }
        1 => WalRecord::completion(seed, (mix % 31) as u32, mix >> 7),
        _ => WalRecord::evict(mix, (seed % 23) as u32, mix >> 11),
    }
}

/// Serializes `records` into one sealed segment's bytes.
fn sealed_segment(records: &[WalRecord]) -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut count = 0u64;
    let mut xor = 0u64;
    for r in records {
        let payload = r.to_bytes();
        xor ^= u64::from(mann_store::crc32_of(&payload));
        count += 1;
        bytes.extend_from_slice(&frame_payload(&payload));
    }
    bytes.extend_from_slice(&frame_payload(&seal_payload(count, xor)));
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Framing round-trips bit-exactly: decode(encode(r)) == r and the
    /// re-encoded bytes are identical.
    #[test]
    fn framing_round_trips_bit_exactly(seeds in proptest::collection::vec(any::<u64>(), 0..24)) {
        let records: Vec<WalRecord> = seeds.iter().map(|&s| record_from(s)).collect();
        let bytes = sealed_segment(&records);
        let read = decode_segment_bytes(&bytes, "mem", true).expect("sealed segment decodes");
        prop_assert!(read.sealed);
        prop_assert_eq!(&read.records, &records);
        // Bit-exact re-encode: the same records produce the same bytes.
        prop_assert_eq!(sealed_segment(&read.records), bytes);
        for r in &records {
            let payload = r.to_bytes();
            let back = WalRecord::from_bytes(&payload).expect("payload decodes");
            prop_assert_eq!(&back, r);
            prop_assert_eq!(back.to_bytes(), payload);
            prop_assert_eq!(frame_record(&back), frame_payload(&payload));
        }
    }

    /// Truncating a sealed segment at ANY byte — frame boundaries
    /// included — is detected by the strict reader, and lenient recovery
    /// returns an order-preserving prefix of the original records.
    #[test]
    fn tail_truncation_is_always_detected(
        seeds in proptest::collection::vec(any::<u64>(), 1..16),
        cut_pick in any::<u64>(),
    ) {
        let records: Vec<WalRecord> = seeds.iter().map(|&s| record_from(s)).collect();
        let bytes = sealed_segment(&records);
        // Any strictly-shorter prefix, including the empty one.
        let cut = (cut_pick % bytes.len() as u64) as usize;
        let truncated = &bytes[..cut];
        prop_assert!(
            decode_segment_bytes(truncated, "mem", true).is_err(),
            "truncation to {cut}/{} bytes went undetected", bytes.len()
        );
        let rec = recover_segment_bytes(truncated);
        prop_assert!(!rec.sealed);
        prop_assert!(rec.records.len() <= records.len());
        // Never reordered, never partially absorbed: recovery yields an
        // exact prefix.
        prop_assert_eq!(&rec.records[..], &records[..rec.records.len()]);
    }

    /// Replaying a directory is order-canonical: records come back in
    /// ascending segment order no matter what order the files were
    /// created in (directory iteration order must not leak through).
    #[test]
    fn shuffled_segment_directory_replays_canonically(
        seeds in proptest::collection::vec(any::<u64>(), 2..30),
        parts in 2u64..5,
        shuffle in any::<u64>(),
    ) {
        let records: Vec<WalRecord> = seeds.iter().map(|&s| record_from(s)).collect();
        let parts = parts as usize;
        let chunk = records.len().div_ceil(parts);
        let chunks: Vec<&[WalRecord]> = records.chunks(chunk).collect();

        let dir = std::env::temp_dir()
            .join(format!("mann_store_shuffle_{:x}", shuffle ^ seeds.len() as u64));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");

        // Create the segment files in a shuffled order.
        let mut order: Vec<usize> = (0..chunks.len()).collect();
        let mut state = shuffle | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        for &i in &order {
            let path = segment_path(&dir, i as u64);
            fs::write(path, sealed_segment(chunks[i])).expect("write segment");
        }

        let replay = replay_dir(&dir).expect("replay");
        prop_assert_eq!(replay.segments, chunks.len() as u64);
        prop_assert_eq!(&replay.records, &records);
        let _ = fs::remove_dir_all(&dir);
    }
}
