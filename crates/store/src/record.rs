//! The WAL record: one durable event on the story-store timeline.
//!
//! A record is a flat struct with a `kind` discriminant rather than an
//! enum so it can derive the workspace serde pair (the offline derive
//! handles named-field structs only) and travel inside `ServeOutcome`.
//! The binary codec is hand-written little-endian: the WAL is a disk
//! format with a CRC over every frame, so its byte layout must be exact
//! and independent of any JSON detail.

use serde::{Deserialize, Serialize};

/// A story was admitted into an accelerator's residency (a `write_story`
/// in paper terms: CONTROL + INPUT&WRITE phases streamed the quantized
/// rows into the address/content memories).
pub const KIND_STORY: u8 = 0;
/// A request completed with a final (post-numeric-policy) answer.
pub const KIND_COMPLETION: u8 = 1;
/// A story was evicted from an accelerator's residency (LRU displacement).
pub const KIND_EVICT: u8 = 2;

/// One durable event. Which fields are meaningful depends on `kind`:
///
/// | field      | story            | completion     | evict           |
/// |------------|------------------|----------------|-----------------|
/// | `digest`   | story digest     | 0              | story digest    |
/// | `task`     | task index       | 0              | task index      |
/// | `id`       | 0                | request id     | 0               |
/// | `answer`   | 0                | answer index   | 0               |
/// | `stamp_ps` | dispatch time    | drain-end time | dispatch time   |
/// | `resident` | 0 (1 implied)    | 0              | 0               |
/// | `rows`     | quantized Q16.16 | empty          | empty           |
///
/// `resident` is nonzero only in snapshot story records, where it carries
/// the story's residency count across all instances (a story can be live
/// on several accelerators at once; replay must restore the exact count).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalRecord {
    /// Discriminant: [`KIND_STORY`], [`KIND_COMPLETION`] or [`KIND_EVICT`].
    pub kind: u8,
    /// Story digest (story/evict records).
    pub digest: u64,
    /// Task index the story belongs to (story/evict records).
    pub task: u32,
    /// Request id (completion records).
    pub id: u64,
    /// Final answer index (completion records).
    pub answer: u32,
    /// Simulated-time stamp in integer picoseconds.
    pub stamp_ps: u64,
    /// Residency count, used only by snapshot story records (0 in the WAL).
    pub resident: u32,
    /// Quantized Q16.16 memory rows (story records only).
    pub rows: Vec<i32>,
}

impl WalRecord {
    /// A story-write record.
    #[must_use]
    pub fn story(digest: u64, task: u32, stamp_ps: u64, rows: Vec<i32>) -> Self {
        Self {
            kind: KIND_STORY,
            digest,
            task,
            id: 0,
            answer: 0,
            stamp_ps,
            resident: 0,
            rows,
        }
    }

    /// A completion record.
    #[must_use]
    pub fn completion(id: u64, answer: u32, stamp_ps: u64) -> Self {
        Self {
            kind: KIND_COMPLETION,
            digest: 0,
            task: 0,
            id,
            answer,
            stamp_ps,
            resident: 0,
            rows: Vec::new(),
        }
    }

    /// An eviction record.
    #[must_use]
    pub fn evict(digest: u64, task: u32, stamp_ps: u64) -> Self {
        Self {
            kind: KIND_EVICT,
            digest,
            task,
            id: 0,
            answer: 0,
            stamp_ps,
            resident: 0,
            rows: Vec::new(),
        }
    }

    /// Serializes to the little-endian on-disk payload (no frame header).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(41 + 4 * self.rows.len());
        out.push(self.kind);
        out.extend_from_slice(&self.digest.to_le_bytes());
        out.extend_from_slice(&self.task.to_le_bytes());
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.answer.to_le_bytes());
        out.extend_from_slice(&self.stamp_ps.to_le_bytes());
        out.extend_from_slice(&self.resident.to_le_bytes());
        let rows_len = u32::try_from(self.rows.len()).expect("row count fits u32");
        out.extend_from_slice(&rows_len.to_le_bytes());
        for row in &self.rows {
            out.extend_from_slice(&row.to_le_bytes());
        }
        out
    }

    /// Parses a payload produced by [`WalRecord::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem (short buffer,
    /// unknown kind, trailing bytes, row-count mismatch).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        const HEADER: usize = 41;
        if bytes.len() < HEADER {
            return Err(format!("record payload too short: {} bytes", bytes.len()));
        }
        let kind = bytes[0];
        if kind > KIND_EVICT {
            return Err(format!("unknown record kind {kind}"));
        }
        let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let rows_len = u32_at(37) as usize;
        if bytes.len() != HEADER + 4 * rows_len {
            return Err(format!(
                "record payload length {} does not match {rows_len} rows",
                bytes.len()
            ));
        }
        let rows = bytes[HEADER..]
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        Ok(Self {
            kind,
            digest: u64_at(1),
            task: u32_at(9),
            id: u64_at(13),
            answer: u32_at(21),
            stamp_ps: u64_at(25),
            resident: u32_at(33),
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips() {
        let recs = [
            WalRecord::story(
                0xDEAD_BEEF_0BAD_F00D,
                3,
                42_000_000,
                vec![1, -2, i32::MIN, i32::MAX],
            ),
            WalRecord::completion(17, 5, 99_000),
            WalRecord::evict(0x1234, 0, 0),
        ];
        for r in recs {
            let bytes = r.to_bytes();
            let back = WalRecord::from_bytes(&bytes).expect("decode");
            assert_eq!(back, r);
            assert_eq!(back.to_bytes(), bytes, "re-encode is bit-exact");
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(WalRecord::from_bytes(&[]).is_err());
        assert!(WalRecord::from_bytes(&[9; 41]).is_err(), "unknown kind");
        let mut ok = WalRecord::story(1, 1, 1, vec![7]).to_bytes();
        ok.push(0);
        assert!(WalRecord::from_bytes(&ok).is_err(), "trailing byte");
        let short = WalRecord::story(1, 1, 1, vec![7, 8]).to_bytes();
        assert!(
            WalRecord::from_bytes(&short[..short.len() - 4]).is_err(),
            "missing row"
        );
    }
}
