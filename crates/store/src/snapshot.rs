//! Snapshots, compaction, and the replayable store state.
//!
//! A snapshot is a point-in-time image of the live story set plus every
//! completion so far, keyed by `(task, story_digest)`. It is written as a
//! `snap-<covered_seq:08>.snap` container reusing the WAL frame format:
//!
//! ```text
//! container := header-frame record-frame* seal-frame
//! header    := [0xFE] [covers_seq: u64] [stories: u64] [completions: u64]
//! ```
//!
//! where `covers_seq` is the highest *sealed* WAL segment the snapshot
//! includes. The container is written to a `.tmp` sibling, fsynced, and
//! renamed into place, so a snapshot either exists completely or not at
//! all — any damage found in one is [`StoreError::Corrupt`], never a
//! recoverable tear. Compaction ([`gc`]) then drops WAL segments fully
//! covered by the snapshot and superseded snapshots; stories with zero
//! residency (evicted from every shard) are dropped from the image at
//! snapshot time (the `wal3`-style garbage pass).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::record::{WalRecord, KIND_COMPLETION, KIND_EVICT, KIND_STORY};
use crate::wal::{
    decode_segment_bytes_raw, frame_payload, list_numbered, list_segments, KIND_SNAP_HEADER,
};
use crate::StoreError;

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        source,
    }
}

/// The path of the snapshot covering WAL segment `seq` under `dir`.
#[must_use]
pub fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq:08}.snap"))
}

/// Lists `snap-*.snap` files under `dir`, sorted by covered sequence.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failure.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    list_numbered(dir, "snap-", ".snap")
}

/// A point-in-time image of the store.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotState {
    /// Highest sealed WAL segment included in this image.
    pub covers_seq: u64,
    /// Live stories (one record per `(task, digest)`, `resident` count set),
    /// sorted by `(task, digest)`.
    pub stories: Vec<WalRecord>,
    /// Completions so far, sorted by request id.
    pub completions: Vec<WalRecord>,
}

impl SnapshotState {
    /// Records carried by this image.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        (self.stories.len() + self.completions.len()) as u64
    }
}

fn header_payload(state: &SnapshotState) -> Vec<u8> {
    let mut out = Vec::with_capacity(25);
    out.push(KIND_SNAP_HEADER);
    out.extend_from_slice(&state.covers_seq.to_le_bytes());
    out.extend_from_slice(&(state.stories.len() as u64).to_le_bytes());
    out.extend_from_slice(&(state.completions.len() as u64).to_le_bytes());
    out
}

fn parse_header(payload: &[u8]) -> Result<(u64, u64, u64), String> {
    if payload.len() != 25 || payload[0] != KIND_SNAP_HEADER {
        return Err(format!("bad snapshot header ({} bytes)", payload.len()));
    }
    let u64_at = |at: usize| u64::from_le_bytes(payload[at..at + 8].try_into().expect("8 bytes"));
    Ok((u64_at(1), u64_at(9), u64_at(17)))
}

/// Writes `state` atomically (tmp + fsync + rename), returning the bytes
/// written.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failure.
pub fn write_snapshot(dir: &Path, state: &SnapshotState) -> Result<u64, StoreError> {
    fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let mut bytes = Vec::new();
    let mut count = 0u64;
    let mut xor = 0u64;
    for payload in std::iter::once(header_payload(state)).chain(
        state
            .stories
            .iter()
            .chain(&state.completions)
            .map(WalRecord::to_bytes),
    ) {
        let frame = frame_payload(&payload);
        xor ^= u64::from(crate::crc32::crc32(&payload));
        count += 1;
        bytes.extend_from_slice(&frame);
    }
    bytes.extend_from_slice(&frame_payload(&crate::wal::seal_payload(count, xor)));

    let path = snapshot_path(dir, state.covers_seq);
    let tmp = path.with_extension("snap.tmp");
    fs::write(&tmp, &bytes).map_err(|e| io_err(&tmp, e))?;
    let file = fs::File::open(&tmp).map_err(|e| io_err(&tmp, e))?;
    file.sync_all().map_err(|e| io_err(&tmp, e))?;
    fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
    Ok(bytes.len() as u64)
}

/// Loads the newest snapshot under `dir`, if any. Snapshots are installed
/// atomically, so any structural damage is [`StoreError::Corrupt`].
///
/// # Errors
///
/// [`StoreError::Corrupt`] on damage, [`StoreError::Io`] on filesystem
/// failure.
pub fn load_latest(dir: &Path) -> Result<Option<SnapshotState>, StoreError> {
    let Some((seq, path)) = list_snapshots(dir)?.into_iter().next_back() else {
        return Ok(None);
    };
    let label = path.display().to_string();
    let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
    let corrupt = |reason: String| StoreError::Corrupt {
        path: label.clone(),
        offset: 0,
        reason,
    };
    // A snapshot must be fully sealed; torn-tail shapes inside one are
    // corruption (rename is atomic, so partial images never get a name).
    let frames = decode_segment_bytes_raw(&bytes, &label).map_err(|e| match e {
        StoreError::TornTail {
            path,
            offset,
            reason,
        } => StoreError::Corrupt {
            path,
            offset,
            reason,
        },
        other => other,
    })?;
    let mut iter = frames.into_iter();
    let header = iter
        .next()
        .ok_or_else(|| corrupt("empty snapshot".to_string()))?;
    let (covers_seq, n_stories, n_completions) = parse_header(&header).map_err(corrupt)?;
    if covers_seq != seq {
        return Err(corrupt(format!(
            "snapshot file named for segment {seq} but covers {covers_seq}"
        )));
    }
    let mut records = Vec::new();
    for payload in iter {
        records.push(WalRecord::from_bytes(&payload).map_err(corrupt)?);
    }
    let (n_stories, n_completions) = (n_stories as usize, n_completions as usize);
    if records.len() != n_stories + n_completions {
        return Err(corrupt(format!(
            "snapshot header promises {n_stories}+{n_completions} records, found {}",
            records.len()
        )));
    }
    let completions = records.split_off(n_stories);
    Ok(Some(SnapshotState {
        covers_seq,
        stories: records,
        completions,
    }))
}

/// Compaction counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GcStats {
    /// WAL segments deleted (fully covered by the snapshot).
    pub segments: u64,
    /// Superseded snapshot files deleted.
    pub snapshots: u64,
    /// Bytes reclaimed.
    pub bytes: u64,
}

/// Garbage-collects everything a snapshot covering `covers_seq` makes
/// redundant: WAL segments with sequence ≤ `covers_seq`, older snapshots,
/// and stray `.tmp` files from interrupted snapshot writes.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failure.
pub fn gc(dir: &Path, covers_seq: u64) -> Result<GcStats, StoreError> {
    let mut stats = GcStats::default();
    for (seq, path) in list_segments(dir)? {
        if seq <= covers_seq {
            stats.bytes += fs::metadata(&path).map_err(|e| io_err(&path, e))?.len();
            fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
            stats.segments += 1;
        }
    }
    for (seq, path) in list_snapshots(dir)? {
        if seq < covers_seq {
            stats.bytes += fs::metadata(&path).map_err(|e| io_err(&path, e))?.len();
            fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
            stats.snapshots += 1;
        }
    }
    if dir.exists() {
        for entry in fs::read_dir(dir).map_err(|e| io_err(dir, e))? {
            let entry = entry.map_err(|e| io_err(dir, e))?;
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
            }
        }
    }
    Ok(stats)
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct StorySlot {
    /// Net residency across all instances (writes minus evictions).
    resident: i64,
    /// The latest write record (with `resident` normalised to 0).
    last: WalRecord,
}

/// The replayable store state: a deterministic fold over [`WalRecord`]s.
///
/// Both the journaling side (to decide what a snapshot keeps) and the
/// recovery side (to verify a replayed directory against a reference
/// fold) use this; equality of two folds is the recovery integrity check.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreState {
    stories: BTreeMap<(u32, u64), StorySlot>,
    completions: BTreeMap<u64, WalRecord>,
}

impl StoreState {
    /// Applies one record.
    pub fn apply(&mut self, rec: &WalRecord) {
        match rec.kind {
            KIND_STORY => {
                let add = if rec.resident == 0 {
                    1
                } else {
                    i64::from(rec.resident)
                };
                let mut last = rec.clone();
                last.resident = 0;
                let slot = self
                    .stories
                    .entry((rec.task, rec.digest))
                    .or_insert_with(|| StorySlot {
                        resident: 0,
                        last: last.clone(),
                    });
                slot.resident += add;
                slot.last = last;
            }
            KIND_EVICT => {
                let mut ghost = rec.clone();
                ghost.resident = 0;
                let slot = self
                    .stories
                    .entry((rec.task, rec.digest))
                    .or_insert_with(|| StorySlot {
                        resident: 0,
                        last: ghost,
                    });
                slot.resident -= 1;
            }
            KIND_COMPLETION => {
                self.completions.insert(rec.id, rec.clone());
            }
            _ => unreachable!("decoded records always have a known kind"),
        }
    }

    /// Folds a snapshot image plus subsequent records.
    #[must_use]
    pub fn from_replay<'a>(
        snapshot: Option<&SnapshotState>,
        records: impl IntoIterator<Item = &'a WalRecord>,
    ) -> Self {
        let mut state = Self::default();
        if let Some(snap) = snapshot {
            for r in snap.stories.iter().chain(&snap.completions) {
                state.apply(r);
            }
        }
        for r in records {
            state.apply(r);
        }
        state
    }

    /// Number of stories with positive residency.
    #[must_use]
    pub fn live_stories(&self) -> usize {
        self.stories.values().filter(|s| s.resident > 0).count()
    }

    /// Completions recorded so far, in request-id order.
    pub fn completions(&self) -> impl Iterator<Item = &WalRecord> {
        self.completions.values()
    }

    /// Number of completions recorded.
    #[must_use]
    pub fn completion_count(&self) -> usize {
        self.completions.len()
    }

    /// Drops stories with zero (or negative) net residency, returning how
    /// many were dropped. Used both when cutting a snapshot and to bring a
    /// reference fold to the same collapsed form as a replayed one.
    pub fn collapse(&mut self) -> u64 {
        let before = self.stories.len();
        self.stories.retain(|_, slot| slot.resident > 0);
        (before - self.stories.len()) as u64
    }

    /// Cuts a snapshot image covering sealed segment `covers_seq`,
    /// dropping dead stories from the state. Returns the image and the
    /// number of dead stories garbage-collected out of it.
    pub fn to_snapshot(&mut self, covers_seq: u64) -> (SnapshotState, u64) {
        let dropped = self.collapse();
        let stories = self
            .stories
            .values()
            .map(|slot| {
                let mut rec = slot.last.clone();
                rec.resident = u32::try_from(slot.resident).expect("collapsed residency > 0");
                rec
            })
            .collect();
        let completions = self.completions.values().cloned().collect();
        (
            SnapshotState {
                covers_seq,
                stories,
                completions,
            },
            dropped,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{recover_dir, replay_dir, WalWriter};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mann_store_snap_{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn snapshot_round_trips_and_gc_drops_covered_segments() {
        let dir = tmp("round_trip");
        let mut w = WalWriter::open(&dir, 4).expect("open");
        let mut state = StoreState::default();
        let recs = vec![
            WalRecord::story(11, 0, 100, vec![1, 2]),
            WalRecord::story(22, 1, 200, vec![3]),
            WalRecord::completion(1, 4, 250),
            WalRecord::evict(11, 0, 300),
        ];
        for r in &recs {
            w.append(r).expect("append");
            state.apply(r);
        }
        let sealed = w.rotate().expect("rotate");
        let (snap, dropped) = state.to_snapshot(sealed);
        assert_eq!(dropped, 1, "story 11 was evicted everywhere");
        assert_eq!(snap.stories.len(), 1);
        assert_eq!(snap.completions.len(), 1);
        write_snapshot(&dir, &snap).expect("write snapshot");
        let gc_stats = gc(&dir, sealed).expect("gc");
        assert_eq!(gc_stats.segments, 1);

        // Post-snapshot records land in the new segment.
        let tail = WalRecord::story(33, 0, 400, vec![9]);
        w.append(&tail).expect("append");
        w.finish().expect("finish");

        let replay = replay_dir(&dir).expect("replay");
        let loaded = replay.snapshot.as_ref().expect("snapshot present");
        assert_eq!(loaded, &snap);
        assert_eq!(replay.records, vec![tail.clone()]);
        assert_eq!(replay.replayed_records, 3);

        // The replayed fold matches the reference fold, collapsed.
        let recovered = StoreState::from_replay(replay.snapshot.as_ref(), &replay.records);
        let mut reference = StoreState::default();
        for r in recs.iter().chain(std::iter::once(&tail)) {
            reference.apply(r);
        }
        reference.collapse();
        let mut recovered = recovered;
        recovered.collapse();
        assert_eq!(recovered, reference);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_preserves_multi_instance_residency() {
        let mut state = StoreState::default();
        // The same story resident on two instances.
        state.apply(&WalRecord::story(7, 2, 10, vec![5]));
        state.apply(&WalRecord::story(7, 2, 20, vec![5]));
        let (snap, _) = state.clone().to_snapshot(0);
        assert_eq!(snap.stories[0].resident, 2);
        let mut replayed = StoreState::from_replay(Some(&snap), []);
        // One eviction leaves it live; a second kills it.
        replayed.apply(&WalRecord::evict(7, 2, 30));
        assert_eq!(replayed.live_stories(), 1);
        replayed.apply(&WalRecord::evict(7, 2, 40));
        assert_eq!(replayed.live_stories(), 0);
    }

    #[test]
    fn corrupt_snapshot_is_fatal_for_recovery_too() {
        let dir = tmp("corrupt");
        let mut state = StoreState::default();
        state.apply(&WalRecord::story(1, 0, 5, vec![1]));
        let (snap, _) = state.to_snapshot(0);
        write_snapshot(&dir, &snap).expect("write");
        let path = snapshot_path(&dir, 0);
        let mut bytes = fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).expect("rewrite");
        assert!(matches!(load_latest(&dir), Err(StoreError::Corrupt { .. })));
        assert!(
            recover_dir(&dir).is_err(),
            "snapshot damage is never truncatable"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
