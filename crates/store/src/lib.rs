//! Durable story store for the MANN serving layer.
//!
//! The source paper splits story *write* (CONTROL + INPUT&WRITE phases)
//! from story *query*, which makes the write path a natural journaling
//! boundary: this crate persists every story admission, eviction, and
//! request completion as a checksummed, length-framed record in a
//! segmented write-ahead log, compacts the log with atomic snapshots of
//! the live story set, and recovers deterministically after a crash.
//!
//! The crate is deliberately *mechanism only*: it knows nothing about
//! servers, clusters, or simulated time beyond the picosecond stamps it
//! stores. The serving layer (`mann-serve`) decides what to journal,
//! when to snapshot, and how to charge fsync latency to its host-side
//! cost model; this crate guarantees the bytes on disk are either valid
//! or loudly detected as damaged.
//!
//! - [`wal`] — frame format, [`wal::WalWriter`], strict [`wal::replay_dir`]
//!   and lenient [`wal::recover_dir`].
//! - [`snapshot`] — snapshot containers, compaction ([`snapshot::gc`]),
//!   and the replayable [`snapshot::StoreState`] fold.
//! - [`crc32`] — the IEEE CRC-32 every frame is protected by.

pub mod crc32;
pub mod record;
pub mod snapshot;
pub mod wal;

pub use crc32::crc32 as crc32_of;
pub use record::{WalRecord, KIND_COMPLETION, KIND_EVICT, KIND_STORY};
pub use snapshot::{
    gc, list_snapshots, load_latest, snapshot_path, write_snapshot, GcStats, SnapshotState,
    StoreState,
};
pub use wal::{
    decode_segment_bytes, frame_payload, frame_record, list_segments, recover_dir,
    recover_segment_bytes, replay_dir, seal_payload, segment_path, Recovery, Replay, SegmentRead,
    SegmentRecovery, WalStats, WalWriter, FRAME_HEADER, KIND_SEAL, MAX_FRAME,
};

/// Typed failures from every store I/O path — nothing in this crate
/// `unwrap`s a file operation.
#[derive(Debug, thiserror::Error)]
pub enum StoreError {
    /// Filesystem failure, with the path that failed.
    #[error("store io error at {path}: {source}")]
    Io {
        /// The file or directory involved.
        path: String,
        /// The underlying failure.
        source: std::io::Error,
    },
    /// Tail-truncation-shaped damage: the file ends mid-frame, with a
    /// checksum-failed final frame, or without its seal. A strict open
    /// refuses this; crash recovery truncates it (final segment only).
    #[error("torn WAL tail in {path} at byte {offset}: {reason}")]
    TornTail {
        /// The damaged file.
        path: String,
        /// Byte offset of the first bad frame.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// Damage that is not a recoverable tail: mid-file corruption, seal
    /// mismatches, or a damaged snapshot. Never silently absorbed.
    #[error("corrupt store file {path} at byte {offset}: {reason}")]
    Corrupt {
        /// The damaged file.
        path: String,
        /// Byte offset of the damage.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// Recovery produced a state that contradicts the journal.
    #[error("store recovery failed: {0}")]
    Recovery(String),
    /// Invalid durability configuration.
    #[error("invalid store configuration: {0}")]
    Config(String),
}
