//! Segmented write-ahead log: framing, append path, and the two readers.
//!
//! ## On-disk format
//!
//! A WAL directory holds numbered segments `wal-<seq:08>.log`. A segment
//! is a sequence of *frames*:
//!
//! ```text
//! frame    := [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! payload  := record | seal
//! record   := WalRecord::to_bytes()           (payload[0] in 0..=2)
//! seal     := [0xFF] [count: u64 LE] [xor: u64 LE]
//! ```
//!
//! `crc` is CRC-32 over the payload. Every *sealed* segment ends with a
//! seal frame carrying the number of preceding frames and the XOR of
//! their CRCs, so truncating a sealed segment anywhere — even exactly on
//! a frame boundary — is always detected. Only the last (active) segment
//! of a directory may be unsealed: there, a partial frame is a torn tail
//! (hard error on strict open), while a clean frame boundary is the
//! legitimate loss horizon of an un-fsynced suffix.
//!
//! ## Readers
//!
//! [`replay_dir`] is the strict open used by a healthy restart: any torn
//! tail or mid-file corruption is a typed hard error. [`recover_dir`] is
//! the crash-recovery open: it truncates a torn tail of the *final*
//! segment back to the last valid frame boundary (damage in earlier,
//! sealed segments is never repairable and stays fatal). Both return
//! records in canonical order — ascending segment sequence number, then
//! file order — independent of directory iteration order.

use std::fs;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::crc32::crc32;
use crate::record::{WalRecord, KIND_EVICT};
use crate::snapshot::{self, SnapshotState};
use crate::StoreError;

/// Payload tag of a seal frame.
pub const KIND_SEAL: u8 = 0xFF;
/// Payload tag of a snapshot header frame (used by `.snap` containers).
pub const KIND_SNAP_HEADER: u8 = 0xFE;
/// Bytes of `[len][crc]` before each payload.
pub const FRAME_HEADER: usize = 8;
/// Sanity cap on a single frame payload (16 MiB).
pub const MAX_FRAME: u32 = 1 << 24;

/// Wraps `payload` in a `[len][crc]` frame.
#[must_use]
pub fn frame_payload(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("payload fits u32");
    assert!(len <= MAX_FRAME, "payload exceeds MAX_FRAME");
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Frames one record.
#[must_use]
pub fn frame_record(rec: &WalRecord) -> Vec<u8> {
    frame_payload(&rec.to_bytes())
}

/// The seal payload for a segment with `count` frames whose CRCs XOR to `xor`.
#[must_use]
pub fn seal_payload(count: u64, xor: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(17);
    out.push(KIND_SEAL);
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&xor.to_le_bytes());
    out
}

/// A frame-level failure with torn-tail vs. corruption classification.
enum FrameError {
    /// Tail-truncation-shaped damage: the file ends mid-frame.
    Torn { offset: u64, reason: String },
    /// Damage with intact bytes after it (or an impossible header).
    Corrupt { offset: u64, reason: String },
}

impl FrameError {
    fn into_store(self, path: &str) -> StoreError {
        match self {
            Self::Torn { offset, reason } => StoreError::TornTail {
                path: path.to_string(),
                offset,
                reason,
            },
            Self::Corrupt { offset, reason } => StoreError::Corrupt {
                path: path.to_string(),
                offset,
                reason,
            },
        }
    }
}

/// A decoded frame: `(crc, payload, next_pos)`.
type Frame<'a> = (u32, &'a [u8], usize);

/// Decodes the frame starting at `pos`, returning `(crc, payload, next_pos)`
/// or `None` at a clean end-of-buffer.
fn next_frame(bytes: &[u8], pos: usize) -> Result<Option<Frame<'_>>, FrameError> {
    let remaining = bytes.len() - pos;
    if remaining == 0 {
        return Ok(None);
    }
    let offset = pos as u64;
    if remaining < FRAME_HEADER {
        return Err(FrameError::Torn {
            offset,
            reason: format!("partial frame header ({remaining} bytes)"),
        });
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
    if len > remaining - FRAME_HEADER {
        return Err(FrameError::Torn {
            offset,
            reason: format!("frame length {len} overruns the file"),
        });
    }
    if len > MAX_FRAME as usize {
        return Err(FrameError::Corrupt {
            offset,
            reason: format!("oversized frame length {len}"),
        });
    }
    let body = pos + FRAME_HEADER;
    let payload = &bytes[body..body + len];
    if crc32(payload) != crc {
        let reason = "frame checksum mismatch".to_string();
        return Err(if body + len == bytes.len() {
            FrameError::Torn {
                offset,
                reason: format!("{reason} in tail frame"),
            }
        } else {
            FrameError::Corrupt { offset, reason }
        });
    }
    Ok(Some((crc, payload, body + len)))
}

/// A strictly decoded segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentRead {
    /// Records in file order (the seal frame is consumed, not returned).
    pub records: Vec<WalRecord>,
    /// Whether the segment ended with a valid seal frame.
    pub sealed: bool,
}

/// Strictly decodes one segment's bytes.
///
/// # Errors
///
/// [`StoreError::TornTail`] for tail-truncation-shaped damage (partial
/// frame, checksum-failed final frame, or a missing seal when
/// `require_seal` is set); [`StoreError::Corrupt`] for mid-file damage,
/// seal mismatches, bytes after the seal, or undecodable record payloads.
pub fn decode_segment_bytes(
    bytes: &[u8],
    label: &str,
    require_seal: bool,
) -> Result<SegmentRead, StoreError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut count = 0u64;
    let mut xor = 0u64;
    let mut sealed = false;
    while let Some((crc, payload, next)) =
        next_frame(bytes, pos).map_err(|e| e.into_store(label))?
    {
        if sealed {
            return Err(StoreError::Corrupt {
                path: label.to_string(),
                offset: pos as u64,
                reason: "data after seal frame".to_string(),
            });
        }
        match payload.first() {
            Some(&KIND_SEAL) => {
                let (seal_count, seal_xor) =
                    parse_seal(payload).map_err(|reason| StoreError::Corrupt {
                        path: label.to_string(),
                        offset: pos as u64,
                        reason,
                    })?;
                if seal_count != count || seal_xor != xor {
                    return Err(StoreError::Corrupt {
                        path: label.to_string(),
                        offset: pos as u64,
                        reason: format!(
                            "seal mismatch: seal says {seal_count} frames (xor {seal_xor:#x}), segment has {count} (xor {xor:#x})"
                        ),
                    });
                }
                sealed = true;
            }
            Some(&k) if k <= KIND_EVICT => {
                let rec = WalRecord::from_bytes(payload).map_err(|reason| StoreError::Corrupt {
                    path: label.to_string(),
                    offset: pos as u64,
                    reason,
                })?;
                records.push(rec);
                count += 1;
                xor ^= u64::from(crc);
            }
            other => {
                return Err(StoreError::Corrupt {
                    path: label.to_string(),
                    offset: pos as u64,
                    reason: format!("unexpected frame tag {other:?}"),
                });
            }
        }
        pos = next;
    }
    if require_seal && !sealed {
        return Err(StoreError::TornTail {
            path: label.to_string(),
            offset: bytes.len() as u64,
            reason: "missing seal frame".to_string(),
        });
    }
    Ok(SegmentRead { records, sealed })
}

/// Decodes a fully sealed container into its raw frame payloads (seal
/// consumed, not returned). The snapshot loader uses this: snapshot
/// containers hold a header frame the record decoder would reject.
pub(crate) fn decode_segment_bytes_raw(
    bytes: &[u8],
    label: &str,
) -> Result<Vec<Vec<u8>>, StoreError> {
    let mut payloads: Vec<Vec<u8>> = Vec::new();
    let mut pos = 0usize;
    let mut count = 0u64;
    let mut xor = 0u64;
    let mut sealed = false;
    while let Some((crc, payload, next)) =
        next_frame(bytes, pos).map_err(|e| e.into_store(label))?
    {
        if sealed {
            return Err(StoreError::Corrupt {
                path: label.to_string(),
                offset: pos as u64,
                reason: "data after seal frame".to_string(),
            });
        }
        if payload.first() == Some(&KIND_SEAL) {
            let (seal_count, seal_xor) =
                parse_seal(payload).map_err(|reason| StoreError::Corrupt {
                    path: label.to_string(),
                    offset: pos as u64,
                    reason,
                })?;
            if seal_count != count || seal_xor != xor {
                return Err(StoreError::Corrupt {
                    path: label.to_string(),
                    offset: pos as u64,
                    reason: format!(
                        "seal mismatch: seal says {seal_count} frames (xor {seal_xor:#x}), container has {count} (xor {xor:#x})"
                    ),
                });
            }
            sealed = true;
        } else {
            payloads.push(payload.to_vec());
            count += 1;
            xor ^= u64::from(crc);
        }
        pos = next;
    }
    if !sealed {
        return Err(StoreError::TornTail {
            path: label.to_string(),
            offset: bytes.len() as u64,
            reason: "missing seal frame".to_string(),
        });
    }
    Ok(payloads)
}

fn parse_seal(payload: &[u8]) -> Result<(u64, u64), String> {
    if payload.len() != 17 {
        return Err(format!(
            "seal frame has {} bytes, expected 17",
            payload.len()
        ));
    }
    let count = u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
    let xor = u64::from_le_bytes(payload[9..17].try_into().expect("8 bytes"));
    Ok((count, xor))
}

/// A leniently recovered segment: the longest valid frame prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentRecovery {
    /// Records decoded before the first damage (seal consumed, not returned).
    pub records: Vec<WalRecord>,
    /// Whether a valid seal was reached (then nothing was dropped).
    pub sealed: bool,
    /// Bytes truncated from the tail (0 for a clean segment).
    pub dropped_bytes: u64,
}

/// Recovers the longest valid prefix of one segment's bytes. Everything
/// from the first invalid frame onwards is dropped — after a tear the
/// remainder of the file is untrustworthy.
#[must_use]
pub fn recover_segment_bytes(bytes: &[u8]) -> SegmentRecovery {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut count = 0u64;
    let mut xor = 0u64;
    loop {
        let (crc, payload, next) = match next_frame(bytes, pos) {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            Err(_) => {
                return SegmentRecovery {
                    records,
                    sealed: false,
                    dropped_bytes: (bytes.len() - pos) as u64,
                }
            }
        };
        match payload.first() {
            Some(&KIND_SEAL) if parse_seal(payload) == Ok((count, xor)) => {
                // A valid seal; anything after it is dropped.
                return SegmentRecovery {
                    records,
                    sealed: true,
                    dropped_bytes: (bytes.len() - next) as u64,
                };
            }
            Some(&k) if k <= KIND_EVICT => match WalRecord::from_bytes(payload) {
                Ok(rec) => {
                    records.push(rec);
                    count += 1;
                    xor ^= u64::from(crc);
                }
                Err(_) => {
                    return SegmentRecovery {
                        records,
                        sealed: false,
                        dropped_bytes: (bytes.len() - pos) as u64,
                    }
                }
            },
            _ => {
                return SegmentRecovery {
                    records,
                    sealed: false,
                    dropped_bytes: (bytes.len() - pos) as u64,
                }
            }
        }
        pos = next;
    }
    SegmentRecovery {
        records,
        sealed: false,
        dropped_bytes: 0,
    }
}

/// Append-path counters, charged to the host-side cost model by the
/// serving layer (`fsyncs × fsync_us`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub records: u64,
    /// Frame bytes appended (records and seals, not torn garbage).
    pub bytes: u64,
    /// fsync calls issued (batched: one per `fsync_batch` appends + seals).
    pub fsyncs: u64,
    /// Segments opened by this writer.
    pub segments: u64,
}

/// The append handle for one WAL directory.
///
/// Appends are checksummed and length-framed; an fsync is issued every
/// `fsync_batch` records and at every seal. [`WalWriter::rotate`] seals
/// the active segment and opens the next one (the snapshot/GC hook);
/// [`WalWriter::finish`] seals and returns the final [`WalStats`].
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    file: File,
    path: PathBuf,
    seq: u64,
    fsync_batch: usize,
    since_sync: usize,
    seg_count: u64,
    seg_xor: u64,
    stats: WalStats,
}

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        source,
    }
}

/// The path of segment `seq` under `dir`.
#[must_use]
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.log"))
}

impl WalWriter {
    /// Opens a writer on `dir` (created if missing), starting a *fresh*
    /// segment after the highest existing sequence number — a writer never
    /// appends to a pre-existing (possibly recovered) segment.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn open(dir: impl Into<PathBuf>, fsync_batch: usize) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let seq = match list_segments(&dir)?.last() {
            Some((last, _)) => last + 1,
            None => 0,
        };
        let path = segment_path(&dir, seq);
        let file = File::create(&path).map_err(|e| io_err(&path, e))?;
        Ok(Self {
            dir,
            file,
            path,
            seq,
            fsync_batch: fsync_batch.max(1),
            since_sync: 0,
            seg_count: 0,
            seg_xor: 0,
            stats: WalStats {
                segments: 1,
                ..WalStats::default()
            },
        })
    }

    /// The active segment's sequence number.
    #[must_use]
    pub fn current_seq(&self) -> u64 {
        self.seq
    }

    /// Counters so far (the final seal is only counted by `finish`).
    #[must_use]
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.file
            .write_all(bytes)
            .map_err(|e| io_err(&self.path, e))
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        if self.since_sync == 0 {
            return Ok(());
        }
        self.file.sync_all().map_err(|e| io_err(&self.path, e))?;
        self.stats.fsyncs += 1;
        self.since_sync = 0;
        Ok(())
    }

    /// Appends one record frame, fsyncing when the batch fills.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), StoreError> {
        let payload = rec.to_bytes();
        let crc = crc32(&payload);
        let frame = frame_payload(&payload);
        self.write_bytes(&frame)?;
        self.seg_count += 1;
        self.seg_xor ^= u64::from(crc);
        self.stats.records += 1;
        self.stats.bytes += frame.len() as u64;
        self.since_sync += 1;
        if self.since_sync >= self.fsync_batch {
            self.sync()?;
        }
        Ok(())
    }

    fn seal_active(&mut self) -> Result<(), StoreError> {
        let frame = frame_payload(&seal_payload(self.seg_count, self.seg_xor));
        self.write_bytes(&frame)?;
        self.stats.bytes += frame.len() as u64;
        self.since_sync += 1;
        self.sync()
    }

    /// Seals the active segment and opens the next one, returning the
    /// sealed segment's sequence number (the compaction cover point).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn rotate(&mut self) -> Result<u64, StoreError> {
        self.seal_active()?;
        let sealed = self.seq;
        self.seq += 1;
        self.path = segment_path(&self.dir, self.seq);
        self.file = File::create(&self.path).map_err(|e| io_err(&self.path, e))?;
        self.seg_count = 0;
        self.seg_xor = 0;
        self.stats.segments += 1;
        Ok(sealed)
    }

    /// Seals the active segment, fsyncs, and returns the final counters.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn finish(mut self) -> Result<WalStats, StoreError> {
        self.seal_active()?;
        Ok(self.stats)
    }

    /// Crash simulation: writes `garbage` raw (no frame, no seal, no
    /// fsync accounting) and drops the writer, leaving exactly the torn
    /// tail a mid-append process death would leave.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn abandon_torn(mut self, garbage: &[u8]) -> Result<WalStats, StoreError> {
        self.write_bytes(garbage)?;
        self.file.flush().map_err(|e| io_err(&self.path, e))?;
        Ok(self.stats)
    }
}

/// Lists `wal-*.log` segments under `dir`, sorted by sequence number
/// (canonical regardless of directory iteration order). A missing
/// directory is an empty log.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failure.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    list_numbered(dir, "wal-", ".log")
}

pub(crate) fn list_numbered(
    dir: &Path,
    prefix: &str,
    suffix: &str,
) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let entries = fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix(prefix)
            .and_then(|s| s.strip_suffix(suffix))
        else {
            continue;
        };
        if stem.is_empty() || !stem.bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        let Ok(seq) = stem.parse::<u64>() else {
            continue;
        };
        out.push((seq, entry.path()));
    }
    out.sort_by_key(|&(seq, _)| seq);
    Ok(out)
}

fn read_file(path: &Path) -> Result<Vec<u8>, StoreError> {
    fs::read(path).map_err(|e| io_err(path, e))
}

/// A strict directory replay: snapshot plus every post-snapshot record.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// The latest snapshot, if any.
    pub snapshot: Option<SnapshotState>,
    /// WAL records newer than the snapshot, in canonical order.
    pub records: Vec<WalRecord>,
    /// WAL segments read.
    pub segments: u64,
    /// Snapshot records plus WAL records replayed.
    pub replayed_records: u64,
}

/// Strictly replays a WAL directory: loads the newest snapshot, then every
/// segment it does not cover. All non-final segments must be sealed; a
/// torn tail anywhere is a hard error (this is the healthy-restart open).
///
/// # Errors
///
/// [`StoreError::TornTail`] / [`StoreError::Corrupt`] on damage,
/// [`StoreError::Io`] on filesystem failure.
pub fn replay_dir(dir: &Path) -> Result<Replay, StoreError> {
    let snapshot = snapshot::load_latest(dir)?;
    let min_seq = snapshot.as_ref().map(|s| s.covers_seq + 1).unwrap_or(0);
    let segs: Vec<_> = list_segments(dir)?
        .into_iter()
        .filter(|&(seq, _)| seq >= min_seq)
        .collect();
    let mut records = Vec::new();
    for (i, (_, path)) in segs.iter().enumerate() {
        let bytes = read_file(path)?;
        let require_seal = i + 1 < segs.len();
        let read = decode_segment_bytes(&bytes, &path.display().to_string(), require_seal)?;
        records.extend(read.records);
    }
    let replayed_records = records.len() as u64 + snapshot.as_ref().map_or(0, |s| s.record_count());
    Ok(Replay {
        snapshot,
        records,
        segments: segs.len() as u64,
        replayed_records,
    })
}

/// A lenient directory recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// The latest snapshot, if any.
    pub snapshot: Option<SnapshotState>,
    /// WAL records newer than the snapshot, in canonical order.
    pub records: Vec<WalRecord>,
    /// WAL segments read.
    pub segments: u64,
    /// Snapshot records plus WAL records replayed.
    pub replayed_records: u64,
    /// Bytes truncated from the final segment's torn tail.
    pub dropped_bytes: u64,
    /// Whether a torn tail was found (and truncated).
    pub torn_tail: bool,
}

/// Recovers a WAL directory after a crash: like [`replay_dir`], but a torn
/// tail on the *final* segment is truncated back to the last valid frame
/// instead of failing. Damage in sealed (non-final) segments is never
/// recoverable truncation and stays a hard error, as does snapshot damage
/// (snapshots are installed atomically via rename).
///
/// # Errors
///
/// [`StoreError::Corrupt`] / [`StoreError::TornTail`] for non-tail damage,
/// [`StoreError::Io`] on filesystem failure.
pub fn recover_dir(dir: &Path) -> Result<Recovery, StoreError> {
    let snapshot = snapshot::load_latest(dir)?;
    let min_seq = snapshot.as_ref().map(|s| s.covers_seq + 1).unwrap_or(0);
    let segs: Vec<_> = list_segments(dir)?
        .into_iter()
        .filter(|&(seq, _)| seq >= min_seq)
        .collect();
    let mut records = Vec::new();
    let mut dropped_bytes = 0u64;
    for (i, (_, path)) in segs.iter().enumerate() {
        let bytes = read_file(path)?;
        if i + 1 < segs.len() {
            let read = decode_segment_bytes(&bytes, &path.display().to_string(), true)?;
            records.extend(read.records);
        } else {
            let rec = recover_segment_bytes(&bytes);
            if rec.dropped_bytes > 0 {
                let keep = bytes.len() as u64 - rec.dropped_bytes;
                truncate_file(path, keep)?;
            }
            dropped_bytes += rec.dropped_bytes;
            records.extend(rec.records);
        }
    }
    let replayed_records = records.len() as u64 + snapshot.as_ref().map_or(0, |s| s.record_count());
    Ok(Recovery {
        snapshot,
        records,
        segments: segs.len() as u64,
        replayed_records,
        dropped_bytes,
        torn_tail: dropped_bytes > 0,
    })
}

fn truncate_file(path: &Path, keep: u64) -> Result<(), StoreError> {
    let file = fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| io_err(path, e))?;
    file.set_len(keep).map_err(|e| io_err(path, e))?;
    file.sync_all().map_err(|e| io_err(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(n: u64) -> Vec<WalRecord> {
        (0..n)
            .map(|i| match i % 3 {
                0 => WalRecord::story(
                    i * 31,
                    (i % 4) as u32,
                    i * 1000,
                    vec![i as i32, -(i as i32)],
                ),
                1 => WalRecord::completion(i, (i % 7) as u32, i * 1000 + 1),
                _ => WalRecord::evict(i * 31, (i % 4) as u32, i * 1000 + 2),
            })
            .collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mann_store_wal_{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_rotate_replay_round_trip() {
        let dir = tmp("round_trip");
        let all = recs(10);
        let mut w = WalWriter::open(&dir, 4).expect("open");
        for r in &all[..6] {
            w.append(r).expect("append");
        }
        let sealed = w.rotate().expect("rotate");
        assert_eq!(sealed, 0);
        for r in &all[6..] {
            w.append(r).expect("append");
        }
        let stats = w.finish().expect("finish");
        assert_eq!(stats.records, 10);
        assert_eq!(stats.segments, 2);
        assert!(stats.fsyncs >= 2, "at least one fsync per seal");

        let replay = replay_dir(&dir).expect("replay");
        assert_eq!(replay.records, all);
        assert_eq!(replay.segments, 2);
        assert_eq!(replay.replayed_records, 10);
        assert!(replay.snapshot.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_detected_then_recovered() {
        let dir = tmp("torn");
        let all = recs(5);
        let mut w = WalWriter::open(&dir, 2).expect("open");
        for r in &all {
            w.append(r).expect("append");
        }
        // Tear: half of the next record's frame.
        let frame = frame_record(&WalRecord::story(999, 1, 7, vec![1, 2, 3]));
        w.abandon_torn(&frame[..frame.len() / 2]).expect("abandon");

        let err = replay_dir(&dir).expect_err("strict open must fail");
        assert!(matches!(err, StoreError::TornTail { .. }), "got {err}");

        let rec = recover_dir(&dir).expect("recover");
        assert!(rec.torn_tail);
        assert_eq!(rec.records, all);
        assert!(rec.dropped_bytes > 0);
        // After truncation the strict open succeeds (unsealed active tail).
        let replay = replay_dir(&dir).expect("replay after truncate");
        assert_eq!(replay.records, all);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sealed_segment_detects_frame_boundary_truncation() {
        let dir = tmp("boundary");
        let all = recs(4);
        let mut w = WalWriter::open(&dir, 8).expect("open");
        for r in &all {
            w.append(r).expect("append");
        }
        w.rotate().expect("rotate");
        w.finish().expect("finish");
        // Drop the last record frame AND the seal from segment 0: the cut
        // lands exactly on a frame boundary, yet the strict reader still
        // notices because the seal is gone.
        let path = segment_path(&dir, 0);
        let bytes = fs::read(&path).expect("read");
        // Walk frames to find the boundary before the last record frame.
        let mut offsets = vec![0usize];
        let mut pos = 0usize;
        while pos < bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            pos += FRAME_HEADER + len;
            offsets.push(pos);
        }
        let cut = offsets[offsets.len() - 3]; // before last record + seal
        fs::write(&path, &bytes[..cut]).expect("truncate");
        let err = replay_dir(&dir).expect_err("must detect missing seal");
        assert!(
            matches!(
                err,
                StoreError::TornTail { .. } | StoreError::Corrupt { .. }
            ),
            "got {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_is_fatal_even_for_recovery() {
        let dir = tmp("midfile");
        let all = recs(6);
        let mut w = WalWriter::open(&dir, 8).expect("open");
        for r in &all[..3] {
            w.append(r).expect("append");
        }
        w.rotate().expect("rotate");
        for r in &all[3..] {
            w.append(r).expect("append");
        }
        w.finish().expect("finish");
        // Flip a byte inside the sealed segment 0.
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).expect("read");
        let mid = bytes.len() / 3;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).expect("write");
        assert!(replay_dir(&dir).is_err());
        assert!(
            recover_dir(&dir).is_err(),
            "sealed-segment damage is not recoverable"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopened_writer_starts_a_fresh_segment() {
        let dir = tmp("reopen");
        let mut w = WalWriter::open(&dir, 1).expect("open");
        w.append(&recs(1)[0]).expect("append");
        w.finish().expect("finish");
        let w2 = WalWriter::open(&dir, 1).expect("reopen");
        assert_eq!(w2.current_seq(), 1);
        drop(w2);
        let _ = fs::remove_dir_all(&dir);
    }
}
