//! IEEE CRC-32 (the Ethernet/zip polynomial, reflected form).
//!
//! The WAL frames every record with a CRC over its payload so torn writes
//! and bit rot are detected on open. The table is built in a `const fn`,
//! so the checksum has no runtime initialisation and no dependencies.

/// Reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let base = b"the quick brown fox".to_vec();
        let c0 = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), c0, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
