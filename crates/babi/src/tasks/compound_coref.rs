//! Task 13 — compound coreference.
//!
//! A conjunction sentence followed by a plural pronoun ("mary and john went
//! to the office. then they moved to the garden."); the question asks where
//! one of the pair is.

use rand::rngs::StdRng;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick, pick_distinct, LOCATIONS, MOVE_VERBS, PERSONS};
use crate::{Sample, Sentence, TaskGenerator, TaskId};

/// Generator for bAbI task 13.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompoundCoreference {
    _priv: (),
}

impl CompoundCoreference {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TaskGenerator for CompoundCoreference {
    fn id(&self) -> TaskId {
        TaskId::CompoundCoreference
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        let n_pairs = rng.gen_range(1..=2);
        let mut story: Vec<Sentence> = Vec::new();
        let mut final_state: Vec<(&str, &str, usize, &str)> = Vec::new();
        let people = pick_distinct(rng, PERSONS, 2 * n_pairs);
        for chunk in people.chunks(2) {
            let (a, b) = (chunk[0], chunk[1]);
            let first = pick(rng, LOCATIONS);
            story.push(sentence(&[
                a,
                "and",
                b,
                pick(rng, MOVE_VERBS),
                "to",
                "the",
                first,
            ]));
            let second = pick(rng, LOCATIONS);
            story.push(sentence(&[
                "then",
                "they",
                pick(rng, MOVE_VERBS),
                "to",
                "the",
                second,
            ]));
            final_state.push((a, b, story.len() - 1, second));
        }
        let (a, b, idx, answer) = final_state[rng.gen_range(0..final_state.len())];
        let subject = if rng.gen_bool(0.5) { a } else { b };
        Sample::new(
            self.id(),
            story,
            sentence(&["where", "is", subject]),
            answer,
            vec![idx - 1, idx],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn oracle(s: &Sample) -> String {
        let subject = s.question.last().expect("subject").clone();
        let mut group: Vec<String> = Vec::new();
        let mut loc = String::new();
        for sent in &s.story {
            if sent[0] == "then" {
                if group.contains(&subject) {
                    loc = sent.last().expect("loc").clone();
                }
            } else {
                group = vec![sent[0].clone(), sent[2].clone()];
                if group.contains(&subject) {
                    loc = sent.last().expect("loc").clone();
                }
            }
        }
        loc
    }

    #[test]
    fn answers_match_plural_pronoun_resolution() {
        let g = CompoundCoreference::new();
        let mut rng = StdRng::seed_from_u64(131);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(s.answer, oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn pronoun_sentence_follows_conjunction() {
        let g = CompoundCoreference::new();
        let mut rng = StdRng::seed_from_u64(132);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            for (i, sent) in s.story.iter().enumerate() {
                if sent[0] == "then" {
                    assert!(i > 0);
                    assert_eq!(s.story[i - 1][1], "and");
                }
            }
        }
    }
}
