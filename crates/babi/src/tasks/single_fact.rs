//! Task 1 — single supporting fact.
//!
//! Persons move between locations; the question asks where one person is.
//! Exactly one story sentence (that person's latest move) supports the
//! answer.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick, pick_distinct, LOCATIONS, MOVE_VERBS, PERSONS};
use crate::{Sample, TaskGenerator, TaskId};

/// Generator for bAbI task 1.
///
/// ```
/// use mann_babi::tasks::{SingleSupportingFact, TaskGenerator};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let s = SingleSupportingFact::new().generate(&mut rng);
/// assert_eq!(s.question[0], "where");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleSupportingFact {
    _priv: (),
}

impl SingleSupportingFact {
    /// Creates the generator with the default story shape (4–8 sentences).
    pub fn new() -> Self {
        Self::default()
    }
}

impl SingleSupportingFact {
    /// The shared story builder: `n_sentences` moves over `n_actors`
    /// actors, answered by the subject's latest move. Both entry points
    /// funnel here so the default and length-pinned shapes share one
    /// narrative (and one oracle).
    fn generate_sized(&self, rng: &mut StdRng, n_sentences: usize) -> Sample {
        let n_actors = rng.gen_range(2..=4);
        let actors = pick_distinct(rng, PERSONS, n_actors);
        let mut location_of: BTreeMap<&str, (usize, &str)> = BTreeMap::new();
        let mut story = Vec::with_capacity(n_sentences);
        for i in 0..n_sentences {
            let person = *actors
                .get(rng.gen_range(0..actors.len()))
                .expect("non-empty actors");
            let verb = pick(rng, MOVE_VERBS);
            let loc = pick(rng, LOCATIONS);
            story.push(sentence(&[person, verb, "to", "the", loc]));
            location_of.insert(person, (i, loc));
        }
        // Ask about a person we have seen move (guaranteed: pick from map).
        let known: Vec<&str> = location_of.keys().copied().collect();
        let subject = known[rng.gen_range(0..known.len())];
        let (support, answer) = location_of[subject];
        Sample::new(
            self.id(),
            story,
            sentence(&["where", "is", subject]),
            answer,
            vec![support],
        )
    }
}

impl TaskGenerator for SingleSupportingFact {
    fn id(&self) -> TaskId {
        TaskId::SingleSupportingFact
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        let n_sentences = rng.gen_range(4..=8);
        self.generate_sized(rng, n_sentences)
    }

    /// Task 1 honors the length hint exactly: the move/ask structure is
    /// length-free, so stories stretch to thousands of sentences without
    /// changing the answer semantics (the oracle replays any length).
    fn generate_with_story_len(&self, rng: &mut StdRng, sentences: usize) -> Sample {
        self.generate_sized(rng, sentences.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Independent oracle: replay the story and check the answer.
    fn oracle(s: &Sample) -> String {
        let subject = s.question.last().expect("question subject").clone();
        let mut loc = String::new();
        for sent in &s.story {
            if sent[0] == subject {
                loc = sent.last().expect("location").clone();
            }
        }
        loc
    }

    #[test]
    fn answers_match_story_replay() {
        let g = SingleSupportingFact::new();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(s.answer, oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn supporting_fact_is_the_latest_move_of_subject() {
        let g = SingleSupportingFact::new();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..100 {
            let s = g.generate(&mut rng);
            let subject = s.question.last().unwrap();
            let idx = s.supporting[0];
            assert_eq!(&s.story[idx][0], subject);
            // No later sentence mentions the subject moving.
            for later in &s.story[idx + 1..] {
                assert_ne!(&later[0], subject);
            }
        }
    }

    #[test]
    fn sized_stories_honor_the_length_and_stay_answerable() {
        let g = SingleSupportingFact::new();
        for len in [1usize, 4, 64, 2000] {
            let mut rng = StdRng::seed_from_u64(21);
            let s = g.generate_with_story_len(&mut rng, len);
            assert_eq!(s.story.len(), len);
            assert_eq!(s.answer, oracle(&s));
        }
        // A zero hint is clamped to one sentence, never an empty story.
        let mut rng = StdRng::seed_from_u64(22);
        assert_eq!(g.generate_with_story_len(&mut rng, 0).story.len(), 1);
    }

    #[test]
    fn answer_is_a_location() {
        let g = SingleSupportingFact::new();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            assert!(crate::world::LOCATIONS.contains(&s.answer.as_str()));
        }
    }
}
