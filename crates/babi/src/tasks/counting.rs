//! Task 7 — counting.
//!
//! A person picks up and puts down objects; the question asks how many
//! objects they are carrying. Answers are number words `none`..`three`.

use rand::rngs::StdRng;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick, pick_distinct, pick_other, OBJECTS, PERSONS};
use crate::{Sample, Sentence, TaskGenerator, TaskId};

/// Number words used as answer classes.
pub const NUMBER_WORDS: &[&str] = &["none", "one", "two", "three"];

/// Generator for bAbI task 7.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counting {
    _priv: (),
}

impl Counting {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TaskGenerator for Counting {
    fn id(&self) -> TaskId {
        TaskId::Counting
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        let subject = pick(rng, PERSONS);
        let distractor = pick_other(rng, PERSONS, subject);
        let objs = pick_distinct(rng, OBJECTS, 3);
        let mut carried: Vec<&str> = Vec::new();
        let mut story: Vec<Sentence> = Vec::new();
        let mut supporting: Vec<usize> = Vec::new();
        let n_events = rng.gen_range(4..=8);
        for _ in 0..n_events {
            if rng.gen_bool(0.3) {
                // Distractor event (never affects the count).
                story.push(sentence(&[
                    distractor,
                    "picked",
                    "up",
                    "the",
                    pick(rng, OBJECTS),
                ]));
                continue;
            }
            let can_drop = !carried.is_empty();
            let can_take = carried.len() < 3;
            let drop = can_drop && (!can_take || rng.gen_bool(0.4));
            if drop {
                let k = rng.gen_range(0..carried.len());
                let obj = carried.remove(k);
                story.push(sentence(&[subject, "put", "down", "the", obj]));
            } else {
                let available: Vec<&&str> = objs.iter().filter(|o| !carried.contains(*o)).collect();
                if available.is_empty() {
                    continue;
                }
                let obj = *available[rng.gen_range(0..available.len())];
                carried.push(obj);
                story.push(sentence(&[subject, "picked", "up", "the", obj]));
            }
            supporting.push(story.len() - 1);
        }
        if story.is_empty() {
            // Guarantee at least one subject event.
            let obj = objs[0];
            story.push(sentence(&[subject, "picked", "up", "the", obj]));
            carried.push(obj);
            supporting.push(0);
        }
        let answer = NUMBER_WORDS[carried.len()];
        Sample::new(
            self.id(),
            story,
            sentence(&["how", "many", "objects", "is", subject, "carrying"]),
            answer,
            supporting,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn oracle(s: &Sample) -> String {
        let subject = s.question[4].clone();
        let mut count: i32 = 0;
        for sent in &s.story {
            if sent[0] != subject {
                continue;
            }
            match sent[1].as_str() {
                "picked" => count += 1,
                "put" => count -= 1,
                other => panic!("unexpected verb {other}"),
            }
        }
        NUMBER_WORDS[count as usize].to_owned()
    }

    #[test]
    fn answers_match_replay_count() {
        let g = Counting::new();
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(s.answer, oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn answer_is_a_number_word() {
        let g = Counting::new();
        let mut rng = StdRng::seed_from_u64(72);
        for _ in 0..100 {
            let s = g.generate(&mut rng);
            assert!(NUMBER_WORDS.contains(&s.answer.as_str()));
        }
    }

    #[test]
    fn supporting_facts_are_subject_events_only() {
        let g = Counting::new();
        let mut rng = StdRng::seed_from_u64(73);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            let subject = &s.question[4];
            for &i in &s.supporting {
                assert_eq!(&s.story[i][0], subject);
            }
        }
    }
}
