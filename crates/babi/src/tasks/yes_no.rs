//! Task 6 — yes/no questions.
//!
//! Movement stories as in task 1; the question asks "is X in the Y" and the
//! answer is `yes` or `no`.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick, pick_distinct, pick_other, LOCATIONS, MOVE_VERBS, PERSONS};
use crate::{Sample, TaskGenerator, TaskId};

/// Generator for bAbI task 6.
#[derive(Debug, Clone, Copy, Default)]
pub struct YesNoQuestions {
    _priv: (),
}

impl YesNoQuestions {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TaskGenerator for YesNoQuestions {
    fn id(&self) -> TaskId {
        TaskId::YesNoQuestions
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        let n_sentences = rng.gen_range(4..=8);
        let n_actors = rng.gen_range(2..=3);
        let actors = pick_distinct(rng, PERSONS, n_actors);
        let mut last: BTreeMap<&str, (usize, &str)> = BTreeMap::new();
        let mut story = Vec::with_capacity(n_sentences);
        for i in 0..n_sentences {
            let person = actors[rng.gen_range(0..actors.len())];
            let loc = pick(rng, LOCATIONS);
            story.push(sentence(&[person, pick(rng, MOVE_VERBS), "to", "the", loc]));
            last.insert(person, (i, loc));
        }
        let known: Vec<&str> = last.keys().copied().collect();
        let subject = known[rng.gen_range(0..known.len())];
        let (idx, actual) = last[subject];
        // Balance yes/no by asking about the true location half the time.
        let (asked, answer) = if rng.gen_bool(0.5) {
            (actual, "yes")
        } else {
            (pick_other(rng, LOCATIONS, actual), "no")
        };
        Sample::new(
            self.id(),
            story,
            sentence(&["is", subject, "in", "the", asked]),
            answer,
            vec![idx],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn oracle(s: &Sample) -> String {
        let subject = s.question[1].clone();
        let asked = s.question.last().expect("loc").clone();
        let mut actual = String::new();
        for sent in &s.story {
            if sent[0] == subject {
                actual = sent.last().expect("loc").clone();
            }
        }
        if actual == asked {
            "yes".into()
        } else {
            "no".into()
        }
    }

    #[test]
    fn answers_match_replay() {
        let g = YesNoQuestions::new();
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(s.answer, oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn answer_classes_are_roughly_balanced() {
        let g = YesNoQuestions::new();
        let mut rng = StdRng::seed_from_u64(62);
        let mut yes = 0;
        let n = 400;
        for _ in 0..n {
            if g.generate(&mut rng).answer == "yes" {
                yes += 1;
            }
        }
        let frac = yes as f32 / n as f32;
        assert!((0.35..0.65).contains(&frac), "yes fraction {frac}");
    }
}
