//! Task 3 — three supporting facts.
//!
//! A person carries an object through several locations; the question asks
//! where the object was *before* a given location, which requires the pickup
//! plus two consecutive moves (three supporting facts).

use rand::rngs::StdRng;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick, pick_distinct, pick_other, LOCATIONS, MOVE_VERBS, OBJECTS, PERSONS};
use crate::{Sample, Sentence, TaskGenerator, TaskId};

/// Generator for bAbI task 3.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreeSupportingFacts {
    _priv: (),
}

impl ThreeSupportingFacts {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TaskGenerator for ThreeSupportingFacts {
    fn id(&self) -> TaskId {
        TaskId::ThreeSupportingFacts
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        let carrier = pick(rng, PERSONS);
        let obj = pick(rng, OBJECTS);
        let distractor = pick_other(rng, PERSONS, carrier);

        // The carrier visits a chain of distinct locations while holding the
        // object.
        let chain = pick_distinct(rng, LOCATIONS, 3);
        let mut story: Vec<Sentence> = Vec::new();
        let mut supporting = Vec::new();

        // Move to the first location, pick the object up there.
        story.push(sentence(&[
            carrier,
            pick(rng, MOVE_VERBS),
            "to",
            "the",
            chain[0],
        ]));
        let first_move = story.len() - 1;
        story.push(sentence(&[carrier, "picked", "up", "the", obj]));
        let pickup = story.len() - 1;

        // Interleave distractor sentences.
        let mut move_indices = vec![first_move];
        for loc in &chain[1..] {
            if rng.gen_bool(0.5) {
                story.push(sentence(&[
                    distractor,
                    pick(rng, MOVE_VERBS),
                    "to",
                    "the",
                    pick(rng, LOCATIONS),
                ]));
            }
            story.push(sentence(&[
                carrier,
                pick(rng, MOVE_VERBS),
                "to",
                "the",
                loc,
            ]));
            move_indices.push(story.len() - 1);
        }

        // "where was the <obj> before the <chain[k]>" → chain[k-1].
        let k = rng.gen_range(1..chain.len());
        let answer = chain[k - 1];
        supporting.push(pickup);
        supporting.push(move_indices[k - 1]);
        supporting.push(move_indices[k]);
        supporting.sort_unstable();
        supporting.dedup();

        Sample::new(
            self.id(),
            story,
            sentence(&["where", "was", "the", obj, "before", "the", chain[k]]),
            answer,
            supporting,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Replay oracle for "where was the X before the L".
    fn oracle(s: &Sample) -> Option<String> {
        let obj = s.question[3].clone();
        let before_loc = s.question.last().expect("loc").clone();
        let mut carrier: Option<String> = None;
        let mut trail: Vec<String> = Vec::new();
        let mut person_loc: std::collections::HashMap<String, String> = Default::default();
        for sent in &s.story {
            let w: Vec<&str> = sent.iter().map(String::as_str).collect();
            match w.as_slice() {
                [p, _, "to", "the", l] => {
                    person_loc.insert((*p).into(), (*l).into());
                    if carrier.as_deref() == Some(*p) {
                        trail.push((*l).into());
                    }
                }
                [p, "picked", "up", "the", o] if *o == obj => {
                    carrier = Some((*p).into());
                    if let Some(l) = person_loc.get(*p) {
                        if trail.last() != Some(l) {
                            trail.push(l.clone());
                        }
                    }
                }
                _ => {}
            }
        }
        let pos = trail.iter().rposition(|l| *l == before_loc)?;
        trail.get(pos.checked_sub(1)?).cloned()
    }

    #[test]
    fn answers_match_story_replay() {
        let g = ThreeSupportingFacts::new();
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(Some(s.answer.clone()), oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn supporting_facts_are_two_or_three_sorted() {
        let g = ThreeSupportingFacts::new();
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..100 {
            let s = g.generate(&mut rng);
            assert!((2..=3).contains(&s.supporting.len()), "{:?}", s.supporting);
            assert!(s.supporting.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn question_has_before_form() {
        let g = ThreeSupportingFacts::new();
        let mut rng = StdRng::seed_from_u64(33);
        let s = g.generate(&mut rng);
        assert_eq!(s.question[0], "where");
        assert!(s.question.contains(&"before".to_owned()));
    }
}
