//! Task 15 — basic deduction.
//!
//! Category facts ("sheep are afraid of wolves") plus membership facts
//! ("gertrude is a sheep"); the question requires one deduction step
//! ("what is gertrude afraid of" → wolves).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick_distinct, ANIMAL_NAMES, SPECIES};
use crate::{Sample, Sentence, TaskGenerator, TaskId};

/// Pluralizes a species token the way the bAbI corpus does.
pub fn plural(species: &str) -> String {
    match species {
        "mouse" => "mice".to_owned(),
        "wolf" => "wolves".to_owned(),
        "sheep" => "sheep".to_owned(),
        other => format!("{other}s"),
    }
}

/// Generator for bAbI task 15.
#[derive(Debug, Clone, Copy, Default)]
pub struct BasicDeduction {
    _priv: (),
}

impl BasicDeduction {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TaskGenerator for BasicDeduction {
    fn id(&self) -> TaskId {
        TaskId::BasicDeduction
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        let n_species = rng.gen_range(3..=4);
        let species = pick_distinct(rng, SPECIES, n_species);
        let names = pick_distinct(rng, ANIMAL_NAMES, n_species);
        // species[i] is afraid of species[(i+1) % n].
        let mut lines: Vec<(Sentence, bool, usize)> = Vec::new(); // (sentence, is_fear_fact, species idx)
        for i in 0..n_species {
            let prey = plural(species[i]);
            let predator = plural(species[(i + 1) % n_species]);
            lines.push((
                sentence(&[&prey, "are", "afraid", "of", &predator]),
                true,
                i,
            ));
            lines.push((sentence(&[names[i], "is", "a", species[i]]), false, i));
        }
        lines.shuffle(rng);
        let story: Vec<Sentence> = lines.iter().map(|(s, _, _)| s.clone()).collect();
        let target = rng.gen_range(0..n_species);
        let answer = plural(species[(target + 1) % n_species]);
        let supporting: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, (_, _, idx))| *idx == target)
            .map(|(i, _)| i)
            .collect();
        let mut supporting = supporting;
        supporting.sort_unstable();
        Sample::new(
            self.id(),
            story,
            sentence(&["what", "is", names[target], "afraid", "of"]),
            answer,
            supporting,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn oracle(s: &Sample) -> Option<String> {
        let name = s.question[2].clone();
        let mut species_of: Option<String> = None;
        for sent in &s.story {
            if sent[0] == name && sent[1] == "is" {
                species_of = Some(sent.last().expect("species").clone());
            }
        }
        let sp = plural(&species_of?);
        for sent in &s.story {
            if sent[0] == sp && sent[1] == "are" {
                return Some(sent.last().expect("predator").clone());
            }
        }
        None
    }

    #[test]
    fn answers_follow_one_deduction_step() {
        let g = BasicDeduction::new();
        let mut rng = StdRng::seed_from_u64(151);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(Some(s.answer.clone()), oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn plural_handles_irregulars() {
        assert_eq!(plural("mouse"), "mice");
        assert_eq!(plural("wolf"), "wolves");
        assert_eq!(plural("sheep"), "sheep");
        assert_eq!(plural("cat"), "cats");
    }

    #[test]
    fn supporting_facts_are_membership_and_fear() {
        let g = BasicDeduction::new();
        let mut rng = StdRng::seed_from_u64(152);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            assert_eq!(s.supporting.len(), 2);
        }
    }
}
