//! Task 5 — three-argument relations.
//!
//! Give/receive events ("mary gave the cake to john"); questions ask for the
//! giver, the receiver, or the object.

use rand::rngs::StdRng;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick, pick_distinct, OBJECTS, PERSONS};
use crate::{Sample, Sentence, TaskGenerator, TaskId};

/// Generator for bAbI task 5.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreeArgRelations {
    _priv: (),
}

impl ThreeArgRelations {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TaskGenerator for ThreeArgRelations {
    fn id(&self) -> TaskId {
        TaskId::ThreeArgRelations
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        let n_events = rng.gen_range(3..=6);
        let mut story: Vec<Sentence> = Vec::new();
        let mut events: Vec<(&str, &str, &str, usize)> = Vec::new(); // giver, obj, recv, idx
        for _ in 0..n_events {
            let pair = pick_distinct(rng, PERSONS, 2);
            let obj = pick(rng, OBJECTS);
            story.push(sentence(&[pair[0], "gave", "the", obj, "to", pair[1]]));
            events.push((pair[0], obj, pair[1], story.len() - 1));
        }
        // Pick a question form, then anchor it to the LAST event matching
        // the form's key so the answer is unique under latest-wins replay.
        let form = rng.gen_range(0..3);
        let seed_event = events[rng.gen_range(0..events.len())];
        let (giver, obj, recv, idx) = *events
            .iter()
            .rev()
            .find(|e| match form {
                0 => e.1 == seed_event.1 && e.2 == seed_event.2, // (obj, recv)
                1 => e.0 == seed_event.0 && e.2 == seed_event.2, // (giver, recv)
                _ => e.1 == seed_event.1,                        // obj
            })
            .expect("seed event matches itself");
        let (question, answer) = match form {
            0 => (sentence(&["who", "gave", "the", obj, "to", recv]), giver),
            1 => (sentence(&["what", "did", giver, "give", "to", recv]), obj),
            _ => (sentence(&["who", "received", "the", obj]), recv),
        };
        Sample::new(self.id(), story, question, answer, vec![idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn oracle(s: &Sample) -> Option<String> {
        let q: Vec<&str> = s.question.iter().map(String::as_str).collect();
        // Scan story last-to-first to honour "latest event wins".
        for sent in s.story.iter().rev() {
            let w: Vec<&str> = sent.iter().map(String::as_str).collect();
            let [giver, "gave", "the", obj, "to", recv] = w.as_slice() else {
                panic!("unexpected event shape");
            };
            match q.as_slice() {
                ["who", "gave", "the", qo, "to", qr] if qo == obj && qr == recv => {
                    return Some((*giver).into());
                }
                ["what", "did", qg, "give", "to", qr] if qg == giver && qr == recv => {
                    return Some((*obj).into());
                }
                ["who", "received", "the", qo] if qo == obj => return Some((*recv).into()),
                _ => {}
            }
        }
        None
    }

    #[test]
    fn answers_match_latest_event() {
        let g = ThreeArgRelations::new();
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(Some(s.answer.clone()), oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn giver_and_receiver_differ() {
        let g = ThreeArgRelations::new();
        let mut rng = StdRng::seed_from_u64(52);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            for sent in &s.story {
                assert_ne!(sent.first(), sent.last());
            }
        }
    }

    #[test]
    fn supporting_fact_mentions_the_object_or_people() {
        let g = ThreeArgRelations::new();
        let mut rng = StdRng::seed_from_u64(53);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            let fact = &s.story[s.supporting[0]];
            assert!(s.question.iter().any(|w| fact.contains(w) && w.len() > 3));
        }
    }
}
