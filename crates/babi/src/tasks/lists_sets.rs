//! Task 8 — lists / sets.
//!
//! Like counting, but the answer enumerates *which* objects the person is
//! carrying. Multi-object answers are joined into one class token with `_`
//! in sorted order (`apple_milk`), matching how a single-label output layer
//! treats list answers.

use rand::rngs::StdRng;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick, pick_distinct, pick_other, OBJECTS, PERSONS};
use crate::{Sample, Sentence, TaskGenerator, TaskId};

/// Generator for bAbI task 8.
#[derive(Debug, Clone, Copy, Default)]
pub struct ListsSets {
    _priv: (),
}

impl ListsSets {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonical answer token for a carried set: `nothing`, a single object,
    /// or the sorted objects joined by `_`.
    pub fn answer_token(carried: &[&str]) -> String {
        if carried.is_empty() {
            return "nothing".to_owned();
        }
        let mut sorted: Vec<&str> = carried.to_vec();
        sorted.sort_unstable();
        sorted.join("_")
    }
}

impl TaskGenerator for ListsSets {
    fn id(&self) -> TaskId {
        TaskId::ListsSets
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        let subject = pick(rng, PERSONS);
        let distractor = pick_other(rng, PERSONS, subject);
        let objs = pick_distinct(rng, OBJECTS, 2); // cap at 2 → bounded class count
        let mut carried: Vec<&str> = Vec::new();
        let mut story: Vec<Sentence> = Vec::new();
        let mut supporting: Vec<usize> = Vec::new();
        for _ in 0..rng.gen_range(3..=7) {
            if rng.gen_bool(0.3) {
                story.push(sentence(&[
                    distractor,
                    "picked",
                    "up",
                    "the",
                    pick(rng, OBJECTS),
                ]));
                continue;
            }
            let can_drop = !carried.is_empty();
            let can_take = carried.len() < objs.len();
            let drop = can_drop && (!can_take || rng.gen_bool(0.4));
            if drop {
                let k = rng.gen_range(0..carried.len());
                let obj = carried.remove(k);
                story.push(sentence(&[subject, "put", "down", "the", obj]));
            } else {
                let available: Vec<&&str> = objs.iter().filter(|o| !carried.contains(*o)).collect();
                if available.is_empty() {
                    continue;
                }
                let obj = *available[rng.gen_range(0..available.len())];
                carried.push(obj);
                story.push(sentence(&[subject, "picked", "up", "the", obj]));
            }
            supporting.push(story.len() - 1);
        }
        if story.is_empty() {
            story.push(sentence(&[subject, "picked", "up", "the", objs[0]]));
            carried.push(objs[0]);
            supporting.push(0);
        }
        let answer = Self::answer_token(&carried);
        Sample::new(
            self.id(),
            story,
            sentence(&["what", "is", subject, "carrying"]),
            answer,
            supporting,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn oracle(s: &Sample) -> String {
        let subject = s.question[2].clone();
        let mut carried: Vec<String> = Vec::new();
        for sent in &s.story {
            if sent[0] != subject {
                continue;
            }
            let obj = sent.last().expect("object").clone();
            match sent[1].as_str() {
                "picked" => carried.push(obj),
                "put" => {
                    let pos = carried.iter().position(|o| *o == obj).expect("carried");
                    carried.remove(pos);
                }
                other => panic!("unexpected verb {other}"),
            }
        }
        let refs: Vec<&str> = carried.iter().map(String::as_str).collect();
        ListsSets::answer_token(&refs)
    }

    #[test]
    fn answers_match_replay() {
        let g = ListsSets::new();
        let mut rng = StdRng::seed_from_u64(81);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(s.answer, oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn answer_token_is_canonical() {
        assert_eq!(ListsSets::answer_token(&[]), "nothing");
        assert_eq!(ListsSets::answer_token(&["milk"]), "milk");
        assert_eq!(ListsSets::answer_token(&["milk", "apple"]), "apple_milk");
        assert_eq!(ListsSets::answer_token(&["apple", "milk"]), "apple_milk");
    }
}
