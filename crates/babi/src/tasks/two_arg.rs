//! Task 4 — two-argument relations.
//!
//! Spatial facts like "the office is north of the bedroom"; the question
//! asks either "what is north of the bedroom" or "what is the office north
//! of".

use rand::rngs::StdRng;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick, pick_distinct, DIRECTIONS, LOCATIONS};
use crate::{Sample, Sentence, TaskGenerator, TaskId};

/// Generator for bAbI task 4.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoArgRelations {
    _priv: (),
}

impl TwoArgRelations {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TaskGenerator for TwoArgRelations {
    fn id(&self) -> TaskId {
        TaskId::TwoArgRelations
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        // A chain of distinct rooms connected by one direction each.
        let n_rooms = rng.gen_range(3..=4);
        let rooms = pick_distinct(rng, LOCATIONS, n_rooms);
        let mut story: Vec<Sentence> = Vec::new();
        let mut facts: Vec<(&str, &str, &str, usize)> = Vec::new(); // (a, dir, b, idx)
        for w in rooms.windows(2) {
            let dir = pick(rng, DIRECTIONS);
            story.push(sentence(&["the", w[0], "is", dir, "of", "the", w[1]]));
            facts.push((w[0], dir, w[1], story.len() - 1));
        }
        let (a, dir, b, idx) = facts[rng.gen_range(0..facts.len())];
        // Two question forms; both answered by the same fact.
        let (question, answer) = if rng.gen_bool(0.5) {
            (sentence(&["what", "is", dir, "of", "the", b]), a)
        } else {
            (sentence(&["what", "is", "the", a, dir, "of"]), b)
        };
        Sample::new(self.id(), story, question, answer, vec![idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn oracle(s: &Sample) -> Option<String> {
        let q: Vec<&str> = s.question.iter().map(String::as_str).collect();
        for sent in &s.story {
            let w: Vec<&str> = sent.iter().map(String::as_str).collect();
            let [_, a, _, dir, _, _, b] = w.as_slice() else {
                panic!("unexpected fact shape");
            };
            match q.as_slice() {
                ["what", "is", qd, "of", "the", qb] if qd == dir && qb == b => {
                    return Some((*a).into());
                }
                ["what", "is", "the", qa, qd, "of"] if qa == a && qd == dir => {
                    return Some((*b).into());
                }
                _ => {}
            }
        }
        None
    }

    #[test]
    fn answers_match_fact_lookup() {
        let g = TwoArgRelations::new();
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(Some(s.answer.clone()), oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn single_supporting_fact() {
        let g = TwoArgRelations::new();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            assert_eq!(s.supporting.len(), 1);
        }
    }

    #[test]
    fn rooms_in_chain_are_distinct() {
        let g = TwoArgRelations::new();
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            for sent in &s.story {
                assert_ne!(sent[1], sent[6], "self-relation in {}", s.to_babi_text());
            }
        }
    }
}
