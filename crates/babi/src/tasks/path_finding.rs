//! Task 19 — path finding.
//!
//! Rooms are connected by compass relations; the question asks for the
//! two-step route between two rooms. The answer is a compound token like
//! `north_east` (bAbI answers this task with a direction list).

use rand::rngs::StdRng;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick_distinct, LOCATIONS};
use crate::{Sample, Sentence, TaskGenerator, TaskId};

/// Generator for bAbI task 19.
#[derive(Debug, Clone, Copy, Default)]
pub struct PathFinding {
    _priv: (),
}

impl PathFinding {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }
}

fn delta(dir: &str) -> (i32, i32) {
    match dir {
        "north" => (0, 1),
        "south" => (0, -1),
        "east" => (1, 0),
        "west" => (-1, 0),
        other => panic!("unknown direction {other}"),
    }
}

fn dir_of(d: (i32, i32)) -> &'static str {
    match d {
        (0, 1) => "north",
        (0, -1) => "south",
        (1, 0) => "east",
        (-1, 0) => "west",
        other => panic!("non-unit delta {other:?}"),
    }
}

impl TaskGenerator for PathFinding {
    fn id(&self) -> TaskId {
        TaskId::PathFinding
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        // Three rooms on an L: start → mid → goal, with axis-aligned steps on
        // different axes, so the unique 2-step path is (step1, step2).
        let rooms = pick_distinct(rng, LOCATIONS, 3);
        let axis1 = if rng.gen_bool(0.5) { (1, 0) } else { (0, 1) };
        let axis2 = if axis1.0 == 1 { (0, 1) } else { (1, 0) };
        let s1 = if rng.gen_bool(0.5) { 1 } else { -1 };
        let s2 = if rng.gen_bool(0.5) { 1 } else { -1 };
        let step1 = (axis1.0 * s1, axis1.1 * s1);
        let step2 = (axis2.0 * s2, axis2.1 * s2);

        // Each fact states "the <B> is <dir> of the <A>" for a step A → B.
        let mut lines: Vec<Sentence> = vec![
            sentence(&["the", rooms[1], "is", dir_of(step1), "of", "the", rooms[0]]),
            sentence(&["the", rooms[2], "is", dir_of(step2), "of", "the", rooms[1]]),
        ];
        let order_swapped = rng.gen_bool(0.5);
        if order_swapped {
            lines.swap(0, 1);
        }
        let story = lines;
        let answer = format!("{}_{}", dir_of(step1), dir_of(step2));
        Sample::new(
            self.id(),
            story,
            sentence(&[
                "how", "do", "you", "go", "from", "the", rooms[0], "to", "the", rooms[2],
            ]),
            answer,
            vec![0, 1],
        )
    }
}

/// Finds the unique 2-step route implied by a task-19 story — shared by the
/// tests and the attention-trace example.
pub fn solve(story: &[Sentence], from: &str, to: &str) -> Option<String> {
    use std::collections::HashMap;
    let mut coord: HashMap<String, (i32, i32)> = HashMap::new();
    for sent in story {
        // "the B is <dir> of the A"
        let b = sent[1].clone();
        let dir = sent[3].clone();
        let a = sent.last().expect("room").clone();
        let d = delta(&dir);
        if let Some(&pa) = coord.get(&a) {
            coord.insert(b, (pa.0 + d.0, pa.1 + d.1));
        } else if let Some(&pb) = coord.get(&b) {
            coord.insert(a, (pb.0 - d.0, pb.1 - d.1));
        } else {
            coord.insert(a.clone(), (0, 0));
            coord.insert(b, d);
        }
    }
    let (fx, fy) = *coord.get(from)?;
    let (tx, ty) = *coord.get(to)?;
    let (dx, dy) = (tx - fx, ty - fy);
    if dx.abs() + dy.abs() != 2 || dx.abs() == 2 || dy.abs() == 2 {
        return None;
    }
    // Canonical order: the axis stated first in the story's chain is taken
    // first; here we return x-then-y unless only y-then-x matches the story
    // chain. For the generator's L-shape either order reaches the goal; we
    // emit first-step-axis = the step leaving `from` in the story graph.
    let first = (dx.signum(), 0);
    let second = (0, dy.signum());
    if dx != 0 && dy != 0 {
        // Choose the order whose intermediate room exists in the story.
        let mid_x = (fx + dx, fy);
        let has_mid_x = coord.values().any(|&p| p == mid_x);
        if has_mid_x {
            Some(format!("{}_{}", dir_of(first), dir_of(second)))
        } else {
            Some(format!("{}_{}", dir_of(second), dir_of(first)))
        }
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn answers_match_graph_solver() {
        let g = PathFinding::new();
        let mut rng = StdRng::seed_from_u64(191);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            let from = s.question[6].clone();
            let to = s.question.last().expect("goal").clone();
            assert_eq!(
                Some(s.answer.clone()),
                solve(&s.story, &from, &to),
                "{}",
                s.to_babi_text()
            );
        }
    }

    #[test]
    fn answer_is_two_directions() {
        let g = PathFinding::new();
        let mut rng = StdRng::seed_from_u64(192);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            let parts: Vec<&str> = s.answer.split('_').collect();
            assert_eq!(parts.len(), 2);
            for p in parts {
                assert!(crate::world::DIRECTIONS.contains(&p));
            }
        }
    }
}
