//! Task 12 — conjunction.
//!
//! Two people move together ("mary and john went to the office"); the
//! question asks where one of them is.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick, pick_distinct, LOCATIONS, MOVE_VERBS, PERSONS};
use crate::{Sample, Sentence, TaskGenerator, TaskId};

/// Generator for bAbI task 12.
#[derive(Debug, Clone, Copy, Default)]
pub struct Conjunction {
    _priv: (),
}

impl Conjunction {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TaskGenerator for Conjunction {
    fn id(&self) -> TaskId {
        TaskId::Conjunction
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        let mut story: Vec<Sentence> = Vec::new();
        let mut last: BTreeMap<&str, (usize, &str)> = BTreeMap::new();
        for i in 0..rng.gen_range(3..=5) {
            let pair = pick_distinct(rng, PERSONS, 2);
            let loc = pick(rng, LOCATIONS);
            story.push(sentence(&[
                pair[0],
                "and",
                pair[1],
                pick(rng, MOVE_VERBS),
                "to",
                "the",
                loc,
            ]));
            last.insert(pair[0], (i, loc));
            last.insert(pair[1], (i, loc));
        }
        let known: Vec<&str> = last.keys().copied().collect();
        let subject = known[rng.gen_range(0..known.len())];
        let (idx, answer) = last[subject];
        Sample::new(
            self.id(),
            story,
            sentence(&["where", "is", subject]),
            answer,
            vec![idx],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn oracle(s: &Sample) -> String {
        let subject = s.question.last().expect("subject").clone();
        let mut loc = String::new();
        for sent in &s.story {
            if sent[0] == subject || sent[2] == subject {
                loc = sent.last().expect("loc").clone();
            }
        }
        loc
    }

    #[test]
    fn answers_match_replay() {
        let g = Conjunction::new();
        let mut rng = StdRng::seed_from_u64(121);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(s.answer, oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn sentences_join_two_distinct_people() {
        let g = Conjunction::new();
        let mut rng = StdRng::seed_from_u64(122);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            for sent in &s.story {
                assert_eq!(sent[1], "and");
                assert_ne!(sent[0], sent[2]);
            }
        }
    }
}
