//! Task 11 — basic coreference.
//!
//! Pairs of sentences where the second uses a pronoun referring to the
//! person in the first ("mary went to the kitchen. afterwards she went to
//! the garden."). The question asks where that person is.

use rand::rngs::StdRng;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick, pick_distinct, LOCATIONS, MOVE_VERBS, PERSONS};
use crate::{Sample, Sentence, TaskGenerator, TaskId};

/// Pronoun for each person name (alternating gender in the bAbI name pools).
pub fn pronoun(person: &str) -> &'static str {
    match person {
        "mary" | "sandra" | "julie" => "she",
        _ => "he",
    }
}

/// Generator for bAbI task 11.
#[derive(Debug, Clone, Copy, Default)]
pub struct BasicCoreference {
    _priv: (),
}

impl BasicCoreference {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TaskGenerator for BasicCoreference {
    fn id(&self) -> TaskId {
        TaskId::BasicCoreference
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        let n_pairs = rng.gen_range(2..=3);
        let actors = pick_distinct(rng, PERSONS, n_pairs);
        let mut story: Vec<Sentence> = Vec::new();
        let mut final_loc: Vec<(&str, usize, &str)> = Vec::new(); // (person, idx, loc)
        for person in &actors {
            let first = pick(rng, LOCATIONS);
            story.push(sentence(&[
                person,
                pick(rng, MOVE_VERBS),
                "to",
                "the",
                first,
            ]));
            let second = pick(rng, LOCATIONS);
            story.push(sentence(&[
                "afterwards",
                pronoun(person),
                pick(rng, MOVE_VERBS),
                "to",
                "the",
                second,
            ]));
            final_loc.push((person, story.len() - 1, second));
        }
        let (subject, idx, answer) = final_loc[rng.gen_range(0..final_loc.len())];
        Sample::new(
            self.id(),
            story,
            sentence(&["where", "is", subject]),
            answer,
            vec![idx - 1, idx],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn oracle(s: &Sample) -> String {
        let subject = s.question.last().expect("subject").clone();
        let mut current: Option<String> = None; // person of the open pair
        let mut loc = String::new();
        for sent in &s.story {
            if sent[0] == "afterwards" {
                if current.as_deref() == Some(subject.as_str()) {
                    loc = sent.last().expect("loc").clone();
                }
            } else {
                current = Some(sent[0].clone());
                if sent[0] == subject {
                    loc = sent.last().expect("loc").clone();
                }
            }
        }
        loc
    }

    #[test]
    fn answers_match_pronoun_resolution() {
        let g = BasicCoreference::new();
        let mut rng = StdRng::seed_from_u64(111);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(s.answer, oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn pronouns_match_gender_pools() {
        assert_eq!(pronoun("mary"), "she");
        assert_eq!(pronoun("john"), "he");
    }

    #[test]
    fn supporting_facts_are_the_pair() {
        let g = BasicCoreference::new();
        let mut rng = StdRng::seed_from_u64(112);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            assert_eq!(s.supporting.len(), 2);
            assert_eq!(s.supporting[0] + 1, s.supporting[1]);
            assert_eq!(s.story[s.supporting[1]][0], "afterwards");
        }
    }
}
