//! Task 17 — positional reasoning.
//!
//! Shapes are placed on an implicit grid and described by pairwise relations
//! ("the triangle is to the right of the square"); the question asks a
//! yes/no relation that may require composing two facts.

use rand::rngs::StdRng;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick_distinct, SHAPES};
use crate::{Sample, Sentence, TaskGenerator, TaskId};

/// Generator for bAbI task 17.
#[derive(Debug, Clone, Copy, Default)]
pub struct PositionalReasoning {
    _priv: (),
}

impl PositionalReasoning {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }
}

fn relation_words(dx: i32, dy: i32) -> Option<&'static [&'static str]> {
    match (dx.signum(), dy.signum()) {
        (1, 0) => Some(&["to", "the", "right", "of"]),
        (-1, 0) => Some(&["to", "the", "left", "of"]),
        (0, 1) => Some(&["above"]),
        (0, -1) => Some(&["below"]),
        _ => None,
    }
}

impl TaskGenerator for PositionalReasoning {
    fn id(&self) -> TaskId {
        TaskId::PositionalReasoning
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        // Place three distinct shapes at distinct grid points on an L so each
        // adjacent pair differs along exactly one axis.
        let shapes = pick_distinct(rng, SHAPES, 3);
        let origin = (0i32, 0i32);
        let step1 = if rng.gen_bool(0.5) { (1, 0) } else { (0, 1) };
        let step2 = if step1.0 == 1 { (0, 1) } else { (1, 0) };
        let sign1 = if rng.gen_bool(0.5) { 1 } else { -1 };
        let sign2 = if rng.gen_bool(0.5) { 1 } else { -1 };
        let pos = [
            origin,
            (origin.0 + sign1 * step1.0, origin.1 + sign1 * step1.1),
            (
                origin.0 + sign1 * step1.0 + sign2 * step2.0,
                origin.1 + sign1 * step1.1 + sign2 * step2.1,
            ),
        ];
        // Describe adjacent pairs.
        let mut story: Vec<Sentence> = Vec::new();
        for i in 0..2 {
            let (dx, dy) = (pos[i + 1].0 - pos[i].0, pos[i + 1].1 - pos[i].1);
            let rel = relation_words(dx, dy).expect("axis-aligned step");
            let mut words = vec!["the", shapes[i + 1], "is"];
            words.extend_from_slice(rel);
            words.extend_from_slice(&["the", shapes[i]]);
            story.push(sentence(&words));
        }
        // Question: a relation between the two endpoints (requires both facts).
        let (a, b) = (2usize, 0usize);
        let (dx, dy) = (pos[a].0 - pos[b].0, pos[a].1 - pos[b].1);
        // Ask about one axis of the true displacement, or flip it for "no".
        let (asked_rel, truth): (&[&str], bool) = if rng.gen_bool(0.5) {
            // Truthful axis question.
            if dx != 0 && (dy == 0 || rng.gen_bool(0.5)) {
                (relation_words(dx, 0).expect("dx != 0"), true)
            } else {
                (relation_words(0, dy).expect("dy != 0"), true)
            }
        } else {
            // Flipped.
            if dx != 0 && (dy == 0 || rng.gen_bool(0.5)) {
                (relation_words(-dx, 0).expect("dx != 0"), false)
            } else {
                (relation_words(0, -dy).expect("dy != 0"), false)
            }
        };
        let mut q = vec!["is", "the", shapes[a]];
        q.extend_from_slice(asked_rel);
        q.extend_from_slice(&["the", shapes[b]]);
        Sample::new(
            self.id(),
            story,
            sentence(&q),
            if truth { "yes" } else { "no" },
            vec![0, 1],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashMap;

    /// Replay oracle: rebuild coordinates from the two facts, evaluate the
    /// asked relation.
    fn oracle(s: &Sample) -> String {
        let mut coord: HashMap<String, (i32, i32)> = HashMap::new();
        for sent in &s.story {
            let w: Vec<&str> = sent.iter().map(String::as_str).collect();
            // "the X is <rel...> the Y"
            let x = w[1].to_owned();
            let y = w.last().expect("base").to_string();
            let rel = &w[3..w.len() - 2];
            let delta = match rel {
                ["to", "the", "right", "of"] => (1, 0),
                ["to", "the", "left", "of"] => (-1, 0),
                ["above"] => (0, 1),
                ["below"] => (0, -1),
                other => panic!("unknown relation {other:?}"),
            };
            let base = *coord.entry(y).or_insert((0, 0));
            coord.insert(x, (base.0 + delta.0, base.1 + delta.1));
        }
        let q: Vec<&str> = s.question.iter().map(String::as_str).collect();
        let a = coord[q[2]];
        let b = coord[*q.last().expect("base")];
        let rel = &q[3..q.len() - 2];
        let holds = match rel {
            ["to", "the", "right", "of"] => a.0 > b.0,
            ["to", "the", "left", "of"] => a.0 < b.0,
            ["above"] => a.1 > b.1,
            ["below"] => a.1 < b.1,
            other => panic!("unknown relation {other:?}"),
        };
        if holds {
            "yes".into()
        } else {
            "no".into()
        }
    }

    #[test]
    fn answers_match_coordinate_replay() {
        let g = PositionalReasoning::new();
        let mut rng = StdRng::seed_from_u64(171);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(s.answer, oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn both_facts_are_supporting() {
        let g = PositionalReasoning::new();
        let mut rng = StdRng::seed_from_u64(172);
        let s = g.generate(&mut rng);
        assert_eq!(s.supporting, vec![0, 1]);
    }

    #[test]
    fn answers_are_balanced() {
        let g = PositionalReasoning::new();
        let mut rng = StdRng::seed_from_u64(173);
        let mut yes = 0;
        for _ in 0..400 {
            if g.generate(&mut rng).answer == "yes" {
                yes += 1;
            }
        }
        assert!((120..280).contains(&yes), "yes count {yes}");
    }
}
