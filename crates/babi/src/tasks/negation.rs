//! Task 9 — simple negation.
//!
//! Stories mix positive facts ("mary is in the kitchen") and negated facts
//! ("mary is not in the kitchen"); the yes/no question must respect the most
//! recent statement about the subject.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick, pick_distinct, pick_other, LOCATIONS, PERSONS};
use crate::{Sample, Sentence, TaskGenerator, TaskId};

/// Generator for bAbI task 9.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimpleNegation {
    _priv: (),
}

impl SimpleNegation {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Latest knowledge about a person: either a definite location or a location
/// they are known *not* to be in.
#[derive(Debug, Clone, Copy)]
enum Knowledge {
    At(usize, &'static str),
    NotAt(usize, &'static str),
}

impl TaskGenerator for SimpleNegation {
    fn id(&self) -> TaskId {
        TaskId::SimpleNegation
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        let statics = |s: &str| -> &'static str {
            PERSONS
                .iter()
                .chain(LOCATIONS)
                .find(|w| **w == s)
                .copied()
                .expect("known token")
        };
        let actors = pick_distinct(rng, PERSONS, 2);
        let mut know: BTreeMap<&str, Knowledge> = BTreeMap::new();
        let mut story: Vec<Sentence> = Vec::new();
        for i in 0..rng.gen_range(4..=7) {
            let person = statics(actors[rng.gen_range(0..actors.len())]);
            let loc = statics(pick(rng, LOCATIONS));
            if rng.gen_bool(0.4) {
                story.push(sentence(&[person, "is", "not", "in", "the", loc]));
                know.insert(person, Knowledge::NotAt(i, loc));
            } else {
                story.push(sentence(&[person, "is", "in", "the", loc]));
                know.insert(person, Knowledge::At(i, loc));
            }
        }
        let known: Vec<&str> = know.keys().copied().collect();
        let subject = known[rng.gen_range(0..known.len())];
        let (idx, asked, answer) = match know[subject] {
            Knowledge::At(i, loc) => {
                if rng.gen_bool(0.5) {
                    (i, loc, "yes")
                } else {
                    (i, pick_other(rng, LOCATIONS, loc), "no")
                }
            }
            // If the latest fact is a negation, only ask about that location
            // (anything else would be unanswerable).
            Knowledge::NotAt(i, loc) => (i, loc, "no"),
        };
        Sample::new(
            self.id(),
            story,
            sentence(&["is", subject, "in", "the", asked]),
            answer,
            vec![idx],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn oracle(s: &Sample) -> String {
        let subject = s.question[1].clone();
        let asked = s.question.last().expect("loc").clone();
        let mut latest: Option<(bool, String)> = None; // (negated, loc)
        for sent in &s.story {
            if sent[0] != subject {
                continue;
            }
            let negated = sent[2] == "not";
            latest = Some((negated, sent.last().expect("loc").clone()));
        }
        match latest {
            Some((false, loc)) if loc == asked => "yes".into(),
            Some((false, _)) => "no".into(),
            Some((true, loc)) if loc == asked => "no".into(),
            _ => "maybe".into(),
        }
    }

    #[test]
    fn answers_match_replay() {
        let g = SimpleNegation::new();
        let mut rng = StdRng::seed_from_u64(91);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(s.answer, oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn negated_sentences_contain_not() {
        let g = SimpleNegation::new();
        let mut rng = StdRng::seed_from_u64(92);
        let mut saw_negation = false;
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            for sent in &s.story {
                if sent.contains(&"not".to_owned()) {
                    saw_negation = true;
                    assert_eq!(sent[2], "not");
                }
            }
        }
        assert!(saw_negation, "no negated sentence in 50 samples");
    }
}
