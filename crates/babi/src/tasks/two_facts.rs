//! Task 2 — two supporting facts.
//!
//! Persons move and pick up / put down objects; the question asks where an
//! object is. Answering requires combining the pickup fact with the
//! carrier's latest move (two supporting facts).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick, pick_distinct, LOCATIONS, MOVE_VERBS, OBJECTS, PERSONS};
use crate::{Sample, Sentence, TaskGenerator, TaskId};

/// Generator for bAbI task 2.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoSupportingFacts {
    _priv: (),
}

impl TwoSupportingFacts {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PersonState {
    location: Option<(usize, &'static str)>,
    carrying: Option<(usize, &'static str)>,
}

#[derive(Debug, Clone, Default)]
struct ObjectState {
    carrier: Option<&'static str>,
    /// Last known location and its supporting fact indices.
    known: Option<(&'static str, Vec<usize>)>,
}

impl TaskGenerator for TwoSupportingFacts {
    fn id(&self) -> TaskId {
        TaskId::TwoSupportingFacts
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        loop {
            if let Some(s) = self.try_generate(rng) {
                return s;
            }
        }
    }
}

impl TwoSupportingFacts {
    fn try_generate(&self, rng: &mut StdRng) -> Option<Sample> {
        let n_sentences = rng.gen_range(6..=10);
        let actors = pick_distinct(rng, PERSONS, 3);
        let objects = pick_distinct(rng, OBJECTS, 2);
        // All tokens come from the const pools, so 'static references are
        // recoverable by lookup.
        let statics = |s: &str| -> &'static str {
            PERSONS
                .iter()
                .chain(LOCATIONS)
                .chain(OBJECTS)
                .find(|w| **w == s)
                .copied()
                .expect("token from a known pool")
        };
        let actors: Vec<&'static str> = actors.iter().map(|a| statics(a)).collect();
        let objects: Vec<&'static str> = objects.iter().map(|o| statics(o)).collect();

        let mut person: BTreeMap<&'static str, PersonState> = actors
            .iter()
            .map(|&a| (a, PersonState::default()))
            .collect();
        let mut object: BTreeMap<&'static str, ObjectState> = objects
            .iter()
            .map(|&o| (o, ObjectState::default()))
            .collect();

        let mut story: Vec<Sentence> = Vec::with_capacity(n_sentences);
        for i in 0..n_sentences {
            let who = actors[rng.gen_range(0..actors.len())];
            let ps = *person.get(&who).expect("tracked person");
            // Choose a feasible action: move, pickup (if free-handed and a
            // free object exists and location known), or put down.
            let free_objs: Vec<&'static str> = objects
                .iter()
                .copied()
                .filter(|o| object[o].carrier.is_none())
                .collect();
            let can_pickup =
                ps.carrying.is_none() && ps.location.is_some() && !free_objs.is_empty();
            let can_drop = ps.carrying.is_some();
            let action = match (can_pickup, can_drop, rng.gen_range(0..4)) {
                (true, _, 1) => 1,
                (_, true, 2) => 2,
                _ => 0,
            };
            match action {
                1 => {
                    let obj = free_objs[rng.gen_range(0..free_objs.len())];
                    story.push(sentence(&[who, "picked", "up", "the", obj]));
                    person.get_mut(&who).expect("tracked").carrying = Some((i, obj));
                    let (mi, loc) = ps.location.expect("checked");
                    let os = object.get_mut(&obj).expect("tracked");
                    os.carrier = Some(who);
                    os.known = Some((loc, vec![mi.min(i), mi.max(i)]));
                }
                2 => {
                    let (_, obj) = person
                        .get_mut(&who)
                        .expect("tracked")
                        .carrying
                        .take()
                        .expect("checked");
                    story.push(sentence(&[who, "put", "down", "the", obj]));
                    object.get_mut(&obj).expect("tracked").carrier = None;
                    // The object stays where it was dropped; `known` already
                    // points at the carrier's current location.
                }
                _ => {
                    let verb = pick(rng, MOVE_VERBS);
                    let loc = statics(pick(rng, LOCATIONS));
                    story.push(sentence(&[who, verb, "to", "the", loc]));
                    person.get_mut(&who).expect("tracked").location = Some((i, loc));
                    if let Some((pi, obj)) = ps.carrying {
                        let os = object.get_mut(&obj).expect("tracked");
                        os.known = Some((loc, vec![pi, i]));
                    }
                }
            }
        }

        // Ask about an object with a known location (BTreeMap gives a stable
        // candidate order).
        let candidates: Vec<(&'static str, &'static str, Vec<usize>)> = object
            .iter()
            .filter_map(|(o, st)| st.known.as_ref().map(|(l, s)| (*o, *l, s.clone())))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let (obj, loc, mut supporting) = candidates[rng.gen_range(0..candidates.len())].clone();
        supporting.sort_unstable();
        supporting.dedup();
        Some(Sample::new(
            self.id(),
            story,
            sentence(&["where", "is", "the", obj]),
            loc,
            supporting,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    use rand::SeedableRng;

    /// Replay oracle: track carrier and location of every object.
    fn oracle(s: &Sample) -> Option<String> {
        let obj = s.question.last().expect("object").clone();
        let mut carrier_of: HashMap<String, String> = HashMap::new();
        let mut loc_of_person: HashMap<String, String> = HashMap::new();
        let mut loc_of_obj: HashMap<String, String> = HashMap::new();
        for sent in &s.story {
            let words: Vec<&str> = sent.iter().map(String::as_str).collect();
            match words.as_slice() {
                [p, _, "to", "the", l] => {
                    loc_of_person.insert((*p).into(), (*l).into());
                    if let Some((o, _)) = carrier_of.iter().find(|(_, c)| c.as_str() == *p) {
                        let o = o.clone();
                        loc_of_obj.insert(o, (*l).into());
                    }
                }
                [p, "picked", "up", "the", o] => {
                    carrier_of.insert((*o).into(), (*p).into());
                    if let Some(l) = loc_of_person.get(*p) {
                        loc_of_obj.insert((*o).into(), l.clone());
                    }
                }
                [p, "put", "down", "the", o] => {
                    if carrier_of.get(*o).map(String::as_str) == Some(*p) {
                        carrier_of.remove(*o);
                    }
                }
                other => panic!("unexpected sentence {other:?}"),
            }
        }
        loc_of_obj.get(&obj).cloned()
    }

    #[test]
    fn answers_match_story_replay() {
        let g = TwoSupportingFacts::new();
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(Some(s.answer.clone()), oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn has_one_or_two_supporting_facts_in_order() {
        let g = TwoSupportingFacts::new();
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..100 {
            let s = g.generate(&mut rng);
            assert!(!s.supporting.is_empty() && s.supporting.len() <= 2);
            assert!(s.supporting.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn an_object_is_never_carried_by_two_people() {
        let g = TwoSupportingFacts::new();
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..100 {
            let s = g.generate(&mut rng);
            let mut carrier: HashMap<String, String> = HashMap::new();
            for sent in &s.story {
                let w: Vec<&str> = sent.iter().map(String::as_str).collect();
                match w.as_slice() {
                    [p, "picked", "up", "the", o] => {
                        assert!(
                            carrier.insert((*o).into(), (*p).into()).is_none(),
                            "double pickup of {o} in {}",
                            s.to_babi_text()
                        );
                    }
                    [_, "put", "down", "the", o] => {
                        carrier.remove(*o);
                    }
                    _ => {}
                }
            }
        }
    }
}
