//! The 20 bAbI task archetypes.
//!
//! Each task module implements [`TaskGenerator`]: a deterministic,
//! RNG-driven producer of [`Sample`]s with the same narrative structure,
//! vocabulary footprint, and answer-class layout as the corresponding
//! original bAbI task. [`TaskId::generator`] returns the generator for a
//! task; [`TaskId::all`] enumerates the full suite in paper order.

mod compound_coref;
mod conjunction;
mod coreference;
mod counting;
mod deduction;
mod indefinite;
mod induction;
mod lists_sets;
mod motivations;
mod negation;
mod path_finding;
mod positional;
mod single_fact;
mod size;
mod three_arg;
mod three_facts;
mod time;
mod two_arg;
mod two_facts;
mod yes_no;

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::Sample;

pub use compound_coref::CompoundCoreference;
pub use conjunction::Conjunction;
pub use coreference::BasicCoreference;
pub use counting::Counting;
pub use deduction::BasicDeduction;
pub use indefinite::IndefiniteKnowledge;
pub use induction::BasicInduction;
pub use lists_sets::ListsSets;
pub use motivations::AgentMotivations;
pub use negation::SimpleNegation;
pub use path_finding::{solve as solve_path, PathFinding};
pub use positional::PositionalReasoning;
pub use single_fact::SingleSupportingFact;
pub use size::SizeReasoning;
pub use three_arg::ThreeArgRelations;
pub use three_facts::ThreeSupportingFacts;
pub use time::TimeReasoning;
pub use two_arg::TwoArgRelations;
pub use two_facts::TwoSupportingFacts;
pub use yes_no::YesNoQuestions;

/// A procedural generator for one bAbI task archetype.
///
/// Implementations must be pure functions of the RNG state: two generators
/// fed identically-seeded RNGs must produce identical samples.
pub trait TaskGenerator {
    /// The task this generator produces.
    fn id(&self) -> TaskId;

    /// Generates one sample (story + question + answer).
    fn generate(&self, rng: &mut StdRng) -> Sample;

    /// Generates one sample whose story is `sentences` long — the memory-
    /// scaling knob for multi-thousand-sentence stories. The hint is
    /// best-effort: tasks whose narrative structure does not stretch to
    /// arbitrary lengths (most of the 20) ignore it and generate their
    /// default shape, so it MUST only be relied on for tasks that document
    /// support (task 1). Implementations must keep the same determinism
    /// contract as [`TaskGenerator::generate`].
    fn generate_with_story_len(&self, rng: &mut StdRng, sentences: usize) -> Sample {
        let _ = sentences;
        self.generate(rng)
    }
}

/// Identifier of one of the 20 bAbI tasks, in the paper's numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TaskId {
    /// Task 1: single supporting fact.
    SingleSupportingFact,
    /// Task 2: two supporting facts.
    TwoSupportingFacts,
    /// Task 3: three supporting facts.
    ThreeSupportingFacts,
    /// Task 4: two-argument relations.
    TwoArgRelations,
    /// Task 5: three-argument relations.
    ThreeArgRelations,
    /// Task 6: yes/no questions.
    YesNoQuestions,
    /// Task 7: counting.
    Counting,
    /// Task 8: lists / sets.
    ListsSets,
    /// Task 9: simple negation.
    SimpleNegation,
    /// Task 10: indefinite knowledge.
    IndefiniteKnowledge,
    /// Task 11: basic coreference.
    BasicCoreference,
    /// Task 12: conjunction.
    Conjunction,
    /// Task 13: compound coreference.
    CompoundCoreference,
    /// Task 14: time reasoning.
    TimeReasoning,
    /// Task 15: basic deduction.
    BasicDeduction,
    /// Task 16: basic induction.
    BasicInduction,
    /// Task 17: positional reasoning.
    PositionalReasoning,
    /// Task 18: size reasoning.
    SizeReasoning,
    /// Task 19: path finding.
    PathFinding,
    /// Task 20: agent motivations.
    AgentMotivations,
}

impl TaskId {
    /// All 20 tasks in paper order.
    pub fn all() -> [TaskId; 20] {
        use TaskId::*;
        [
            SingleSupportingFact,
            TwoSupportingFacts,
            ThreeSupportingFacts,
            TwoArgRelations,
            ThreeArgRelations,
            YesNoQuestions,
            Counting,
            ListsSets,
            SimpleNegation,
            IndefiniteKnowledge,
            BasicCoreference,
            Conjunction,
            CompoundCoreference,
            TimeReasoning,
            BasicDeduction,
            BasicInduction,
            PositionalReasoning,
            SizeReasoning,
            PathFinding,
            AgentMotivations,
        ]
    }

    /// The 1-based task number used in the paper's tables and figures.
    pub fn number(self) -> usize {
        Self::all()
            .iter()
            .position(|t| *t == self)
            .expect("task present in all()")
            + 1
    }

    /// Constructs a task from its 1-based number.
    ///
    /// Returns `None` when `n` is outside `1..=20`.
    pub fn from_number(n: usize) -> Option<TaskId> {
        Self::all().get(n.checked_sub(1)?).copied()
    }

    /// Human-readable task name matching the bAbI naming.
    pub fn name(self) -> &'static str {
        use TaskId::*;
        match self {
            SingleSupportingFact => "single-supporting-fact",
            TwoSupportingFacts => "two-supporting-facts",
            ThreeSupportingFacts => "three-supporting-facts",
            TwoArgRelations => "two-arg-relations",
            ThreeArgRelations => "three-arg-relations",
            YesNoQuestions => "yes-no-questions",
            Counting => "counting",
            ListsSets => "lists-sets",
            SimpleNegation => "simple-negation",
            IndefiniteKnowledge => "indefinite-knowledge",
            BasicCoreference => "basic-coreference",
            Conjunction => "conjunction",
            CompoundCoreference => "compound-coreference",
            TimeReasoning => "time-reasoning",
            BasicDeduction => "basic-deduction",
            BasicInduction => "basic-induction",
            PositionalReasoning => "positional-reasoning",
            SizeReasoning => "size-reasoning",
            PathFinding => "path-finding",
            AgentMotivations => "agent-motivations",
        }
    }

    /// Returns the generator implementing this task.
    pub fn generator(self) -> Box<dyn TaskGenerator> {
        use TaskId::*;
        match self {
            SingleSupportingFact => Box::new(single_fact::SingleSupportingFact::new()),
            TwoSupportingFacts => Box::new(two_facts::TwoSupportingFacts::new()),
            ThreeSupportingFacts => Box::new(three_facts::ThreeSupportingFacts::new()),
            TwoArgRelations => Box::new(two_arg::TwoArgRelations::new()),
            ThreeArgRelations => Box::new(three_arg::ThreeArgRelations::new()),
            YesNoQuestions => Box::new(yes_no::YesNoQuestions::new()),
            Counting => Box::new(counting::Counting::new()),
            ListsSets => Box::new(lists_sets::ListsSets::new()),
            SimpleNegation => Box::new(negation::SimpleNegation::new()),
            IndefiniteKnowledge => Box::new(indefinite::IndefiniteKnowledge::new()),
            BasicCoreference => Box::new(coreference::BasicCoreference::new()),
            Conjunction => Box::new(conjunction::Conjunction::new()),
            CompoundCoreference => Box::new(compound_coref::CompoundCoreference::new()),
            TimeReasoning => Box::new(time::TimeReasoning::new()),
            BasicDeduction => Box::new(deduction::BasicDeduction::new()),
            BasicInduction => Box::new(induction::BasicInduction::new()),
            PositionalReasoning => Box::new(positional::PositionalReasoning::new()),
            SizeReasoning => Box::new(size::SizeReasoning::new()),
            PathFinding => Box::new(path_finding::PathFinding::new()),
            AgentMotivations => Box::new(motivations::AgentMotivations::new()),
        }
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "qa{}-{}", self.number(), self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn all_lists_twenty_distinct_tasks() {
        let all = TaskId::all();
        assert_eq!(all.len(), 20);
        let mut set: Vec<TaskId> = all.to_vec();
        set.sort();
        set.dedup();
        assert_eq!(set.len(), 20);
    }

    #[test]
    fn numbering_roundtrips() {
        for t in TaskId::all() {
            assert_eq!(TaskId::from_number(t.number()), Some(t));
        }
        assert_eq!(TaskId::from_number(0), None);
        assert_eq!(TaskId::from_number(21), None);
    }

    #[test]
    fn display_includes_number_and_name() {
        assert_eq!(
            TaskId::SingleSupportingFact.to_string(),
            "qa1-single-supporting-fact"
        );
        assert_eq!(
            TaskId::AgentMotivations.to_string(),
            "qa20-agent-motivations"
        );
    }

    #[test]
    fn every_generator_produces_consistent_samples() {
        for t in TaskId::all() {
            let g = t.generator();
            assert_eq!(g.id(), t);
            let mut rng = StdRng::seed_from_u64(1234);
            for _ in 0..25 {
                let s = g.generate(&mut rng);
                assert_eq!(s.task, t, "{t}");
                assert!(!s.story.is_empty(), "{t}: empty story");
                assert!(!s.question.is_empty(), "{t}: empty question");
                assert!(!s.answer.is_empty(), "{t}: empty answer");
                assert!(
                    s.supporting.iter().all(|&i| i < s.story.len()),
                    "{t}: supporting index out of range"
                );
                for sent in &s.story {
                    assert!(!sent.is_empty(), "{t}: empty sentence");
                }
            }
        }
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        for t in TaskId::all() {
            let g = t.generator();
            let mut r1 = StdRng::seed_from_u64(777);
            let mut r2 = StdRng::seed_from_u64(777);
            for _ in 0..5 {
                assert_eq!(g.generate(&mut r1), g.generate(&mut r2), "{t}");
            }
        }
    }
}
