//! Task 16 — basic induction.
//!
//! Exemplar facts ("lily is a swan. lily is white.") let the reader induce a
//! species → color rule, then apply it to a new individual ("bernhard is a
//! swan. what color is bernhard?" → white).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick_distinct, ANIMAL_NAMES, COLORS, SPECIES};
use crate::{Sample, Sentence, TaskGenerator, TaskId};

/// Generator for bAbI task 16.
#[derive(Debug, Clone, Copy, Default)]
pub struct BasicInduction {
    _priv: (),
}

impl BasicInduction {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TaskGenerator for BasicInduction {
    fn id(&self) -> TaskId {
        TaskId::BasicInduction
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        let n_rules = rng.gen_range(2..=3);
        let species = pick_distinct(rng, SPECIES, n_rules);
        let colors = pick_distinct(rng, COLORS, n_rules);
        let names = pick_distinct(rng, ANIMAL_NAMES, n_rules + 1);
        let mut lines: Vec<(Sentence, usize)> = Vec::new(); // (sentence, rule idx or usize::MAX)
        for i in 0..n_rules {
            lines.push((sentence(&[names[i], "is", "a", species[i]]), i));
            lines.push((sentence(&[names[i], "is", colors[i]]), i));
        }
        // The query individual belongs to one known species.
        let target_rule = rng.gen_range(0..n_rules);
        let query_name = names[n_rules];
        lines.push((
            sentence(&[query_name, "is", "a", species[target_rule]]),
            target_rule,
        ));
        lines.shuffle(rng);
        let story: Vec<Sentence> = lines.iter().map(|(s, _)| s.clone()).collect();
        let supporting: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, (sent, rule))| {
                *rule == target_rule && (sent[0] == query_name || sent[0] == names[target_rule])
            })
            .map(|(i, _)| i)
            .collect();
        let mut supporting = supporting;
        supporting.sort_unstable();
        Sample::new(
            self.id(),
            story,
            sentence(&["what", "color", "is", query_name]),
            colors[target_rule],
            supporting,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn oracle(s: &Sample) -> Option<String> {
        let name = s.question.last().expect("name").clone();
        // Find the query's species.
        let species = s
            .story
            .iter()
            .find(|sent| sent[0] == name && sent[2] == "a")
            .map(|sent| sent.last().expect("species").clone())?;
        // Find an exemplar of the same species and its color.
        for sent in &s.story {
            if sent[0] != name
                && sent.get(2).map(String::as_str) == Some("a")
                && sent.last().map(String::as_str) == Some(species.as_str())
            {
                let exemplar = sent[0].clone();
                for c in &s.story {
                    if c[0] == exemplar && c.len() == 3 {
                        return Some(c[2].clone());
                    }
                }
            }
        }
        None
    }

    #[test]
    fn answers_follow_induced_rule() {
        let g = BasicInduction::new();
        let mut rng = StdRng::seed_from_u64(161);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(Some(s.answer.clone()), oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn query_individual_has_no_stated_color() {
        let g = BasicInduction::new();
        let mut rng = StdRng::seed_from_u64(162);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            let name = s.question.last().unwrap();
            for sent in &s.story {
                if &sent[0] == name {
                    assert_eq!(sent.len(), 4, "query has a direct color fact");
                }
            }
        }
    }

    #[test]
    fn supporting_facts_cover_rule_and_membership() {
        let g = BasicInduction::new();
        let mut rng = StdRng::seed_from_u64(163);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            assert_eq!(s.supporting.len(), 3, "{}", s.to_babi_text());
        }
    }
}
