//! Task 10 — indefinite knowledge.
//!
//! Facts may be definite ("bill is in the park") or indefinite ("bill is
//! either in the school or the cinema"); the yes/no/maybe question must
//! handle the uncertainty.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick, pick_distinct, pick_other, LOCATIONS, PERSONS};
use crate::{Sample, Sentence, TaskGenerator, TaskId};

/// Generator for bAbI task 10.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndefiniteKnowledge {
    _priv: (),
}

impl IndefiniteKnowledge {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }
}

#[derive(Debug, Clone, Copy)]
enum Fact {
    At(usize, &'static str),
    Either(usize, &'static str, &'static str),
}

impl TaskGenerator for IndefiniteKnowledge {
    fn id(&self) -> TaskId {
        TaskId::IndefiniteKnowledge
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        let statics = |s: &str| -> &'static str {
            PERSONS
                .iter()
                .chain(LOCATIONS)
                .find(|w| **w == s)
                .copied()
                .expect("known token")
        };
        let actors = pick_distinct(rng, PERSONS, 2);
        let mut know: BTreeMap<&str, Fact> = BTreeMap::new();
        let mut story: Vec<Sentence> = Vec::new();
        for i in 0..rng.gen_range(3..=6) {
            let person = statics(actors[rng.gen_range(0..actors.len())]);
            if rng.gen_bool(0.5) {
                let pair = pick_distinct(rng, LOCATIONS, 2);
                let (a, b) = (statics(pair[0]), statics(pair[1]));
                story.push(sentence(&[
                    person, "is", "either", "in", "the", a, "or", "the", b,
                ]));
                know.insert(person, Fact::Either(i, a, b));
            } else {
                let loc = statics(pick(rng, LOCATIONS));
                story.push(sentence(&[person, "is", "in", "the", loc]));
                know.insert(person, Fact::At(i, loc));
            }
        }
        let known: Vec<&str> = know.keys().copied().collect();
        let subject = known[rng.gen_range(0..known.len())];
        let (idx, asked, answer) = match know[subject] {
            Fact::At(i, loc) => {
                if rng.gen_bool(0.5) {
                    (i, loc, "yes")
                } else {
                    (i, pick_other(rng, LOCATIONS, loc), "no")
                }
            }
            Fact::Either(i, a, b) => match rng.gen_range(0..3) {
                0 => (i, a, "maybe"),
                1 => (i, b, "maybe"),
                _ => {
                    let mut other = pick(rng, LOCATIONS);
                    while other == a || other == b {
                        other = pick(rng, LOCATIONS);
                    }
                    (i, other, "no")
                }
            },
        };
        Sample::new(
            self.id(),
            story,
            sentence(&["is", subject, "in", "the", asked]),
            answer,
            vec![idx],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn oracle(s: &Sample) -> String {
        let subject = s.question[1].clone();
        let asked = s.question.last().expect("loc").clone();
        let mut latest: Option<Vec<String>> = None;
        for sent in &s.story {
            if sent[0] != subject {
                continue;
            }
            if sent[2] == "either" {
                latest = Some(vec![sent[5].clone(), sent[8].clone()]);
            } else {
                latest = Some(vec![sent.last().expect("loc").clone()]);
            }
        }
        match latest {
            Some(locs) if locs.len() == 1 && locs[0] == asked => "yes".into(),
            Some(locs) if locs.len() == 1 => "no".into(),
            Some(locs) if locs.contains(&asked) => "maybe".into(),
            Some(_) => "no".into(),
            None => "maybe".into(),
        }
    }

    #[test]
    fn answers_match_replay() {
        let g = IndefiniteKnowledge::new();
        let mut rng = StdRng::seed_from_u64(101);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(s.answer, oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn uses_three_answer_classes() {
        let g = IndefiniteKnowledge::new();
        let mut rng = StdRng::seed_from_u64(102);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            seen.insert(g.generate(&mut rng).answer);
        }
        assert!(seen.contains("yes") && seen.contains("no") && seen.contains("maybe"));
    }
}
