//! Task 18 — size reasoning.
//!
//! Pairwise size facts over a hidden total order ("the box is bigger than
//! the chocolate"); the yes/no question may require chaining facts
//! transitively ("does the chocolate fit in the suitcase?").

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::sample::sentence;
use crate::world::SIZED_ITEMS;
use crate::{Sample, Sentence, TaskGenerator, TaskId};

/// Generator for bAbI task 18.
#[derive(Debug, Clone, Copy, Default)]
pub struct SizeReasoning {
    _priv: (),
}

impl SizeReasoning {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TaskGenerator for SizeReasoning {
    fn id(&self) -> TaskId {
        TaskId::SizeReasoning
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        // SIZED_ITEMS is ordered smallest → largest; pick a contiguous run so
        // the total order is known, then state adjacent facts.
        let n = rng.gen_range(3..=4);
        let start = rng.gen_range(0..=SIZED_ITEMS.len() - n);
        let chain = &SIZED_ITEMS[start..start + n];
        let mut lines: Vec<(Sentence, usize)> = Vec::new();
        for i in 0..n - 1 {
            // chain[i+1] is bigger than chain[i].
            lines.push((
                sentence(&["the", chain[i + 1], "is", "bigger", "than", "the", chain[i]]),
                i,
            ));
        }
        lines.shuffle(rng);
        let story: Vec<Sentence> = lines.iter().map(|(s, _)| s.clone()).collect();
        // Question about a pair (possibly non-adjacent → transitivity).
        let mut a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n);
        while a == b {
            b = rng.gen_range(0..n);
        }
        let fits = rng.gen_bool(0.5);
        let (question, truth) = if fits {
            // "does the X fit in the Y" — true iff X smaller than Y.
            (
                sentence(&["does", "the", chain[a], "fit", "in", "the", chain[b]]),
                a < b,
            )
        } else {
            (
                sentence(&["is", "the", chain[a], "bigger", "than", "the", chain[b]]),
                a > b,
            )
        };
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        // Supporting facts: the adjacent links between a and b.
        let supporting: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, (_, link))| (a..b).contains(link))
            .map(|(i, _)| i)
            .collect();
        let mut supporting = supporting;
        supporting.sort_unstable();
        Sample::new(
            self.id(),
            story,
            question,
            if truth { "yes" } else { "no" },
            supporting,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn oracle(s: &Sample) -> String {
        // Build the partial order, take transitive closure over the chain.
        let mut bigger: Vec<(String, String)> = Vec::new();
        for sent in &s.story {
            bigger.push((sent[1].clone(), sent.last().expect("smaller").clone()));
        }
        let is_bigger = |x: &str, y: &str| -> bool {
            // BFS over "bigger-than" edges.
            let mut frontier = vec![x.to_owned()];
            let mut seen = std::collections::HashSet::new();
            while let Some(cur) = frontier.pop() {
                if !seen.insert(cur.clone()) {
                    continue;
                }
                for (b, sm) in &bigger {
                    if *b == cur {
                        if sm == y {
                            return true;
                        }
                        frontier.push(sm.clone());
                    }
                }
            }
            false
        };
        let q: Vec<&str> = s.question.iter().map(String::as_str).collect();
        let truth = match q.as_slice() {
            ["does", "the", x, "fit", "in", "the", y] => is_bigger(y, x),
            ["is", "the", x, "bigger", "than", "the", y] => is_bigger(x, y),
            other => panic!("unknown question {other:?}"),
        };
        if truth {
            "yes".into()
        } else {
            "no".into()
        }
    }

    #[test]
    fn answers_match_transitive_closure() {
        let g = SizeReasoning::new();
        let mut rng = StdRng::seed_from_u64(181);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(s.answer, oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn supporting_facts_span_the_chain() {
        let g = SizeReasoning::new();
        let mut rng = StdRng::seed_from_u64(182);
        for _ in 0..100 {
            let s = g.generate(&mut rng);
            assert!(!s.supporting.is_empty());
        }
    }
}
