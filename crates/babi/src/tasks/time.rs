//! Task 14 — time reasoning.
//!
//! Statements carry time-of-day labels in shuffled narrative order
//! ("yesterday julie went to the park", "this morning julie went to
//! school"); the question asks where a person was before a given location in
//! *chronological* order.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick, pick_distinct, LOCATIONS, PERSONS};
use crate::{Sample, Sentence, TaskGenerator, TaskId};

/// Time labels in chronological order; each is a single token so the
/// bag-of-words encoder keeps it intact.
pub const TIME_LABELS: &[&str] = &[
    "yesterday",
    "this_morning",
    "this_afternoon",
    "this_evening",
];

/// Generator for bAbI task 14.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeReasoning {
    _priv: (),
}

impl TimeReasoning {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TaskGenerator for TimeReasoning {
    fn id(&self) -> TaskId {
        TaskId::TimeReasoning
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        let subject = pick(rng, PERSONS);
        let n_times = rng.gen_range(3..=TIME_LABELS.len());
        let locs = pick_distinct(rng, LOCATIONS, n_times);
        // Chronological itinerary: TIME_LABELS[i] → locs[i].
        let mut lines: Vec<(usize, Sentence)> = (0..n_times)
            .map(|i| {
                (
                    i,
                    sentence(&[TIME_LABELS[i], subject, "went", "to", "the", locs[i]]),
                )
            })
            .collect();
        lines.shuffle(rng);
        let story: Vec<Sentence> = lines.iter().map(|(_, s)| s.clone()).collect();
        // "where was <subject> before the <locs[k]>" → locs[k-1].
        let k = rng.gen_range(1..n_times);
        let answer = locs[k - 1];
        let supporting: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, (chron, _))| *chron == k || *chron == k - 1)
            .map(|(story_idx, _)| story_idx)
            .collect();
        let mut supporting = supporting;
        supporting.sort_unstable();
        Sample::new(
            self.id(),
            story,
            sentence(&["where", "was", subject, "before", "the", locs[k]]),
            answer,
            supporting,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn oracle(s: &Sample) -> Option<String> {
        let subject = s.question[2].clone();
        let before_loc = s.question.last().expect("loc").clone();
        // Reconstruct the chronological itinerary from the time labels.
        let mut itinerary: Vec<(usize, String)> = Vec::new();
        for sent in &s.story {
            if sent[1] != subject {
                continue;
            }
            let t = TIME_LABELS
                .iter()
                .position(|l| *l == sent[0])
                .expect("known time label");
            itinerary.push((t, sent.last().expect("loc").clone()));
        }
        itinerary.sort_by_key(|(t, _)| *t);
        let pos = itinerary.iter().position(|(_, l)| *l == before_loc)?;
        itinerary.get(pos.checked_sub(1)?).map(|(_, l)| l.clone())
    }

    #[test]
    fn answers_match_chronological_replay() {
        let g = TimeReasoning::new();
        let mut rng = StdRng::seed_from_u64(141);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(Some(s.answer.clone()), oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn story_order_is_often_shuffled() {
        let g = TimeReasoning::new();
        let mut rng = StdRng::seed_from_u64(142);
        let mut shuffled = 0;
        for _ in 0..100 {
            let s = g.generate(&mut rng);
            let times: Vec<usize> = s
                .story
                .iter()
                .map(|sent| TIME_LABELS.iter().position(|l| *l == sent[0]).unwrap())
                .collect();
            if times.windows(2).any(|w| w[0] > w[1]) {
                shuffled += 1;
            }
        }
        assert!(shuffled > 30, "only {shuffled}/100 shuffled");
    }

    #[test]
    fn supporting_facts_cover_the_two_relevant_times() {
        let g = TimeReasoning::new();
        let mut rng = StdRng::seed_from_u64(143);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            assert_eq!(s.supporting.len(), 2);
        }
    }
}
