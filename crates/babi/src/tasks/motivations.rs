//! Task 20 — agent motivations.
//!
//! A state fact ("john is hungry") explains a subsequent move ("john went to
//! the kitchen"); the question asks why the agent went there.

use rand::rngs::StdRng;
use rand::Rng;

use crate::sample::sentence;
use crate::world::{pick, pick_distinct, MOTIVATIONS, MOVE_VERBS, PERSONS};
use crate::{Sample, Sentence, TaskGenerator, TaskId};

/// Generator for bAbI task 20.
#[derive(Debug, Clone, Copy, Default)]
pub struct AgentMotivations {
    _priv: (),
}

impl AgentMotivations {
    /// Creates the generator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TaskGenerator for AgentMotivations {
    fn id(&self) -> TaskId {
        TaskId::AgentMotivations
    }

    fn generate(&self, rng: &mut StdRng) -> Sample {
        let n_agents = rng.gen_range(2..=3);
        let agents = pick_distinct(rng, PERSONS, n_agents);
        let mut story: Vec<Sentence> = Vec::new();
        let mut episodes: Vec<(&str, &str, &str, usize, usize)> = Vec::new();
        for agent in &agents {
            let (state, place) = MOTIVATIONS[rng.gen_range(0..MOTIVATIONS.len())];
            story.push(sentence(&[agent, "is", state]));
            let state_idx = story.len() - 1;
            story.push(sentence(&[
                agent,
                pick(rng, MOVE_VERBS),
                "to",
                "the",
                place,
            ]));
            episodes.push((agent, state, place, state_idx, story.len() - 1));
        }
        let (agent, state, place, si, mi) = episodes[rng.gen_range(0..episodes.len())];
        Sample::new(
            self.id(),
            story,
            sentence(&["why", "did", agent, "go", "to", "the", place]),
            state,
            vec![si, mi],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn oracle(s: &Sample) -> Option<String> {
        let agent = s.question[2].clone();
        let place = s.question.last().expect("place").clone();
        let mut state: Option<String> = None;
        for sent in &s.story {
            if sent[0] != agent {
                continue;
            }
            if sent[1] == "is" {
                state = Some(sent.last().expect("state").clone());
            } else if sent.last().map(String::as_str) == Some(place.as_str()) {
                return state;
            }
        }
        None
    }

    #[test]
    fn answers_match_state_lookup() {
        let g = AgentMotivations::new();
        let mut rng = StdRng::seed_from_u64(201);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            assert_eq!(Some(s.answer.clone()), oracle(&s), "{}", s.to_babi_text());
        }
    }

    #[test]
    fn destination_matches_motivation_table() {
        let g = AgentMotivations::new();
        let mut rng = StdRng::seed_from_u64(202);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            let place = s.question.last().unwrap().as_str();
            assert!(MOTIVATIONS
                .iter()
                .any(|(st, pl)| *st == s.answer && *pl == place));
        }
    }

    #[test]
    fn supporting_facts_are_state_then_move() {
        let g = AgentMotivations::new();
        let mut rng = StdRng::seed_from_u64(203);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            assert_eq!(s.supporting.len(), 2);
            assert_eq!(s.story[s.supporting[0]][1], "is");
        }
    }
}
