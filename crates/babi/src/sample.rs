//! Story, question, and answer containers.

use serde::{Deserialize, Serialize};

use crate::TaskId;

/// A tokenized sentence — lowercase words without punctuation.
pub type Sentence = Vec<String>;

/// One QA sample: a story (context sentences, written to the accelerator's
/// external memory), one question, the single-token answer, and the indices
/// of the story sentences that support the answer.
///
/// ```
/// use mann_babi::{Sample, TaskId};
///
/// let s = Sample::new(
///     TaskId::SingleSupportingFact,
///     vec![vec!["mary".into(), "moved".into(), "to".into(), "the".into(), "kitchen".into()]],
///     vec!["where".into(), "is".into(), "mary".into()],
///     "kitchen",
///     vec![0],
/// );
/// assert_eq!(s.answer, "kitchen");
/// assert_eq!(s.story.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    /// Which of the 20 task archetypes generated this sample.
    pub task: TaskId,
    /// Context sentences, in narrative order.
    pub story: Vec<Sentence>,
    /// The question, tokenized.
    pub question: Sentence,
    /// The answer as a single token (list answers are joined with `_`).
    pub answer: String,
    /// Indices into `story` of the supporting facts (for debugging and
    /// attention-trace demos; the model never sees them).
    pub supporting: Vec<usize>,
}

impl Sample {
    /// Creates a sample; `answer` is converted to an owned token.
    pub fn new(
        task: TaskId,
        story: Vec<Sentence>,
        question: Sentence,
        answer: impl Into<String>,
        supporting: Vec<usize>,
    ) -> Self {
        Self {
            task,
            story,
            question,
            answer: answer.into(),
            supporting,
        }
    }

    /// All tokens in the sample (story, question, answer) — used to build
    /// vocabularies.
    pub fn tokens(&self) -> impl Iterator<Item = &str> {
        self.story
            .iter()
            .flatten()
            .chain(self.question.iter())
            .map(String::as_str)
            .chain(std::iter::once(self.answer.as_str()))
    }

    /// Total number of words across the story — drives the accelerator's
    /// write-path cycle count.
    pub fn story_words(&self) -> usize {
        self.story.iter().map(Vec::len).sum()
    }

    /// Renders the sample in the classic bAbI text format (numbered lines,
    /// question with answer and supporting facts).
    pub fn to_babi_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, sent) in self.story.iter().enumerate() {
            let _ = writeln!(out, "{} {} .", i + 1, sent.join(" "));
        }
        let supports: Vec<String> = self
            .supporting
            .iter()
            .map(|i| (i + 1).to_string())
            .collect();
        let _ = writeln!(
            out,
            "{} {} ?\t{}\t{}",
            self.story.len() + 1,
            self.question.join(" "),
            self.answer,
            supports.join(" ")
        );
        out
    }
}

/// Builds a [`Sentence`] from string slices — generator convenience.
pub fn sentence(words: &[&str]) -> Sentence {
    words.iter().map(|w| (*w).to_owned()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Sample {
        Sample::new(
            TaskId::SingleSupportingFact,
            vec![
                sentence(&["mary", "moved", "to", "the", "kitchen"]),
                sentence(&["john", "went", "to", "the", "garden"]),
            ],
            sentence(&["where", "is", "mary"]),
            "kitchen",
            vec![0],
        )
    }

    #[test]
    fn tokens_cover_story_question_answer() {
        let s = sample();
        let toks: Vec<&str> = s.tokens().collect();
        assert!(toks.contains(&"mary"));
        assert!(toks.contains(&"where"));
        assert!(toks.contains(&"kitchen"));
        assert_eq!(toks.len(), 5 + 5 + 3 + 1);
    }

    #[test]
    fn story_words_counts_all() {
        assert_eq!(sample().story_words(), 10);
    }

    #[test]
    fn babi_text_format() {
        let text = sample().to_babi_text();
        assert!(text.starts_with("1 mary moved to the kitchen .\n"));
        assert!(text.contains("3 where is mary ?\tkitchen\t1"));
    }

    #[test]
    fn sentence_helper_owns_words() {
        let s = sentence(&["a", "b"]);
        assert_eq!(s, vec!["a".to_owned(), "b".to_owned()]);
    }
}
