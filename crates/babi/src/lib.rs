//! Synthetic bAbI-style question-answering tasks.
//!
//! The paper evaluates on the 20 bAbI QA tasks (Weston et al., 2015). The
//! original corpus is itself template-generated synthetic English; this crate
//! regenerates statistically equivalent data procedurally — same entities,
//! story shapes, vocabulary sizes, and answer-class structure — from a seeded
//! RNG, so every experiment is reproducible offline.
//!
//! # Structure
//!
//! * [`tasks`] — one generator per task archetype (1–20), all implementing
//!   [`tasks::TaskGenerator`].
//! * [`Sample`] — a story (list of sentences), a question, the single-token
//!   answer, and the indices of the supporting facts.
//! * [`Vocab`] / [`encode`] — token ↔ index maps and conversion of samples
//!   into the index form the model and the accelerator consume (bag-of-words
//!   plus a temporal token per sentence).
//! * [`TaskData`] / [`DatasetBuilder`] — deterministic train/test splits.
//!
//! # Example
//!
//! ```
//! use mann_babi::{DatasetBuilder, TaskId};
//!
//! let data = DatasetBuilder::new()
//!     .train_samples(20)
//!     .test_samples(5)
//!     .seed(42)
//!     .build_task(TaskId::SingleSupportingFact);
//! assert_eq!(data.train.len(), 20);
//! let s = &data.train[0];
//! assert!(!s.story.is_empty());
//! assert!(!s.answer.is_empty());
//! ```

pub mod encode;
pub mod io;
pub mod tasks;

mod dataset;
mod sample;
mod vocab;
mod world;

pub use dataset::{DatasetBuilder, TaskData};
pub use encode::{EncodedSample, Encoder};
pub use sample::{Sample, Sentence};
pub use tasks::{TaskGenerator, TaskId};
pub use vocab::Vocab;
