//! Conversion of text samples into the index form consumed by the model and
//! the accelerator.
//!
//! The accelerator's INPUT & WRITE module receives each sentence as a list
//! of word indices and embeds it by summing embedding-weight columns (paper
//! Eq 2). [`Encoder`] produces exactly that representation: per-sentence
//! word-index lists plus one temporal token marking the sentence's age
//! (most recent = `<t0>`), the question's index list, and the answer's class
//! index.

use serde::{Deserialize, Serialize};

use crate::{Sample, Vocab};

/// A sample in word-index form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedSample {
    /// One word-index list per story sentence (oldest first), each ending
    /// with its temporal token when the encoder has `time_tokens > 0`.
    pub sentences: Vec<Vec<usize>>,
    /// The question as word indices.
    pub question: Vec<usize>,
    /// The answer class (an index into the vocabulary).
    pub answer: usize,
}

impl EncodedSample {
    /// Total number of story words — the number of embedding-column reads
    /// the write path performs.
    pub fn story_words(&self) -> usize {
        self.sentences.iter().map(Vec::len).sum()
    }
}

/// Encodes [`Sample`]s against a fixed [`Vocab`].
///
/// ```
/// use mann_babi::{DatasetBuilder, Encoder, TaskId, Vocab};
///
/// let data = DatasetBuilder::new().train_samples(4).test_samples(1).seed(7)
///     .build_task(TaskId::SingleSupportingFact);
/// let vocab = Vocab::from_samples(data.train.iter().chain(&data.test))
///     .with_time_tokens(Encoder::DEFAULT_TIME_TOKENS);
/// let enc = Encoder::new(vocab);
/// let e = enc.encode(&data.train[0]).expect("in-vocabulary");
/// assert_eq!(e.sentences.len(), data.train[0].story.len());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Encoder {
    vocab: Vocab,
    time_tokens: usize,
}

impl Encoder {
    /// Default number of temporal tokens (maximum tracked story length).
    pub const DEFAULT_TIME_TOKENS: usize = 20;

    /// Creates an encoder over `vocab` with the default temporal-token
    /// budget.
    pub fn new(vocab: Vocab) -> Self {
        Self {
            vocab,
            time_tokens: Self::DEFAULT_TIME_TOKENS,
        }
    }

    /// Creates an encoder with a custom temporal-token budget (0 disables
    /// temporal markers).
    pub fn with_time_tokens(vocab: Vocab, time_tokens: usize) -> Self {
        Self { vocab, time_tokens }
    }

    /// The vocabulary this encoder resolves against.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Encodes one sample.
    ///
    /// Sentences older than the temporal budget share the oldest marker.
    /// Returns `None` when any token (including the answer) is out of
    /// vocabulary.
    pub fn encode(&self, sample: &Sample) -> Option<EncodedSample> {
        let n = sample.story.len();
        let mut sentences = Vec::with_capacity(n);
        for (i, sent) in sample.story.iter().enumerate() {
            let mut ids = Vec::with_capacity(sent.len() + 1);
            for w in sent {
                ids.push(self.vocab.index_of(w)?);
            }
            if self.time_tokens > 0 {
                let age = (n - 1 - i).min(self.time_tokens - 1);
                ids.push(self.vocab.index_of(&format!("<t{age}>"))?);
            }
            sentences.push(ids);
        }
        let question = sample
            .question
            .iter()
            .map(|w| self.vocab.index_of(w))
            .collect::<Option<Vec<usize>>>()?;
        let answer = self.vocab.index_of(&sample.answer)?;
        Some(EncodedSample {
            sentences,
            question,
            answer,
        })
    }

    /// Encodes a batch, skipping samples with out-of-vocabulary tokens and
    /// reporting how many were skipped.
    pub fn encode_all<'a, I: IntoIterator<Item = &'a Sample>>(
        &self,
        samples: I,
    ) -> (Vec<EncodedSample>, usize) {
        let mut out = Vec::new();
        let mut skipped = 0;
        for s in samples {
            match self.encode(s) {
                Some(e) => out.push(e),
                None => skipped += 1,
            }
        }
        (out, skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::sentence;
    use crate::TaskId;

    fn sample() -> Sample {
        Sample::new(
            TaskId::SingleSupportingFact,
            vec![
                sentence(&["mary", "moved", "to", "the", "kitchen"]),
                sentence(&["john", "went", "to", "the", "garden"]),
            ],
            sentence(&["where", "is", "mary"]),
            "kitchen",
            vec![0],
        )
    }

    fn encoder() -> Encoder {
        let v = Vocab::from_samples([&sample()]).with_time_tokens(4);
        Encoder::with_time_tokens(v, 4)
    }

    #[test]
    fn encode_appends_time_tokens_most_recent_zero() {
        let enc = encoder();
        let e = enc.encode(&sample()).unwrap();
        let v = enc.vocab();
        // Sentence 0 is the older one → <t1>; sentence 1 → <t0>.
        assert_eq!(*e.sentences[0].last().unwrap(), v.index_of("<t1>").unwrap());
        assert_eq!(*e.sentences[1].last().unwrap(), v.index_of("<t0>").unwrap());
    }

    #[test]
    fn encode_without_time_tokens_keeps_raw_lengths() {
        let v = Vocab::from_samples([&sample()]);
        let enc = Encoder::with_time_tokens(v, 0);
        let e = enc.encode(&sample()).unwrap();
        assert_eq!(e.sentences[0].len(), 5);
        assert_eq!(e.story_words(), 10);
    }

    #[test]
    fn old_sentences_share_oldest_marker() {
        let mut story = Vec::new();
        for _ in 0..6 {
            story.push(sentence(&["mary", "moved", "to", "the", "kitchen"]));
        }
        let s = Sample::new(
            TaskId::SingleSupportingFact,
            story,
            sentence(&["where", "is", "mary"]),
            "kitchen",
            vec![0],
        );
        let v = Vocab::from_samples([&s]).with_time_tokens(3);
        let enc = Encoder::with_time_tokens(v, 3);
        let e = enc.encode(&s).unwrap();
        let oldest = enc.vocab().index_of("<t2>").unwrap();
        assert_eq!(*e.sentences[0].last().unwrap(), oldest);
        assert_eq!(*e.sentences[1].last().unwrap(), oldest);
        assert_eq!(*e.sentences[2].last().unwrap(), oldest);
        assert_ne!(*e.sentences[5].last().unwrap(), oldest);
    }

    #[test]
    fn out_of_vocab_returns_none() {
        let enc = encoder();
        let mut s = sample();
        s.answer = "zebra".into();
        assert!(enc.encode(&s).is_none());
    }

    #[test]
    fn encode_all_reports_skips() {
        let enc = encoder();
        let good = sample();
        let mut bad = sample();
        bad.question[0] = "unknown".into();
        let (out, skipped) = enc.encode_all([&good, &bad]);
        assert_eq!(out.len(), 1);
        assert_eq!(skipped, 1);
    }
}
