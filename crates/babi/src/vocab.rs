//! Token ↔ index vocabulary.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::Sample;

/// A bidirectional token ↔ index map.
///
/// Index 0 is reserved for the padding token `<pad>`; temporal tokens
/// (`<t0>`, `<t1>`, …) are appended by [`Vocab::with_time_tokens`]. The
/// vocabulary size is the output dimension `|I|` of the model's output layer
/// (answers are predicted over the whole vocabulary, as in the paper's NLP
/// setting where `|I| >> |E|`).
///
/// ```
/// use mann_babi::Vocab;
///
/// let mut v = Vocab::new();
/// let i = v.intern("kitchen");
/// assert_eq!(v.index_of("kitchen"), Some(i));
/// assert_eq!(v.token(i), Some("kitchen"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Vocab {
    tokens: Vec<String>,
    index: HashMap<String, usize>,
}

/// The reserved padding token at index 0.
pub const PAD: &str = "<pad>";

impl Vocab {
    /// Creates a vocabulary containing only the padding token.
    pub fn new() -> Self {
        let mut v = Self {
            tokens: Vec::new(),
            index: HashMap::new(),
        };
        v.intern(PAD);
        v
    }

    /// Builds a vocabulary over all tokens of `samples`, in first-seen order.
    pub fn from_samples<'a, I: IntoIterator<Item = &'a Sample>>(samples: I) -> Self {
        let mut v = Self::new();
        for s in samples {
            for tok in s.tokens() {
                v.intern(tok);
            }
        }
        v
    }

    /// Appends `n` temporal tokens `<t0>..<t{n-1}>` (most-recent-first
    /// sentence age markers used by the encoder).
    pub fn with_time_tokens(mut self, n: usize) -> Self {
        for i in 0..n {
            self.intern(&format!("<t{i}>"));
        }
        self
    }

    /// Returns the index of `token`, inserting it if absent.
    pub fn intern(&mut self, token: &str) -> usize {
        if let Some(&i) = self.index.get(token) {
            return i;
        }
        let i = self.tokens.len();
        self.tokens.push(token.to_owned());
        self.index.insert(token.to_owned(), i);
        i
    }

    /// Index of `token`, or `None` when out of vocabulary.
    pub fn index_of(&self, token: &str) -> Option<usize> {
        self.index.get(token).copied()
    }

    /// Token at `index`, or `None` when out of range.
    pub fn token(&self, index: usize) -> Option<&str> {
        self.tokens.get(index).map(String::as_str)
    }

    /// Number of tokens including `<pad>` — the model's `|I|`.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether only structural tokens exist.
    pub fn is_empty(&self) -> bool {
        self.tokens.len() <= 1
    }

    /// Iterates over `(index, token)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.tokens.iter().enumerate().map(|(i, t)| (i, t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::sentence;
    use crate::TaskId;

    #[test]
    fn pad_is_index_zero() {
        let v = Vocab::new();
        assert_eq!(v.index_of(PAD), Some(0));
        assert_eq!(v.token(0), Some(PAD));
    }

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern("apple");
        let b = v.intern("apple");
        assert_eq!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn from_samples_covers_answers() {
        let s = Sample::new(
            TaskId::SingleSupportingFact,
            vec![sentence(&["mary", "moved", "to", "the", "kitchen"])],
            sentence(&["where", "is", "mary"]),
            "kitchen",
            vec![0],
        );
        let v = Vocab::from_samples([&s]);
        assert!(v.index_of("kitchen").is_some());
        assert!(v.index_of("where").is_some());
        // "mary" appears twice but is interned once.
        assert_eq!(v.iter().filter(|(_, t)| *t == "mary").count(), 1);
    }

    #[test]
    fn time_tokens_are_appended() {
        let v = Vocab::new().with_time_tokens(3);
        assert!(v.index_of("<t0>").is_some());
        assert!(v.index_of("<t2>").is_some());
        assert!(v.index_of("<t3>").is_none());
    }

    #[test]
    fn unknown_lookups_return_none() {
        let v = Vocab::new();
        assert_eq!(v.index_of("zebra"), None);
        assert_eq!(v.token(99), None);
    }
}
