//! Deterministic train/test dataset construction.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{Sample, TaskId};

/// Train and test samples for one task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskData {
    /// The generating task.
    pub task: TaskId,
    /// Training samples.
    pub train: Vec<Sample>,
    /// Held-out test samples.
    pub test: Vec<Sample>,
}

impl TaskData {
    /// Longest story length across both splits — sizes the accelerator's
    /// memory (`L` in paper Eq 1).
    pub fn max_story_len(&self) -> usize {
        self.train
            .iter()
            .chain(&self.test)
            .map(|s| s.story.len())
            .max()
            .unwrap_or(0)
    }
}

/// Builder for deterministic task datasets.
///
/// Train and test splits are generated from *independent* RNG streams
/// derived from the seed and task number, so resizing one split never
/// perturbs the other.
///
/// ```
/// use mann_babi::{DatasetBuilder, TaskId};
///
/// let a = DatasetBuilder::new().seed(1).train_samples(10).test_samples(5)
///     .build_task(TaskId::Counting);
/// let b = DatasetBuilder::new().seed(1).train_samples(10).test_samples(5)
///     .build_task(TaskId::Counting);
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetBuilder {
    n_train: usize,
    n_test: usize,
    seed: u64,
    story_sentences: usize,
}

impl Default for DatasetBuilder {
    fn default() -> Self {
        Self {
            n_train: 1000,
            n_test: 100,
            seed: 0,
            story_sentences: 0,
        }
    }
}

impl DatasetBuilder {
    /// Creates a builder with bAbI-like defaults (1000 train, 100 test,
    /// seed 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of training samples.
    pub fn train_samples(mut self, n: usize) -> Self {
        self.n_train = n;
        self
    }

    /// Sets the number of test samples.
    pub fn test_samples(mut self, n: usize) -> Self {
        self.n_test = n;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins every story to `sentences` sentences (0 keeps each task's
    /// default shape). The hint is best-effort per task — see
    /// [`crate::TaskGenerator::generate_with_story_len`]; task 1 honors it
    /// exactly, which is the memory-scaling workload.
    pub fn story_sentences(mut self, sentences: usize) -> Self {
        self.story_sentences = sentences;
        self
    }

    /// Generates the dataset for one task.
    pub fn build_task(&self, task: TaskId) -> TaskData {
        let gen = task.generator();
        let tn = task.number() as u64;
        let mut train_rng = StdRng::seed_from_u64(self.seed ^ (tn << 32) ^ 0x7261_696e);
        let mut test_rng = StdRng::seed_from_u64(self.seed ^ (tn << 32) ^ 0x7465_7374);
        // The unsized branch calls `generate` directly so pre-knob datasets
        // draw the RNG identically (goldens stay byte-stable).
        let draw = |rng: &mut StdRng| {
            if self.story_sentences == 0 {
                gen.generate(rng)
            } else {
                gen.generate_with_story_len(rng, self.story_sentences)
            }
        };
        let train = (0..self.n_train).map(|_| draw(&mut train_rng)).collect();
        let test = (0..self.n_test).map(|_| draw(&mut test_rng)).collect();
        TaskData { task, train, test }
    }

    /// Generates datasets for all 20 tasks, in paper order.
    pub fn build_all(&self) -> Vec<TaskData> {
        TaskId::all().iter().map(|&t| self.build_task(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_sizes_match_request() {
        let d = DatasetBuilder::new()
            .train_samples(7)
            .test_samples(3)
            .build_task(TaskId::SingleSupportingFact);
        assert_eq!(d.train.len(), 7);
        assert_eq!(d.test.len(), 3);
    }

    #[test]
    fn train_and_test_streams_are_independent() {
        let small = DatasetBuilder::new()
            .train_samples(5)
            .test_samples(5)
            .seed(9)
            .build_task(TaskId::Counting);
        let big = DatasetBuilder::new()
            .train_samples(50)
            .test_samples(5)
            .seed(9)
            .build_task(TaskId::Counting);
        assert_eq!(small.test, big.test, "resizing train perturbed test");
        assert_eq!(small.train[..5], big.train[..5]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetBuilder::new()
            .seed(1)
            .train_samples(5)
            .build_task(TaskId::YesNoQuestions);
        let b = DatasetBuilder::new()
            .seed(2)
            .train_samples(5)
            .build_task(TaskId::YesNoQuestions);
        assert_ne!(a.train, b.train);
    }

    #[test]
    fn build_all_covers_twenty_tasks() {
        let all = DatasetBuilder::new()
            .train_samples(2)
            .test_samples(1)
            .build_all();
        assert_eq!(all.len(), 20);
        for (i, d) in all.iter().enumerate() {
            assert_eq!(d.task.number(), i + 1);
        }
    }

    #[test]
    fn story_sentences_knob_pins_task1_story_lengths() {
        let sized = DatasetBuilder::new()
            .train_samples(4)
            .test_samples(2)
            .seed(7)
            .story_sentences(1200)
            .build_task(TaskId::SingleSupportingFact);
        for s in sized.train.iter().chain(&sized.test) {
            assert_eq!(s.story.len(), 1200);
        }
        // Knob unset (0): identical to the pre-knob builder output.
        let default = DatasetBuilder::new()
            .train_samples(4)
            .test_samples(2)
            .seed(7)
            .build_task(TaskId::SingleSupportingFact);
        let zero = DatasetBuilder::new()
            .train_samples(4)
            .test_samples(2)
            .seed(7)
            .story_sentences(0)
            .build_task(TaskId::SingleSupportingFact);
        assert_eq!(default, zero);
    }

    #[test]
    fn max_story_len_is_positive() {
        let d = DatasetBuilder::new()
            .train_samples(10)
            .test_samples(2)
            .build_task(TaskId::TwoSupportingFacts);
        assert!(d.max_story_len() >= 6);
    }
}
