//! Reading and writing the classic bAbI text format.
//!
//! The original corpus ships as numbered-line text files:
//!
//! ```text
//! 1 mary moved to the kitchen .
//! 2 john went to the garden .
//! 3 where is mary ?    kitchen    1
//! ```
//!
//! Line numbers restart at 1 for each new story; question lines carry the
//! answer and the supporting-fact line numbers after tabs. This module
//! serializes generated samples into that exact format and parses it back,
//! so the reproduction can both export its synthetic corpus and — when a
//! real bAbI download is available — run every experiment on the original
//! data unchanged.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{Sample, Sentence, TaskId};

/// Error from parsing a bAbI-format document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBabiError {
    line: usize,
    reason: String,
}

impl ParseBabiError {
    fn new(line: usize, reason: impl Into<String>) -> Self {
        Self {
            line,
            reason: reason.into(),
        }
    }

    /// 1-based line number of the offending line.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseBabiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "babi parse error at line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseBabiError {}

/// Serializes samples into one bAbI-format document. Each sample becomes
/// one story block (line numbering restarts at 1).
pub fn write_babi(samples: &[Sample]) -> String {
    samples.iter().map(Sample::to_babi_text).collect()
}

/// Parses a bAbI-format document into samples labelled with `task`.
///
/// Statement lines accumulate into the current story; each question line
/// (tab-separated answer + supporting facts) closes one sample over the
/// story so far. A line number of 1 starts a new story. Multi-word answers
/// (comma-separated in the original corpus) are joined with `_`, matching
/// the generator convention.
///
/// # Errors
///
/// Returns [`ParseBabiError`] on malformed lines (missing number, question
/// without answer, bad supporting index).
pub fn parse_babi(task: TaskId, text: &str) -> Result<Vec<Sample>, ParseBabiError> {
    let mut samples = Vec::new();
    let mut story: Vec<Sentence> = Vec::new();
    // bAbI supporting-fact references use the block's line numbers, which
    // count question lines too; map them onto story indices.
    let mut line_to_story: HashMap<usize, usize> = HashMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let (num, rest) = line
            .split_once(' ')
            .ok_or_else(|| ParseBabiError::new(lineno, "missing line number"))?;
        let num: usize = num
            .parse()
            .map_err(|_| ParseBabiError::new(lineno, format!("bad line number {num:?}")))?;
        if num == 1 {
            story.clear();
            line_to_story.clear();
        }
        if let Some((question_part, answer_part)) = rest.split_once('\t') {
            // Question line: "<words> ?\t<answer>\t<supports>".
            let question = tokenize(question_part.trim_end_matches(['?', ' ']));
            if question.is_empty() {
                return Err(ParseBabiError::new(lineno, "empty question"));
            }
            let mut tabs = answer_part.split('\t');
            let answer_raw = tabs
                .next()
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .ok_or_else(|| ParseBabiError::new(lineno, "question without answer"))?;
            let answer = answer_raw.replace(',', "_").to_lowercase();
            let supporting = match tabs.next() {
                None => Vec::new(),
                Some(s) => s
                    .split_whitespace()
                    .map(|tok| {
                        let n: usize = tok.parse().map_err(|_| {
                            ParseBabiError::new(lineno, format!("bad supporting index {tok:?}"))
                        })?;
                        line_to_story.get(&n).copied().ok_or_else(|| {
                            ParseBabiError::new(
                                lineno,
                                format!("supporting index {n} beyond story"),
                            )
                        })
                    })
                    .collect::<Result<Vec<usize>, _>>()?,
            };
            samples.push(Sample::new(
                task,
                story.clone(),
                question,
                answer,
                supporting,
            ));
        } else {
            // Statement line.
            let sentence = tokenize(rest.trim_end_matches(['.', ' ']));
            if sentence.is_empty() {
                return Err(ParseBabiError::new(lineno, "empty statement"));
            }
            line_to_story.insert(num, story.len());
            story.push(sentence);
        }
    }
    Ok(samples)
}

fn tokenize(s: &str) -> Sentence {
    s.split_whitespace().map(|w| w.to_lowercase()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetBuilder;

    #[test]
    fn round_trips_generated_samples() {
        for task in TaskId::all() {
            let data = DatasetBuilder::new()
                .train_samples(12)
                .test_samples(0)
                .seed(42)
                .build_task(task);
            let text = write_babi(&data.train);
            let parsed = parse_babi(task, &text).unwrap_or_else(|e| panic!("{task}: {e}"));
            assert_eq!(parsed.len(), data.train.len(), "{task}");
            for (orig, back) in data.train.iter().zip(&parsed) {
                assert_eq!(orig.story, back.story, "{task}");
                assert_eq!(orig.question, back.question, "{task}");
                assert_eq!(orig.answer, back.answer, "{task}");
                assert_eq!(orig.supporting, back.supporting, "{task}");
            }
        }
    }

    #[test]
    fn parses_the_canonical_example() {
        let text = "1 Mary moved to the bathroom .\n\
                    2 John went to the hallway .\n\
                    3 Where is Mary ?\tbathroom\t1\n\
                    1 Daniel went back to the hallway .\n\
                    2 Where is Daniel ?\thallway\t1\n";
        let samples = parse_babi(TaskId::SingleSupportingFact, text).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].answer, "bathroom");
        assert_eq!(samples[0].supporting, vec![0]);
        assert_eq!(samples[0].story.len(), 2);
        // Line numbering reset started a fresh story.
        assert_eq!(samples[1].story.len(), 1);
        assert_eq!(samples[1].story[0][0], "daniel");
    }

    #[test]
    fn multiple_questions_share_a_growing_story() {
        let text = "1 mary moved to the kitchen .\n\
                    2 where is mary ?\tkitchen\t1\n\
                    3 mary moved to the garden .\n\
                    4 where is mary ?\tgarden\t3\n";
        let samples = parse_babi(TaskId::SingleSupportingFact, text).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].story.len(), 1);
        assert_eq!(samples[1].story.len(), 2);
        assert_eq!(samples[1].supporting, vec![1]);
    }

    #[test]
    fn comma_answers_become_compound_tokens() {
        let text = "1 mary picked up the milk .\n\
                    2 mary picked up the apple .\n\
                    3 what is mary carrying ?\tmilk,apple\t1 2\n";
        let samples = parse_babi(TaskId::ListsSets, text).unwrap();
        assert_eq!(samples[0].answer, "milk_apple");
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let missing_number = "mary moved .\n";
        let err = parse_babi(TaskId::SingleSupportingFact, missing_number).unwrap_err();
        assert_eq!(err.line(), 1);

        let bad_support = "1 mary moved to the kitchen .\n2 where is mary ?\tkitchen\tseven\n";
        let err = parse_babi(TaskId::SingleSupportingFact, bad_support).unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("supporting"));

        let out_of_range = "1 mary moved to the kitchen .\n2 where is mary ?\tkitchen\t9\n";
        let err = parse_babi(TaskId::SingleSupportingFact, out_of_range).unwrap_err();
        assert!(err.to_string().contains("beyond story"));
    }

    #[test]
    fn blank_lines_are_ignored() {
        let text = "\n1 mary moved to the kitchen .\n\n2 where is mary ?\tkitchen\t1\n\n";
        let samples = parse_babi(TaskId::SingleSupportingFact, text).unwrap();
        assert_eq!(samples.len(), 1);
    }
}
