//! Shared entity pools and sampling helpers for the task generators.
//!
//! These mirror the entity inventories of the original bAbI corpus so the
//! generated vocabularies have comparable sizes.

use rand::seq::SliceRandom;
use rand::Rng;

/// Person names used across tasks.
pub const PERSONS: &[&str] = &[
    "mary", "john", "daniel", "sandra", "fred", "bill", "jeff", "julie",
];

/// Room / place names.
pub const LOCATIONS: &[&str] = &[
    "kitchen", "garden", "office", "bathroom", "bedroom", "hallway", "park", "school", "cinema",
];

/// Portable objects.
pub const OBJECTS: &[&str] = &[
    "apple",
    "football",
    "milk",
    "book",
    "ball",
    "cake",
    "newspaper",
];

/// Movement verbs (synonyms; all mean "moved").
pub const MOVE_VERBS: &[&str] = &["moved", "went", "travelled", "journeyed"];

/// Compass directions.
pub const DIRECTIONS: &[&str] = &["north", "south", "east", "west"];

/// Animal species for the deduction/induction tasks.
pub const SPECIES: &[&str] = &["mouse", "cat", "wolf", "sheep", "swan", "frog", "lion"];

/// Given names for animals.
pub const ANIMAL_NAMES: &[&str] = &["gertrude", "lily", "bernhard", "brian", "greg", "emily"];

/// Colors for the induction task.
pub const COLORS: &[&str] = &["white", "gray", "yellow", "green"];

/// Geometric shapes for positional reasoning.
pub const SHAPES: &[&str] = &["triangle", "square", "circle", "rectangle"];

/// Containers ordered by size (smallest first) for size reasoning.
pub const SIZED_ITEMS: &[&str] = &["chocolate", "box", "suitcase", "chest", "container"];

/// Motivational states and the place each one sends an agent to.
pub const MOTIVATIONS: &[(&str, &str)] = &[
    ("hungry", "kitchen"),
    ("thirsty", "kitchen"),
    ("tired", "bedroom"),
    ("bored", "garden"),
];

/// Picks one element of `pool` uniformly.
///
/// # Panics
///
/// Panics if `pool` is empty.
pub fn pick<'a, R: Rng>(rng: &mut R, pool: &[&'a str]) -> &'a str {
    pool.choose(rng).expect("non-empty pool")
}

/// Picks `n` distinct elements of `pool` (order randomized).
///
/// # Panics
///
/// Panics if `n > pool.len()`.
pub fn pick_distinct<'a, R: Rng>(rng: &mut R, pool: &[&'a str], n: usize) -> Vec<&'a str> {
    assert!(
        n <= pool.len(),
        "cannot pick {n} from pool of {}",
        pool.len()
    );
    let mut shuffled: Vec<&str> = pool.to_vec();
    shuffled.shuffle(rng);
    shuffled.truncate(n);
    shuffled
}

/// Picks one element different from `not` (assumes `pool` has ≥ 2 distinct
/// entries).
pub fn pick_other<'a, R: Rng>(rng: &mut R, pool: &[&'a str], not: &str) -> &'a str {
    loop {
        let c = pick(rng, pool);
        if c != not {
            return c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pools_are_nonempty_and_lowercase() {
        for pool in [
            PERSONS,
            LOCATIONS,
            OBJECTS,
            MOVE_VERBS,
            DIRECTIONS,
            SPECIES,
            ANIMAL_NAMES,
            COLORS,
            SHAPES,
            SIZED_ITEMS,
        ] {
            assert!(!pool.is_empty());
            for w in pool {
                assert_eq!(*w, w.to_lowercase());
                assert!(!w.contains(' '));
            }
        }
    }

    #[test]
    fn pick_distinct_returns_unique() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let picked = pick_distinct(&mut rng, PERSONS, 4);
            let mut sorted = picked.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4);
        }
    }

    #[test]
    fn pick_other_avoids_excluded() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_ne!(pick_other(&mut rng, LOCATIONS, "kitchen"), "kitchen");
        }
    }

    #[test]
    fn motivations_map_to_known_locations() {
        for (_, loc) in MOTIVATIONS {
            assert!(LOCATIONS.contains(loc));
        }
    }
}
