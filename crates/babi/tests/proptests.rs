//! Property-based tests over all 20 task generators and the encoder.

use mann_babi::{DatasetBuilder, Encoder, TaskId, Vocab};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generator, under any seed, produces structurally valid samples.
    #[test]
    fn all_generators_are_well_formed(seed in any::<u64>(), task_no in 1usize..=20) {
        let task = TaskId::from_number(task_no).expect("valid task number");
        let g = task.generator();
        let mut rng = StdRng::seed_from_u64(seed);
        let s = g.generate(&mut rng);
        prop_assert_eq!(s.task, task);
        prop_assert!(!s.story.is_empty());
        prop_assert!((1..=30).contains(&s.story.len()), "story length {}", s.story.len());
        prop_assert!(!s.question.is_empty());
        prop_assert!(!s.answer.is_empty());
        prop_assert!(s.supporting.iter().all(|&i| i < s.story.len()));
        // Tokens are lowercase single words.
        for tok in s.tokens() {
            prop_assert!(!tok.contains(' '));
            prop_assert_eq!(tok.to_lowercase(), tok);
        }
    }

    /// The encoder round-trips any generated sample when the vocabulary is
    /// built from it.
    #[test]
    fn encoder_round_trips_generated_samples(seed in any::<u64>(), task_no in 1usize..=20) {
        let task = TaskId::from_number(task_no).expect("valid task number");
        let g = task.generator();
        let mut rng = StdRng::seed_from_u64(seed);
        let s = g.generate(&mut rng);
        let vocab = Vocab::from_samples([&s]).with_time_tokens(Encoder::DEFAULT_TIME_TOKENS);
        let enc = Encoder::new(vocab);
        let e = enc.encode(&s).expect("sample tokens are in its own vocab");
        prop_assert_eq!(e.sentences.len(), s.story.len());
        prop_assert_eq!(enc.vocab().token(e.answer), Some(s.answer.as_str()));
        // Each encoded sentence has the original words plus one time token.
        for (enc_sent, txt_sent) in e.sentences.iter().zip(&s.story) {
            prop_assert_eq!(enc_sent.len(), txt_sent.len() + 1);
        }
    }

    /// Dataset builds are deterministic functions of (seed, sizes, task).
    #[test]
    fn dataset_builder_is_deterministic(seed in any::<u64>(), task_no in 1usize..=20) {
        let task = TaskId::from_number(task_no).expect("valid task number");
        let mk = || DatasetBuilder::new().seed(seed).train_samples(6).test_samples(3).build_task(task);
        prop_assert_eq!(mk(), mk());
    }
}

/// Vocabulary sizes across tasks stay in the range the paper's output layer
/// assumes (|I| in the tens-to-hundreds, well above the embedding dim).
#[test]
fn vocabulary_sizes_are_babi_like() {
    for task in TaskId::all() {
        let data = DatasetBuilder::new()
            .train_samples(200)
            .test_samples(50)
            .seed(7)
            .build_task(task);
        let vocab = Vocab::from_samples(data.train.iter().chain(&data.test));
        let n = vocab.len();
        assert!(
            (10..=200).contains(&n),
            "{task}: vocabulary size {n} outside bAbI-like range"
        );
    }
}

/// Every answer token also appears in some question or story across a large
/// sample, so the output classes are learnable.
#[test]
fn answers_are_within_answerable_class_sets() {
    for task in TaskId::all() {
        let data = DatasetBuilder::new()
            .train_samples(300)
            .test_samples(100)
            .seed(11)
            .build_task(task);
        let train_answers: std::collections::HashSet<&str> =
            data.train.iter().map(|s| s.answer.as_str()).collect();
        let unseen = data
            .test
            .iter()
            .filter(|s| !train_answers.contains(s.answer.as_str()))
            .count();
        // Allow a small tail of unseen classes (compound answers in tasks 8/19).
        let frac = unseen as f32 / data.test.len() as f32;
        assert!(frac < 0.1, "{task}: {frac} of test answers unseen in train");
    }
}
