//! Benchmark harnesses for the reproduction.
//!
//! * Binaries (`src/bin/`) regenerate the paper's tables and figures:
//!   `table1`, `fig2b`, `fig3`, `fig4`, `ablation`. Each accepts
//!   `--tasks N`, `--train N`, `--test N` and `--seed N` to trade fidelity
//!   for runtime (defaults reproduce the full 20-task suite).
//! * Criterion benches (`benches/`) measure the component kernels: the
//!   softmax/attention datapath, MIPS strategies, the cycle-level modules,
//!   and the end-to-end simulator.

use mann_babi::TaskId;
use mann_core::SuiteConfig;

/// Parsed command-line options shared by the reproduction binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Number of tasks (1–20, taken from the front of the paper ordering).
    pub tasks: usize,
    /// Training samples per task.
    pub train: usize,
    /// Test samples per task.
    pub test: usize,
    /// Master seed.
    pub seed: u64,
    /// Timing repetitions (Table I uses 100).
    pub reps: u64,
    /// Train one joint model over all tasks (the paper's setting) instead
    /// of per-task models.
    pub joint: bool,
    /// Exact sentence count per generated story (0 = task defaults).
    /// Large values put the serve path in the regime the MEM candidate
    /// index targets (DESIGN.md §15).
    pub story_sentences: usize,
}

impl Default for HarnessArgs {
    /// Paper-scale defaults: all 20 tasks, 1000/100 splits, 100 reps.
    fn default() -> Self {
        Self {
            tasks: 20,
            train: 1000,
            test: 100,
            seed: 0,
            reps: 100,
            joint: false,
            story_sentences: 0,
        }
    }
}

impl HarnessArgs {
    /// Parses `--key value` pairs from an iterator of arguments
    /// (unknown keys are ignored so binaries can add their own).
    ///
    /// # Panics
    ///
    /// Panics with a usage message when a value is missing or unparsable.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(key) = it.next() {
            let mut grab = |name: &str| -> u64 {
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("usage: {name} <number>"))
            };
            match key.as_str() {
                "--tasks" => out.tasks = grab("--tasks") as usize,
                "--train" => out.train = grab("--train") as usize,
                "--test" => out.test = grab("--test") as usize,
                "--seed" => out.seed = grab("--seed"),
                "--reps" => out.reps = grab("--reps"),
                "--story-sentences" => {
                    out.story_sentences = grab("--story-sentences") as usize;
                }
                "--joint" => out.joint = true,
                _ => {}
            }
        }
        out.tasks = out.tasks.clamp(1, 20);
        out
    }

    /// Converts the arguments into a suite configuration (quick model
    /// hyper-parameters, the requested data sizes).
    pub fn suite_config(&self) -> SuiteConfig {
        let mut cfg = SuiteConfig::quick();
        cfg.tasks = TaskId::all()[..self.tasks].to_vec();
        cfg.train_samples = self.train;
        cfg.test_samples = self.test;
        cfg.seed = self.seed;
        cfg.story_sentences = self.story_sentences;
        cfg
    }

    /// Builds the suite per the `--joint` flag, going through the shared
    /// disk cache: the first experiment binary to run a configuration
    /// trains it, the rest (`table1`, `fig3`, `fig4`, `ablation`, …) load
    /// the trained suite from `target/suite-cache/` in milliseconds. Set
    /// `MANN_SUITE_CACHE=<dir>` to relocate the cache or
    /// `MANN_SUITE_CACHE=off` to always retrain.
    pub fn build_suite(&self) -> mann_core::TaskSuite {
        let cfg = self.suite_config();
        let (variant, build): (_, fn(&SuiteConfig) -> mann_core::TaskSuite) = if self.joint {
            ("joint", mann_core::TaskSuite::build_joint)
        } else {
            ("per-task", mann_core::TaskSuite::build)
        };
        match mann_core::SuiteCache::from_env() {
            Some(cache) => {
                let hit = cache.load(&cfg, variant);
                if hit.is_some() {
                    eprintln!("[suite] loaded trained suite from cache");
                }
                hit.unwrap_or_else(|| {
                    let suite = build(&cfg);
                    if cache.store(&suite, variant).is_ok() {
                        eprintln!("[suite] cached trained suite for reuse");
                    }
                    suite
                })
            }
            None => build(&cfg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_reads_known_flags_and_ignores_others() {
        let a = HarnessArgs::parse(
            [
                "--tasks",
                "3",
                "--zzz",
                "--train",
                "50",
                "--reps",
                "7",
                "--story-sentences",
                "500",
                "--joint",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        );
        assert_eq!(a.tasks, 3);
        assert_eq!(a.train, 50);
        assert_eq!(a.reps, 7);
        assert_eq!(a.story_sentences, 500);
        assert!(a.joint);
        assert_eq!(a.test, HarnessArgs::default().test);
    }

    #[test]
    fn tasks_are_clamped() {
        let a = HarnessArgs::parse(["--tasks", "99"].iter().map(|s| (*s).to_owned()));
        assert_eq!(a.tasks, 20);
    }

    #[test]
    fn suite_config_reflects_args() {
        let a = HarnessArgs {
            tasks: 2,
            train: 10,
            test: 5,
            seed: 9,
            reps: 1,
            joint: false,
            story_sentences: 321,
        };
        let cfg = a.suite_config();
        assert_eq!(cfg.tasks.len(), 2);
        assert_eq!(cfg.train_samples, 10);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.story_sentences, 321);
    }
}
