//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! * A1 — fixed-point fractional width vs accelerator accuracy;
//! * A2 — KDE kernel (Epanechnikov vs Gaussian) and index ordering;
//! * A3 — exponential-LUT size vs softmax fidelity;
//! * A4 — OUTPUT-module lane count vs cycle breakdown (why the paper's
//!   sequential output layer makes thresholding matter).
//!
//! ```sh
//! cargo run -p mann-bench --release --bin ablation -- --tasks 2 --train 300 --test 40
//! ```

use mann_babi::TaskId;
use mann_bench::HarnessArgs;
use mann_core::report::{percent, TextTable};
use mann_core::TaskSuite;
use mann_hw::{AccelConfig, Accelerator, ClockDomain, DatapathConfig};
use mann_ith::search::{ExhaustiveMips, MipsStrategy, ThresholdedMips};
use mann_ith::{Kernel, LogitStats, ThresholdingCalibrator};
use mann_linalg::activation::ExpLut;
use memn2n::forward::forward_until_output;
use rand::{Rng, SeedableRng};

/// Builds a suite through the shared disk cache (`MANN_SUITE_CACHE`), so
/// repeated ablation runs — and the other experiment binaries — reuse
/// already-trained models.
fn build_cached(cfg: &mann_core::SuiteConfig) -> TaskSuite {
    match mann_core::SuiteCache::from_env() {
        Some(cache) => cache.load_or_build(cfg, "per-task", TaskSuite::build),
        None => TaskSuite::build(cfg),
    }
}

fn main() {
    let mut args = HarnessArgs::parse(std::env::args().skip(1));
    if args.tasks == HarnessArgs::default().tasks {
        args.tasks = 3; // ablations don't need the full suite by default
        args.train = 400;
        args.test = 50;
    }
    let mut cfg = args.suite_config();
    cfg.tasks = vec![
        TaskId::SingleSupportingFact,
        TaskId::YesNoQuestions,
        TaskId::AgentMotivations,
    ]
    .into_iter()
    .take(args.tasks)
    .collect();
    eprintln!("[ablation] training {} tasks ...", cfg.tasks.len());
    let suite = build_cached(&cfg);

    ablation_fixed_width(&suite);
    ablation_kernel_and_ordering(&suite);
    ablation_exp_lut();
    ablation_output_lanes(&suite);
    ablation_large_class(&suite);
    ablation_controller(&cfg);
    ablation_temporal_encoding(&cfg);
    ablation_seu(&suite);
}

/// A1: sweep the datapath's fractional bits and measure answer agreement
/// with the f32 reference.
fn ablation_fixed_width(suite: &TaskSuite) {
    println!("\nA1 — fixed-point fractional width vs accuracy");
    let mut t = TextTable::new(vec![
        "frac bits".into(),
        "HW accuracy".into(),
        "agreement with f32".into(),
    ]);
    for frac_bits in [4u32, 6, 8, 10, 12, 16] {
        let mut correct = 0usize;
        let mut agree = 0usize;
        let mut total = 0usize;
        for task in &suite.tasks {
            let accel = Accelerator::new(
                task.model.clone(),
                AccelConfig {
                    datapath: DatapathConfig {
                        frac_bits,
                        ..DatapathConfig::default()
                    },
                    ..AccelConfig::default()
                },
            );
            for s in &task.test_set {
                let hw = accel.run(s).answer;
                if hw == s.answer {
                    correct += 1;
                }
                if hw == task.model.predict(s) {
                    agree += 1;
                }
                total += 1;
            }
        }
        t.row(vec![
            frac_bits.to_string(),
            percent(correct as f64 / total as f64),
            percent(agree as f64 / total as f64),
        ]);
    }
    println!("{}", t.render());
}

/// A2: KDE kernel x index ordering grid at ρ = 1.0.
fn ablation_kernel_and_ordering(suite: &TaskSuite) {
    println!("A2 — KDE kernel and index ordering (rho = 1.0)");
    let mut t = TextTable::new(vec![
        "kernel".into(),
        "ordering".into(),
        "accuracy".into(),
        "comparisons (norm)".into(),
    ]);
    for kernel in [Kernel::Epanechnikov, Kernel::Gaussian] {
        for ordered in [true, false] {
            let mut correct = 0usize;
            let mut total = 0usize;
            let mut cmp_frac = 0.0f64;
            for task in &suite.tasks {
                let stats = LogitStats::collect(&task.model, &task.train_set);
                let ith = ThresholdingCalibrator::new()
                    .rho(1.0)
                    .kernel(kernel)
                    .calibrate_from_stats(&stats);
                let strategy = if ordered {
                    ThresholdedMips::new(&ith)
                } else {
                    ThresholdedMips::without_ordering(&ith)
                };
                for s in &task.test_set {
                    let h = forward_until_output(&task.model.params, s);
                    let r = strategy.search(&task.model.params, &h);
                    if r.label == s.answer {
                        correct += 1;
                    }
                    cmp_frac += r.comparisons as f64 / task.model.params.vocab_size as f64;
                    total += 1;
                }
            }
            t.row(vec![
                format!("{kernel:?}"),
                if ordered { "yes" } else { "no" }.into(),
                percent(correct as f64 / total as f64),
                percent(cmp_frac / total as f64),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "note: the Gaussian kernel's infinite support keeps the posterior\n\
         below 1.0 everywhere, so rho = 1.0 disables speculation — the\n\
         reason the implementation defaults to Epanechnikov.\n"
    );
}

/// A3: exponential-LUT size vs worst-case error.
fn ablation_exp_lut() {
    println!("A3 — exponential LUT size vs worst-case error (domain [-16, 0])");
    let mut t = TextTable::new(vec![
        "entries".into(),
        "max |error|".into(),
        "BRAM36".into(),
    ]);
    for entries in [16usize, 32, 64, 128, 256, 512, 1024] {
        let lut = ExpLut::new(entries, -16.0);
        let err = lut.max_abs_error(16);
        let bram = ((entries * 32) as f64 / (36.0 * 1024.0)).ceil().max(1.0);
        t.row(vec![
            entries.to_string(),
            format!("{err:.2e}"),
            format!("{bram:.0}"),
        ]);
    }
    println!("{}", t.render());
}

/// A4: OUTPUT lane count vs cycle share of the output phase, with the ITH
/// saving at each point.
fn ablation_output_lanes(suite: &TaskSuite) {
    println!("A4 — OUTPUT module lanes vs cycle breakdown (25 MHz)");
    let mut t = TextTable::new(vec![
        "lanes".into(),
        "output share of compute".into(),
        "ITH compute saving".into(),
    ]);
    let task = &suite.tasks[0];
    for lanes in [1usize, 2, 4, 8, 16] {
        let dp = DatapathConfig {
            output_lanes: lanes,
            ..DatapathConfig::default()
        };
        let base = Accelerator::new(
            task.model.clone(),
            AccelConfig {
                clock: ClockDomain::mhz(25.0),
                datapath: dp,
                ..AccelConfig::default()
            },
        );
        let fast = Accelerator::new(
            task.model.clone(),
            AccelConfig {
                clock: ClockDomain::mhz(25.0),
                datapath: dp,
                ith: Some(task.ith.clone()),
                use_ordering: true,
                ..AccelConfig::default()
            },
        );
        let mut out_cycles = 0u64;
        let mut all_cycles = 0u64;
        let mut fast_cycles = 0u64;
        for s in &task.test_set {
            let b = base.run(s);
            out_cycles += b.phases.output.get();
            all_cycles += b.cycles.get();
            fast_cycles += fast.run(s).cycles.get();
        }
        t.row(vec![
            lanes.to_string(),
            percent(out_cycles as f64 / all_cycles as f64),
            percent(1.0 - fast_cycles as f64 / all_cycles as f64),
        ]);
    }
    println!("{}", t.render());
    println!(
        "note: narrower output datapaths (the paper's \"series of dot\n\
         products\") raise the output share, which is exactly what makes\n\
         inference thresholding pay off."
    );
    // Also verify the exhaustive baseline sanity on this task.
    let h = forward_until_output(&task.model.params, &task.test_set[0]);
    let r = ExhaustiveMips.search(&task.model.params, &h);
    debug_assert_eq!(r.comparisons, task.model.params.vocab_size);
}

/// A8: single-event-upset sensitivity — random bit flips in the weight
/// BRAMs vs accelerator accuracy (the radiation-tolerance question every
/// FPGA deployment eventually gets asked).
fn ablation_seu(suite: &TaskSuite) {
    use mann_hw::fault::inject_upsets_in_bits;
    println!("\nA8 — SEU sensitivity: weight-BRAM bit flips vs accuracy");
    let task = &suite.tasks[0];
    let total_words = task.model.params.parameter_count();
    let mut t = TextTable::new(vec![
        "bit flips".into(),
        "fraction of words".into(),
        "low bits 0-15".into(),
        "high bits 16-31".into(),
    ]);
    let accuracy_with = |upsets: usize, bits: std::ops::Range<u32>| -> f64 {
        // Average over a few injection seeds to smooth out lucky flips.
        let seeds = [1u64, 2, 3];
        let mut acc_sum = 0.0f64;
        for &seed in &seeds {
            let (faulted, _) =
                inject_upsets_in_bits(&task.model.params, upsets, bits.clone(), seed);
            let model = memn2n::TrainedModel {
                task: task.model.task,
                params: faulted,
                encoder: task.model.encoder.clone(),
            };
            let accel = Accelerator::new(model, AccelConfig::default());
            let correct = task
                .test_set
                .iter()
                .filter(|s| accel.run(s).answer == s.answer)
                .count();
            acc_sum += correct as f64 / task.test_set.len() as f64;
        }
        acc_sum / seeds.len() as f64
    };
    for &upsets in &[0usize, 1, 10, 100, 1000] {
        t.row(vec![
            upsets.to_string(),
            format!("{:.4}", upsets as f64 / total_words as f64),
            percent(accuracy_with(upsets, 0..16)),
            percent(accuracy_with(upsets, 16..32)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "note: fractional-bit upsets perturb weights by < 1 ULP..0.5 and are\n\
         absorbed by the argmax — hundreds are tolerable. A single\n\
         integer/sign-bit upset can corrupt an embedding column enough to\n\
         break inference: the high half of every BRAM word is what ECC or\n\
         scrubbing must protect."
    );
}

/// A6: linear (Eq 4) vs gated (GRU) READ controller — what the gating of
/// the LSTM/GRU accelerators the paper cites in §VI-A would cost on this
/// dataflow architecture.
fn ablation_controller(cfg: &mann_core::SuiteConfig) {
    use memn2n::ControllerKind;
    println!("\nA6 — READ controller: linear (paper, Eq 4) vs GRU (25 MHz)");
    let mut t = TextTable::new(vec![
        "controller".into(),
        "test accuracy".into(),
        "controller cycle share".into(),
        "compute cycles / inference".into(),
    ]);
    for controller in [ControllerKind::Linear, ControllerKind::Gru] {
        let mut one = cfg.clone();
        one.tasks = vec![TaskId::SingleSupportingFact];
        one.model.controller = controller;
        let suite = build_cached(&one);
        let task = &suite.tasks[0];
        let accel = Accelerator::new(
            task.model.clone(),
            AccelConfig {
                clock: ClockDomain::mhz(25.0),
                ..AccelConfig::default()
            },
        );
        let mut controller_cycles = 0u64;
        let mut all_cycles = 0u64;
        for s in &task.test_set {
            let run = accel.run(s);
            controller_cycles += run.phases.controller.get();
            all_cycles += run.cycles.get();
        }
        t.row(vec![
            format!("{controller:?}"),
            percent(task.test_accuracy as f64),
            percent(controller_cycles as f64 / all_cycles as f64),
            format!("{}", all_cycles / task.test_set.len() as u64),
        ]);
    }
    println!("{}", t.render());
    println!(
        "note: gating multiplies the controller phase (six matvecs plus\n\
         sigmoid/tanh through the sequential divider) and the per-inference\n\
         cycle count severalfold; it can buy some accuracy, but on the\n\
         energy-per-inference axis the paper optimizes, the linear Eq 4\n\
         controller is the clear design point."
    );
}

/// A7: temporal-token encoding on/off. Movement tasks need to know *when*
/// a fact was written (the answer is the latest location); removing the
/// per-sentence age markers ablates that signal.
fn ablation_temporal_encoding(cfg: &mann_core::SuiteConfig) {
    use mann_babi::DatasetBuilder;
    use memn2n::Trainer;
    println!("\nA7 — temporal encoding (per-sentence age tokens)");
    let mut t = TextTable::new(vec![
        "task".into(),
        "with time tokens".into(),
        "without".into(),
    ]);
    for task in [TaskId::SingleSupportingFact, TaskId::TimeReasoning] {
        let data = DatasetBuilder::new()
            .train_samples(cfg.train_samples)
            .test_samples(cfg.test_samples)
            .seed(cfg.seed)
            .build_task(task);
        let acc = |time_tokens: usize| -> f32 {
            let mut trainer =
                Trainer::from_task_data_with_time_tokens(&data, cfg.model, cfg.train, time_tokens);
            trainer.train().final_test_accuracy
        };
        t.row(vec![
            task.to_string(),
            percent(acc(20) as f64),
            percent(acc(0) as f64),
        ]);
    }
    println!("{}", t.render());
    println!(
        "note: bag-of-words memories are order-free; the temporal tokens\n\
         are what lets attention find the most recent fact."
    );
}

/// A5: the paper's future-work claim — "our data-based MIPS will find
/// applications in large-class inference". The trained output layer is
/// padded with low-energy distractor classes (never the answer, as in a
/// production vocabulary full of rare words); exhaustive search must scan
/// them all, thresholding with silhouette ordering skips the tail.
fn ablation_large_class(suite: &TaskSuite) {
    println!("\nA5 — inference thresholding in large-class inference (future work)");
    let task = &suite.tasks[0];
    let mut t = TextTable::new(vec![
        "|I| (classes)".into(),
        "ITH comparisons (norm)".into(),
        "ITH accuracy".into(),
        "exhaustive accuracy".into(),
    ]);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    for &extra in &[0usize, 200, 1000, 4000] {
        // Enlarge the output layer with distractor rows.
        let mut params = task.model.params.clone();
        let e = params.config.embed_dim;
        let base_rows = params.w_o.rows();
        let mut flat = params.w_o.as_slice().to_vec();
        for _ in 0..extra * e {
            flat.push(rng.gen_range(-0.02f32..0.02));
        }
        params.w_o =
            mann_linalg::Matrix::from_flat(base_rows + extra, e, flat).expect("consistent dims");
        params.vocab_size = base_rows + extra;
        let model = memn2n::TrainedModel {
            task: task.model.task,
            params,
            encoder: task.model.encoder.clone(),
        };

        // Recalibrate on the enlarged model (Steps 1-3 run as-is; the
        // distractors never appear as answers so they get no thresholds and
        // sink to the end of the probe order).
        let ith = ThresholdingCalibrator::new()
            .rho(1.0)
            .calibrate(&model, &task.train_set);
        let strategy = ThresholdedMips::new(&ith);
        let classes = model.params.vocab_size as f64;
        let mut cmp_frac = 0.0f64;
        let mut ith_correct = 0usize;
        let mut exact_correct = 0usize;
        for s in &task.test_set {
            let h = forward_until_output(&model.params, s);
            let r = strategy.search(&model.params, &h);
            cmp_frac += r.comparisons as f64 / classes;
            if r.label == s.answer {
                ith_correct += 1;
            }
            if ExhaustiveMips.search(&model.params, &h).label == s.answer {
                exact_correct += 1;
            }
        }
        let n = task.test_set.len() as f64;
        t.row(vec![
            (base_rows + extra).to_string(),
            percent(cmp_frac / n),
            percent(ith_correct as f64 / n),
            percent(exact_correct as f64 / n),
        ]);
    }
    println!("{}", t.render());
    println!(
        "note: speculated queries exit after a handful of probes regardless\n\
         of |I|, so their cost amortizes to ~0; the residual normalized\n\
         count is the floor set by non-speculated queries, which must still\n\
         scan everything. Accuracy is untouched — the regime\n\
         (large-vocabulary NLP) the paper's conclusion targets."
    );
}
