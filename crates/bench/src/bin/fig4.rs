//! Regenerates Fig 4: per-task energy efficiency of every configuration,
//! normalized to the GPU.
//!
//! ```sh
//! cargo run -p mann-bench --release --bin fig4
//! cargo run -p mann-bench --release --bin fig4 -- --tasks 6 --train 300 --test 40
//! ```

use mann_bench::HarnessArgs;
use mann_core::experiments::fig4;

fn main() {
    let args = HarnessArgs::parse(std::env::args().skip(1));
    eprintln!(
        "[fig4] training {} tasks ({} train / {} test, seed {}) ...",
        args.tasks, args.train, args.test, args.seed
    );
    let suite = args.build_suite();
    eprintln!(
        "[fig4] mean test accuracy {:.1}%",
        suite.mean_accuracy() * 100.0
    );

    let fig = fig4::run(&suite);
    println!(
        "Fig 4 — per-task energy efficiency vs GPU ({} tasks)",
        suite.tasks.len()
    );
    println!("{}", fig.render());
    println!("Geometric means across tasks:");
    for (i, name) in fig4::FIG4_CONFIGS.iter().enumerate() {
        println!("  {name:<18} {:.2}x", fig.geomean(i));
    }
    println!(
        "\nPaper shape: the FPGA configurations dominate the GPU on every\n\
         task (tens to hundreds of times more efficient); ITH widens the\n\
         margin; the CPU sits near the GPU (≈1.7x)."
    );
    if let Ok(json) = serde_json::to_string_pretty(&fig) {
        let _ = std::fs::create_dir_all("target/experiments");
        let path = "target/experiments/fig4.json";
        if std::fs::write(path, json).is_ok() {
            eprintln!("[fig4] results written to {path}");
        }
    }
}
