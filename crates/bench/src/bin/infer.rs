//! Loads a trained model bundle and answers freshly generated questions on
//! the simulated accelerator — the deployment half of the train/infer
//! workflow.
//!
//! ```sh
//! cargo run -p mann-bench --release --bin train -- --task 1 --out model.json
//! cargo run -p mann-bench --release --bin infer -- --model model.json --questions 5 --mhz 100
//! ```

use mann_babi::DatasetBuilder;
use mann_core::ModelBundle;
use mann_hw::{AccelConfig, Accelerator, ClockDomain};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut path = "model.json".to_owned();
    let mut questions = 5usize;
    let mut mhz = 100.0f64;
    let mut ith = true;
    let mut it = raw.iter();
    while let Some(k) = it.next() {
        match k.as_str() {
            "--model" => path = it.next().expect("--model <path>").clone(),
            "--questions" => {
                questions = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--questions <n>")
            }
            "--mhz" => mhz = it.next().and_then(|v| v.parse().ok()).expect("--mhz <f>"),
            "--no-ith" => ith = false,
            _ => {}
        }
    }
    let bundle = ModelBundle::load(&path).expect("load bundle");
    let task = bundle.model.task;
    eprintln!(
        "[infer] loaded {task} model ({} classes, recorded accuracy {:.1}%)",
        bundle.ith.classes(),
        bundle.test_accuracy * 100.0
    );

    let config = if ith {
        AccelConfig::with_thresholding(ClockDomain::mhz(mhz), bundle.ith.clone())
    } else {
        AccelConfig {
            clock: ClockDomain::mhz(mhz),
            ..AccelConfig::default()
        }
    };
    let accel = Accelerator::new(bundle.model.clone(), config);

    // Fresh questions from the same generator (an unseen split).
    let data = DatasetBuilder::new()
        .train_samples(0)
        .test_samples(questions)
        .seed(0xFEED)
        .build_task(task);
    let vocab = bundle.model.encoder.vocab();
    let mut correct = 0usize;
    for (text, sample) in data.test.iter().zip(
        data.test
            .iter()
            .filter_map(|s| bundle.model.encoder.encode(s)),
    ) {
        let run = accel.run(&sample);
        let predicted = vocab.token(run.answer).unwrap_or("?");
        let ok = run.answer == sample.answer;
        if ok {
            correct += 1;
        }
        let verdict = if ok {
            "correct".to_owned()
        } else {
            format!("expected {}", text.answer)
        };
        println!(
            "Q: {} ? -> {predicted} ({verdict}; {} cycles, {:.1} us{})",
            text.question.join(" "),
            run.cycles.get(),
            run.total_s * 1e6,
            if run.speculated { ", speculated" } else { "" },
        );
    }
    println!("accuracy on fresh questions: {correct}/{questions}");
}
