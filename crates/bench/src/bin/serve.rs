//! Serves a seeded multi-tenant request trace across replicated
//! accelerator instances and reports simulated-time latency percentiles,
//! per-instance occupancy, link utilization and energy.
//!
//! ```sh
//! cargo run -p mann-bench --release --bin serve -- --tasks 2 --train 200 --test 25
//! cargo run -p mann-bench --release --bin serve -- \
//!     --tasks 2 --train 200 --test 25 \
//!     --instances 4 --policy rr --requests 512 --rate-us 80 --ith
//! cargo run -p mann-bench --release --bin serve -- \
//!     --tasks 2 --train 200 --test 25 \
//!     --instances 4 --policy affinity --pool 4 --story-cache 8
//! ```
//!
//! `--story-cache` (default: `MANN_STORY_CACHE` or 16, 0 disables) sizes
//! each instance's resident-story cache; `--pool N` concentrates the trace
//! on each task's first N stories; `--engine serial|parallel` (default:
//! `MANN_SERVE_ENGINE` or parallel) picks the numeric-phase engine — both
//! produce byte-identical reports.
//!
//! `--fault-plan <path|spec>` runs a deterministic fault campaign: either
//! a JSON file or an inline `key=value,...` spec such as
//! `corrupt=0.05,retries=4,crashes=2,cooldown-us=300,watchdog-us=400,seus=3,seed=7`.
//! `--watchdog <us>` and `--max-retries <n>` override those two knobs of
//! whatever plan is loaded. The campaign is seeded and simulated-time
//! deterministic: the same plan prints byte-identical reports at any
//! `MANN_THREADS` and under either engine.
//!
//! `--numeric-policy ignore|flag|failover` (default: `MANN_NUMERIC_POLICY`
//! or ignore) selects the numeric-health response: `flag` publishes the
//! saturation/veto accounting in the report, `failover` additionally
//! re-answers stressed completions on the `f32` reference datapath at
//! accounted cycle/energy cost. `--embed-scale <factor>` multiplies the
//! trained embedding matrices before quantization — a stress campaign
//! knob that drives the fixed-point datapath into saturation.
//!
//! `--batch-window <n>` (default 0, off) fuses up to `n` queued requests
//! that share a resident story into one compute group per instance,
//! paying the shared memory/output streams once. `--hop-prune
//! <threshold|off>` (default: `MANN_HOP_PRUNE` or off) skips remaining
//! hops once the max attention weight reaches the threshold, with a
//! saturation veto on the winning weight. Malformed values for either
//! flag — or for `MANN_HOP_PRUNE` — are hard errors. `--link-gbps` and
//! `--link-latency-us` override the PCIe model (fusion needs the link to
//! outrun the fabric, which the default 65 us/transfer link never does).
//!
//! `--mem-index k,nprobe,band` (default: `MANN_MEM_INDEX` or off) arms the
//! IVF candidate index in front of every instance's MEM module: each
//! addressing hop probes the `nprobe` nearest of `k` centroids and
//! exact-scores only the surviving candidate slots, falling back to the
//! full scan whenever the best candidate is within `band` of the worst
//! retained one. `--mem-index off` disables it explicitly; malformed specs
//! (k < 1, nprobe outside 1..=k, negative or non-finite band) are hard
//! errors, for the flag and the env var alike. Pair it with
//! `--story-sentences <n>` (0 = task defaults), which pins every
//! generated story to exactly `n` sentences — the index pays off only
//! once stories are long enough that exact addressing dominates.
//!
//! `--wal-dir <dir|spec>` (default: `MANN_WAL` or off) arms the durable
//! story store: every admitted story, eviction and completion is
//! journaled to a checksummed write-ahead log under the directory, with
//! `--snapshot-every <n>` (or `snap=n` in the spec) rotating segments
//! and compacting every n records. With `node-kills=1` in the fault
//! plan, one seeded shard is fail-stopped mid-campaign (torn WAL tail
//! and all) and recovered by replay — the recovered report is asserted
//! byte-identical to the no-crash run. Malformed specs, for the flag
//! and `MANN_WAL` alike, are hard errors; so is `node-kills` without a
//! WAL or `--snapshot-every` without `--wal-dir`. The WAL only adds a
//! `durability` report section: all other bytes match the non-durable
//! run exactly.
//!
//! `--shards K` (default 1) serves the trace on a story-sharded cluster:
//! a rendezvous-hash router places each story on one of K shard nodes,
//! each running the full serve stack above. `--replication R` (default 1)
//! arms cross-shard failover — with a fault plan active, a request
//! stranded by an instance crash is re-dispatched to its story's replica
//! shard at real re-upload cost. `--weights w0,w1,...` sets per-shard
//! routing weights (one positive integer < 65536 per shard; zero,
//! negative, fractional or non-finite weights are hard errors, never
//! silently clamped). At K>1 the report is the merged `ClusterReport`
//! (written to `serve_cluster_report.json`); at K=1/R=1 the cluster
//! layer is inert and output is byte-identical to the single-node path.
//!
//! `--membership-plan <path|spec>` runs a live-membership campaign on
//! the cluster: either a JSON file or an inline spec such as
//! `join=3@800,drain=1@2000,fail=2@3000,retune-threshold=0.05,hot-key=8`
//! (times in microseconds). Drained shards hand resident stories to the
//! next live replica as real re-uploads, failed shards strand their
//! in-flight work for `route_live` re-dispatch, joins arrive with a cold
//! cache, queue-pressure retunes halve a shard's routing weight, and the
//! hot-key splitter fans one pathological story across its replica set.
//! `--hot-key-threshold <n>` overrides that one knob of whatever plan is
//! loaded. Plans that reference a shard index ≥ K, or any membership
//! flag on a 1-shard/1-replica run, are hard errors. The campaign adds a
//! `membership` report section; an empty plan leaves every report byte
//! unchanged.
//!
//! The serve is a pure function of `(suite, trace, config)`: rerunning
//! with the same flags — at any `MANN_THREADS` — prints byte-identical
//! numbers, and the `answers digest` line is invariant across
//! `--instances` and `--policy` because scheduling never changes an
//! answer.

use mann_bench::HarnessArgs;
use mann_core::write_json_report;
use mann_hw::{MemIndexConfig, StoryCache, DEFAULT_STORY_CACHE};
use mann_serve::{
    serve_cluster_durable, serve_durable, ArrivalTrace, Cluster, ClusterConfig, EngineMode,
    FaultConfig, HopPrune, MembershipPlan, NumericPolicy, SchedulePolicy, ServeConfig, Server,
    TraceConfig, WalConfig,
};

/// Prints a CLI-usage error and exits with status 2.
fn usage_bail(msg: impl std::fmt::Display) -> ! {
    eprintln!("[serve] {msg}");
    std::process::exit(2);
}

struct ServeArgs {
    instances: usize,
    policy: SchedulePolicy,
    requests: usize,
    queue: usize,
    batch: usize,
    inflight: usize,
    rate_us: f64,
    trace_seed: u64,
    ith: bool,
    story_cache: usize,
    story_pool: usize,
    engine: EngineMode,
    faults: FaultConfig,
    numeric_policy: NumericPolicy,
    embed_scale: f32,
    batch_window: usize,
    hop_prune: HopPrune,
    mem_index: MemIndexConfig,
    link_gbps: Option<f64>,
    link_latency_us: Option<f64>,
    shards: usize,
    replication: usize,
    weights: Vec<u32>,
    membership: MembershipPlan,
    wal: WalConfig,
}

/// Parses a `--weights` list: one routing weight per shard, each a
/// positive integer below 2^16. Anything else — zero, negative,
/// fractional, non-finite, or out of range — is a hard error; weights
/// are never silently clamped into range.
fn parse_weights(spec: &str) -> Result<Vec<u32>, String> {
    spec.split(',')
        .map(str::trim)
        .map(|tok| {
            let v: f64 = tok
                .parse()
                .map_err(|_| format!("invalid shard weight {tok:?}: expected a number"))?;
            if !v.is_finite() {
                return Err(format!("invalid shard weight {tok:?}: must be finite"));
            }
            if v <= 0.0 {
                return Err(format!("invalid shard weight {tok:?}: must be positive"));
            }
            if v.fract() != 0.0 {
                return Err(format!("invalid shard weight {tok:?}: must be an integer"));
            }
            if v >= f64::from(1u32 << 16) {
                return Err(format!("invalid shard weight {tok:?}: must be below 65536"));
            }
            Ok(v as u32)
        })
        .collect()
}

impl ServeArgs {
    fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Self {
            instances: 2,
            policy: SchedulePolicy::ShortestQueue,
            requests: 256,
            queue: 64,
            batch: 4,
            inflight: 2,
            rate_us: 200.0,
            trace_seed: 0,
            ith: false,
            // Env defaults so a whole experiment sweep can be reconfigured
            // without touching every invocation; flags still win. Invalid
            // env values are hard errors — a typo must not silently serve
            // with the default.
            story_cache: StoryCache::capacity_from_env()
                .unwrap_or_else(|e| usage_bail(e))
                .unwrap_or(DEFAULT_STORY_CACHE),
            story_pool: 0,
            engine: EngineMode::from_env().unwrap_or_else(|e| usage_bail(e)),
            faults: FaultConfig::none(),
            numeric_policy: NumericPolicy::from_env().unwrap_or_else(|e| usage_bail(e)),
            embed_scale: 1.0,
            batch_window: 0,
            hop_prune: HopPrune::from_env().unwrap_or_else(|e| usage_bail(e)),
            mem_index: MemIndexConfig::from_env().unwrap_or_else(|e| usage_bail(e)),
            link_gbps: None,
            link_latency_us: None,
            shards: 1,
            replication: 1,
            weights: Vec::new(),
            membership: MembershipPlan::none(),
            wal: WalConfig::from_env().unwrap_or_else(|e| usage_bail(e)),
        };
        let mut snapshot_every: Option<u64> = None;
        let mut hot_key_threshold: Option<u64> = None;
        let mut watchdog_us: Option<f64> = None;
        let mut max_retries: Option<u32> = None;
        let mut it = args.into_iter();
        while let Some(key) = it.next() {
            let mut grab = |name: &str| -> String {
                it.next().unwrap_or_else(|| panic!("usage: {name} <value>"))
            };
            let num = |name: &str, v: String| -> u64 {
                v.parse()
                    .unwrap_or_else(|_| panic!("usage: {name} <number>"))
            };
            match key.as_str() {
                "--instances" => out.instances = num("--instances", grab("--instances")) as usize,
                "--policy" => {
                    let v = grab("--policy");
                    out.policy = SchedulePolicy::parse(&v)
                        .unwrap_or_else(|| panic!("usage: --policy rr|sq|affinity"));
                }
                "--requests" => out.requests = num("--requests", grab("--requests")) as usize,
                "--queue" => out.queue = num("--queue", grab("--queue")) as usize,
                "--batch" => out.batch = num("--batch", grab("--batch")) as usize,
                "--inflight" => out.inflight = num("--inflight", grab("--inflight")) as usize,
                "--rate-us" => {
                    let v = grab("--rate-us");
                    out.rate_us = v
                        .parse()
                        .unwrap_or_else(|_| panic!("usage: --rate-us <microseconds>"));
                }
                "--trace-seed" => out.trace_seed = num("--trace-seed", grab("--trace-seed")),
                "--ith" => out.ith = true,
                "--story-cache" => {
                    out.story_cache = num("--story-cache", grab("--story-cache")) as usize;
                }
                "--pool" => out.story_pool = num("--pool", grab("--pool")) as usize,
                "--engine" => {
                    let v = grab("--engine");
                    out.engine = EngineMode::parse(&v).unwrap_or_else(|e| usage_bail(e));
                }
                "--fault-plan" => {
                    let v = grab("--fault-plan");
                    out.faults = FaultConfig::from_arg(&v).unwrap_or_else(|e| usage_bail(e));
                }
                "--watchdog" => {
                    let v = grab("--watchdog");
                    watchdog_us = Some(
                        v.parse()
                            .unwrap_or_else(|_| usage_bail("usage: --watchdog <microseconds>")),
                    );
                }
                "--max-retries" => {
                    max_retries = Some(num("--max-retries", grab("--max-retries")) as u32);
                }
                "--numeric-policy" => {
                    let v = grab("--numeric-policy");
                    out.numeric_policy = NumericPolicy::parse(&v).unwrap_or_else(|e| usage_bail(e));
                }
                "--embed-scale" => {
                    let v = grab("--embed-scale");
                    out.embed_scale = v
                        .parse()
                        .unwrap_or_else(|_| usage_bail("usage: --embed-scale <factor>"));
                }
                "--batch-window" => {
                    let v = grab("--batch-window");
                    out.batch_window = v.parse().unwrap_or_else(|_| {
                        usage_bail(format!(
                            "invalid --batch-window {v:?}: expected a request count (0 disables)"
                        ))
                    });
                }
                "--hop-prune" => {
                    let v = grab("--hop-prune");
                    out.hop_prune = HopPrune::parse(&v).unwrap_or_else(|e| usage_bail(e));
                }
                "--mem-index" => {
                    let v = grab("--mem-index");
                    out.mem_index = MemIndexConfig::parse(&v).unwrap_or_else(|e| usage_bail(e));
                }
                "--link-gbps" => {
                    let v = grab("--link-gbps");
                    out.link_gbps = Some(v.parse().unwrap_or_else(|_| {
                        usage_bail(format!("invalid --link-gbps {v:?}: expected GB/s"))
                    }));
                }
                "--wal-dir" => {
                    let v = grab("--wal-dir");
                    // The flag takes a bare directory or a full MANN_WAL
                    // spec (`dir,snap=N,...`); either way it replaces the
                    // env-derived config wholesale so flags win cleanly.
                    out.wal = WalConfig::parse(&v).unwrap_or_else(|e| usage_bail(e));
                }
                "--snapshot-every" => {
                    let v = grab("--snapshot-every");
                    snapshot_every = Some(v.parse().unwrap_or_else(|_| {
                        usage_bail(format!(
                            "invalid --snapshot-every {v:?}: expected a record count (0 disables)"
                        ))
                    }));
                }
                "--shards" => out.shards = num("--shards", grab("--shards")) as usize,
                "--replication" => {
                    out.replication = num("--replication", grab("--replication")) as usize;
                }
                "--weights" => {
                    let v = grab("--weights");
                    out.weights = parse_weights(&v).unwrap_or_else(|e| usage_bail(e));
                }
                "--membership-plan" => {
                    let v = grab("--membership-plan");
                    out.membership = MembershipPlan::from_arg(&v).unwrap_or_else(|e| usage_bail(e));
                }
                "--hot-key-threshold" => {
                    hot_key_threshold =
                        Some(num("--hot-key-threshold", grab("--hot-key-threshold")));
                }
                "--link-latency-us" => {
                    let v = grab("--link-latency-us");
                    out.link_latency_us = Some(v.parse().unwrap_or_else(|_| {
                        usage_bail(format!(
                            "invalid --link-latency-us {v:?}: expected microseconds"
                        ))
                    }));
                }
                _ => {} // shared HarnessArgs flags
            }
        }
        if let Some(n) = snapshot_every {
            if !out.wal.enabled {
                usage_bail(
                    "--snapshot-every requires the write-ahead log (--wal-dir or MANN_WAL): \
                     there is no journal to compact",
                );
            }
            out.wal.snapshot_every = n;
        }
        if let Some(n) = hot_key_threshold {
            out.membership.hot_key_threshold = n;
            if let Err(e) = out.membership.validate() {
                usage_bail(e);
            }
        }
        let clustered = out.shards > 1 || out.replication > 1;
        if !clustered {
            // These knobs only exist at the cluster layer; accepting them
            // on a single-node run would silently serve without them.
            if !out.membership.is_empty() {
                usage_bail(
                    "--membership-plan / --hot-key-threshold need a cluster \
                     (--shards > 1): a single node has no membership to change",
                );
            }
            if !out.weights.is_empty() {
                usage_bail("--weights needs a cluster (--shards > 1)");
            }
        }
        if let Some(us) = watchdog_us {
            out.faults.watchdog_s = us * 1e-6;
        }
        if let Some(r) = max_retries {
            out.faults.max_retries = r;
        }
        if let Err(e) = out.faults.validate() {
            usage_bail(e);
        }
        if let Err(e) = out.wal.validate() {
            usage_bail(e);
        }
        out
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = HarnessArgs::parse(argv.clone());
    let serve_args = ServeArgs::parse(argv);

    eprintln!(
        "[serve] training {} tasks ({} train / {} test, seed {}) ...",
        args.tasks, args.train, args.test, args.seed
    );
    let start = std::time::Instant::now();
    let mut suite = args.build_suite();
    if serve_args.embed_scale != 1.0 {
        eprintln!(
            "[serve] scaling embedding matrices by {} (numeric stress campaign)",
            serve_args.embed_scale
        );
        suite = suite.with_embedding_scale(serve_args.embed_scale);
    }
    eprintln!(
        "[serve] suite trained in {:.1}s, mean test accuracy {:.1}%",
        start.elapsed().as_secs_f64(),
        suite.mean_accuracy() * 100.0
    );

    let trace = ArrivalTrace::generate(
        &TraceConfig {
            requests: serve_args.requests,
            seed: serve_args.trace_seed,
            mean_interarrival_s: serve_args.rate_us * 1e-6,
            story_pool: serve_args.story_pool,
        },
        &suite,
    );
    let mut pcie = ServeConfig::default().pcie;
    if let Some(g) = serve_args.link_gbps {
        pcie.bandwidth_bytes_per_s = g * 1e9;
    }
    if let Some(us) = serve_args.link_latency_us {
        pcie.latency_per_transfer_s = us * 1e-6;
    }
    let config = ServeConfig {
        pcie,
        instances: serve_args.instances,
        queue_capacity: serve_args.queue,
        inflight_limit: serve_args.inflight,
        upload_batch: serve_args.batch,
        policy: serve_args.policy,
        use_ith: serve_args.ith,
        story_cache: serve_args.story_cache,
        engine: serve_args.engine,
        faults: serve_args.faults,
        numeric_policy: serve_args.numeric_policy,
        batch_window: serve_args.batch_window,
        hop_prune: serve_args.hop_prune,
        mem_index: serve_args.mem_index,
        wal: serve_args.wal,
        ..ServeConfig::default()
    };
    if let Err(e) = config.validate() {
        usage_bail(e);
    }
    eprintln!(
        "[serve] {} requests (mean inter-arrival {} us, trace seed {}, story pool {}) over \
         {} instance(s), policy {}, queue {}, upload batch {}, ith {}, story cache {}, \
         engine {}",
        trace.len(),
        serve_args.rate_us,
        serve_args.trace_seed,
        serve_args.story_pool,
        config.instances,
        config.policy,
        config.queue_capacity,
        config.upload_batch,
        config.use_ith,
        config.story_cache,
        config.engine,
    );
    if config.numeric_policy != NumericPolicy::Ignore {
        eprintln!("[serve] numeric policy {}", config.numeric_policy);
    }
    if config.batch_window > 1 {
        eprintln!(
            "[serve] same-story batch fusion on (window {})",
            config.batch_window
        );
    }
    if config.hop_prune.enabled {
        eprintln!("[serve] adaptive hop pruning on ({})", config.hop_prune);
    }
    if config.mem_index.enabled {
        eprintln!("[serve] candidate index armed ({})", config.mem_index);
    }
    if config.wal.enabled {
        // stderr only: stdout must stay byte-diffable across WAL dirs.
        eprintln!(
            "[serve] write-ahead log on (dir {}, snapshot every {}, fsync batch {}, \
             node kills {})",
            config.wal.dir,
            config.wal.snapshot_every,
            config.wal.fsync_batch,
            config.faults.node_kills,
        );
    }
    if config.faults.is_active() {
        eprintln!(
            "[serve] fault campaign active (seed {}): corrupt {} / retries {}, crashes {}, \
             watchdog {} us, seus {}, degrade depth {}",
            config.faults.seed,
            config.faults.link_corrupt_prob,
            config.faults.max_retries,
            config.faults.crashes,
            config.faults.watchdog_s * 1e6,
            config.faults.seus,
            config.faults.degrade_depth,
        );
    }

    if serve_args.shards > 1 || serve_args.replication > 1 {
        let cluster_config = ClusterConfig {
            shards: serve_args.shards,
            replication: serve_args.replication,
            weights: serve_args.weights,
            membership: serve_args.membership,
            base: config,
            ..ClusterConfig::default()
        };
        if let Err(e) = cluster_config.validate() {
            usage_bail(e);
        }
        eprintln!(
            "[serve] cluster of {} shard(s), replication {} (rendezvous story routing)",
            cluster_config.shards, cluster_config.replication
        );
        if !cluster_config.membership.is_empty() {
            let m = &cluster_config.membership;
            eprintln!(
                "[serve] membership campaign active: {} event(s), retune threshold {}, \
                 hot-key threshold {}",
                m.events.len(),
                m.retune_threshold,
                m.hot_key_threshold,
            );
        }
        let cluster = Cluster::new(&suite, cluster_config);
        let outcome = serve_cluster_durable(&cluster, &trace).unwrap_or_else(|e| usage_bail(e));
        println!(
            "Served {} requests across {} shard(s) x {} instance(s), replication {}, policy {}",
            trace.len(),
            outcome.report.shards,
            serve_args.instances,
            outcome.report.replication,
            serve_args.policy
        );
        println!("{}", outcome.report.render());
        let path = "target/experiments/serve_cluster_report.json";
        match write_json_report(path, &outcome.report) {
            Ok(()) => eprintln!("[serve] cluster report written to {path}"),
            Err(e) => eprintln!("[serve] could not write {path}: {e}"),
        }
        return;
    }

    let server = Server::new(&suite, config);
    let outcome = serve_durable(&server, &trace).unwrap_or_else(|e| usage_bail(e));
    println!(
        "Served {} requests across {} instance(s), policy {}",
        trace.len(),
        server.config().instances,
        server.config().policy
    );
    println!("{}", outcome.report.render());

    let path = "target/experiments/serve_report.json";
    match write_json_report(path, &outcome.report) {
        Ok(()) => eprintln!("[serve] report written to {path}"),
        Err(e) => eprintln!("[serve] could not write {path}: {e}"),
    }
}
