//! Serves a seeded multi-tenant request trace across replicated
//! accelerator instances and reports simulated-time latency percentiles,
//! per-instance occupancy, link utilization and energy.
//!
//! ```sh
//! cargo run -p mann-bench --release --bin serve -- --tasks 2 --train 200 --test 25
//! cargo run -p mann-bench --release --bin serve -- \
//!     --tasks 2 --train 200 --test 25 \
//!     --instances 4 --policy rr --requests 512 --rate-us 80 --ith
//! cargo run -p mann-bench --release --bin serve -- \
//!     --tasks 2 --train 200 --test 25 \
//!     --instances 4 --policy affinity --pool 4 --story-cache 8
//! ```
//!
//! `--story-cache` (default: `MANN_STORY_CACHE` or 16, 0 disables) sizes
//! each instance's resident-story cache; `--pool N` concentrates the trace
//! on each task's first N stories; `--engine serial|parallel` (default:
//! `MANN_SERVE_ENGINE` or parallel) picks the numeric-phase engine — both
//! produce byte-identical reports.
//!
//! The serve is a pure function of `(suite, trace, config)`: rerunning
//! with the same flags — at any `MANN_THREADS` — prints byte-identical
//! numbers, and the `answers digest` line is invariant across
//! `--instances` and `--policy` because scheduling never changes an
//! answer.

use mann_bench::HarnessArgs;
use mann_core::write_json_report;
use mann_hw::{StoryCache, DEFAULT_STORY_CACHE};
use mann_serve::{ArrivalTrace, EngineMode, SchedulePolicy, ServeConfig, Server, TraceConfig};

struct ServeArgs {
    instances: usize,
    policy: SchedulePolicy,
    requests: usize,
    queue: usize,
    batch: usize,
    inflight: usize,
    rate_us: f64,
    trace_seed: u64,
    ith: bool,
    story_cache: usize,
    story_pool: usize,
    engine: EngineMode,
}

impl ServeArgs {
    fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Self {
            instances: 2,
            policy: SchedulePolicy::ShortestQueue,
            requests: 256,
            queue: 64,
            batch: 4,
            inflight: 2,
            rate_us: 200.0,
            trace_seed: 0,
            ith: false,
            // Env defaults so a whole experiment sweep can be reconfigured
            // without touching every invocation; flags still win.
            story_cache: StoryCache::capacity_from_env().unwrap_or(DEFAULT_STORY_CACHE),
            story_pool: 0,
            engine: EngineMode::from_env(),
        };
        let mut it = args.into_iter();
        while let Some(key) = it.next() {
            let mut grab = |name: &str| -> String {
                it.next().unwrap_or_else(|| panic!("usage: {name} <value>"))
            };
            let num = |name: &str, v: String| -> u64 {
                v.parse()
                    .unwrap_or_else(|_| panic!("usage: {name} <number>"))
            };
            match key.as_str() {
                "--instances" => out.instances = num("--instances", grab("--instances")) as usize,
                "--policy" => {
                    let v = grab("--policy");
                    out.policy = SchedulePolicy::parse(&v)
                        .unwrap_or_else(|| panic!("usage: --policy rr|sq|affinity"));
                }
                "--requests" => out.requests = num("--requests", grab("--requests")) as usize,
                "--queue" => out.queue = num("--queue", grab("--queue")) as usize,
                "--batch" => out.batch = num("--batch", grab("--batch")) as usize,
                "--inflight" => out.inflight = num("--inflight", grab("--inflight")) as usize,
                "--rate-us" => {
                    let v = grab("--rate-us");
                    out.rate_us = v
                        .parse()
                        .unwrap_or_else(|_| panic!("usage: --rate-us <microseconds>"));
                }
                "--trace-seed" => out.trace_seed = num("--trace-seed", grab("--trace-seed")),
                "--ith" => out.ith = true,
                "--story-cache" => {
                    out.story_cache = num("--story-cache", grab("--story-cache")) as usize;
                }
                "--pool" => out.story_pool = num("--pool", grab("--pool")) as usize,
                "--engine" => {
                    let v = grab("--engine");
                    out.engine = EngineMode::parse(&v)
                        .unwrap_or_else(|| panic!("usage: --engine serial|parallel"));
                }
                _ => {} // shared HarnessArgs flags
            }
        }
        out
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = HarnessArgs::parse(argv.clone());
    let serve_args = ServeArgs::parse(argv);

    eprintln!(
        "[serve] training {} tasks ({} train / {} test, seed {}) ...",
        args.tasks, args.train, args.test, args.seed
    );
    let start = std::time::Instant::now();
    let suite = args.build_suite();
    eprintln!(
        "[serve] suite trained in {:.1}s, mean test accuracy {:.1}%",
        start.elapsed().as_secs_f64(),
        suite.mean_accuracy() * 100.0
    );

    let trace = ArrivalTrace::generate(
        &TraceConfig {
            requests: serve_args.requests,
            seed: serve_args.trace_seed,
            mean_interarrival_s: serve_args.rate_us * 1e-6,
            story_pool: serve_args.story_pool,
        },
        &suite,
    );
    let config = ServeConfig {
        instances: serve_args.instances,
        queue_capacity: serve_args.queue,
        inflight_limit: serve_args.inflight,
        upload_batch: serve_args.batch,
        policy: serve_args.policy,
        use_ith: serve_args.ith,
        story_cache: serve_args.story_cache,
        engine: serve_args.engine,
        ..ServeConfig::default()
    };
    eprintln!(
        "[serve] {} requests (mean inter-arrival {} us, trace seed {}, story pool {}) over \
         {} instance(s), policy {}, queue {}, upload batch {}, ith {}, story cache {}, \
         engine {}",
        trace.len(),
        serve_args.rate_us,
        serve_args.trace_seed,
        serve_args.story_pool,
        config.instances,
        config.policy,
        config.queue_capacity,
        config.upload_batch,
        config.use_ith,
        config.story_cache,
        config.engine,
    );

    let server = Server::new(&suite, config);
    let outcome = server.serve(&trace);
    println!(
        "Served {} requests across {} instance(s), policy {}",
        trace.len(),
        server.config().instances,
        server.config().policy
    );
    println!("{}", outcome.report.render());

    let path = "target/experiments/serve_report.json";
    match write_json_report(path, &outcome.report) {
        Ok(()) => eprintln!("[serve] report written to {path}"),
        Err(e) => eprintln!("[serve] could not write {path}: {e}"),
    }
}
