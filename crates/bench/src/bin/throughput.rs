//! Extension experiment: streaming (double-buffered) throughput.
//!
//! The paper's measured setup is strictly sequential — transfer, compute,
//! read back — which is why the host interface caps the speedup above
//! 50 MHz. This harness quantifies the obvious architectural fix: while
//! inference `i` computes, stream inference `i+1`'s input. In steady state
//! each inference costs `max(compute, interface)`, and the frequency
//! ladder's usefulness returns.
//!
//! ```sh
//! cargo run -p mann-bench --release --bin throughput -- --tasks 4 --train 300 --test 40
//! ```

use mann_bench::HarnessArgs;
use mann_core::report::{fnum, ratio, TextTable};
use mann_hw::{double_buffered_time_s, AccelConfig, Accelerator, ClockDomain, InferenceRun};

fn main() {
    let mut args = HarnessArgs::parse(std::env::args().skip(1));
    if args.tasks == HarnessArgs::default().tasks {
        args.tasks = 4;
        args.train = 300;
        args.test = 40;
    }
    eprintln!("[throughput] training {} tasks ...", args.tasks);
    let suite = args.build_suite();

    let mut t = TextTable::new(vec![
        "clock".into(),
        "sequential (s)".into(),
        "double-buffered (s)".into(),
        "pipelining gain".into(),
        "seq. 25MHz ratio".into(),
        "pipe 25MHz ratio".into(),
    ]);
    let mut seq25 = None;
    let mut pipe25 = None;
    for mhz in [25.0f64, 50.0, 75.0, 100.0] {
        let mut sequential = 0.0f64;
        let mut pipelined = 0.0f64;
        for task in &suite.tasks {
            let accel = Accelerator::new(
                task.model.clone(),
                AccelConfig {
                    clock: ClockDomain::mhz(mhz),
                    ..AccelConfig::default()
                },
            );
            let runs: Vec<InferenceRun> = task.test_set.iter().map(|s| accel.run(s)).collect();
            sequential += runs.iter().map(|r| r.total_s).sum::<f64>();
            pipelined += double_buffered_time_s(&runs);
        }
        sequential *= args.reps as f64;
        pipelined *= args.reps as f64;
        seq25.get_or_insert(sequential);
        pipe25.get_or_insert(pipelined);
        t.row(vec![
            format!("{mhz:.0} MHz"),
            fnum(sequential, 2),
            fnum(pipelined, 2),
            ratio(sequential / pipelined),
            ratio(seq25.expect("set") / sequential),
            ratio(pipe25.expect("set") / pipelined),
        ]);
    }
    println!(
        "Streaming throughput — {} tasks x {} questions x {} reps\n",
        suite.tasks.len(),
        args.test,
        args.reps
    );
    println!("{}", t.render());
    println!(
        "reading: sequentially, 4x clock buys well under 2x (the paper's\n\
         sub-linear scaling). Double buffering hides compute behind the\n\
         transfer instead and is worth up to ~1.5x at 25 MHz — but it also\n\
         exposes the hard floor: once overlapped, the per-transfer driver\n\
         latency alone bounds throughput and the fabric clock stops\n\
         mattering entirely. Raising the clock buys nothing that the\n\
         interface hasn't already taken; reducing per-inference transfers\n\
         (batching stories) is the lever that remains."
    );
}
