//! Regenerates Table I: time, power, speedup, and FLOPS/kJ for CPU, GPU and
//! the FPGA accelerator at 25/50/75/100 MHz with and without inference
//! thresholding.
//!
//! ```sh
//! cargo run -p mann-bench --release --bin table1                # full scale
//! cargo run -p mann-bench --release --bin table1 -- --tasks 4 --train 300 --test 40
//! ```

use mann_bench::HarnessArgs;
use mann_core::experiments::table1;

fn main() {
    let args = HarnessArgs::parse(std::env::args().skip(1));
    eprintln!(
        "[table1] training {} tasks ({} train / {} test, seed {}) ...",
        args.tasks, args.train, args.test, args.seed
    );
    let start = std::time::Instant::now();
    let suite = args.build_suite();
    eprintln!(
        "[table1] suite trained in {:.1}s, mean test accuracy {:.1}%",
        start.elapsed().as_secs_f64(),
        suite.mean_accuracy() * 100.0
    );

    let table = table1::run(
        &suite,
        &table1::Table1Config {
            repetitions: args.reps,
            ..table1::Table1Config::default()
        },
    );
    println!(
        "Table I — {} tasks x {} test questions x {} repetitions",
        suite.tasks.len(),
        args.test,
        args.reps
    );
    println!("{}", table.render());

    println!(
        "\nPaper (full-scale reference): CPU 242.77s/23.28W (0.94x, 1.70x); \
         GPU 226.90s/45.36W (1.00x); FPGA 25 MHz 43.54s/14.71W (5.21x, 83.74x); \
         FPGA 100 MHz 30.28s/20.10W (7.49x, 126.72x); \
         FPGA+ITH 100 MHz 28.53s/20.53W (7.95x, 139.75x)."
    );
    if let Ok(json) = serde_json::to_string_pretty(&table) {
        let _ = std::fs::create_dir_all("target/experiments");
        let path = "target/experiments/table1.json";
        if std::fs::write(path, json).is_ok() {
            eprintln!("[table1] results written to {path}");
        }
    }
}
