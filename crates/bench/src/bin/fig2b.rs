//! Regenerates Fig 2(b): the per-class logit mixture distributions that
//! motivate inference thresholding.
//!
//! ```sh
//! cargo run -p mann-bench --release --bin fig2b
//! cargo run -p mann-bench --release --bin fig2b -- --tasks 1 --train 400
//! ```

use mann_bench::HarnessArgs;
use mann_core::experiments::fig2b;
use mann_core::TaskSuite;

fn main() {
    let args = HarnessArgs::parse(std::env::args().skip(1));
    let mut cfg = args.suite_config();
    cfg.tasks.truncate(1); // one task suffices for the distribution view
    eprintln!(
        "[fig2b] training task {} ({} train samples) ...",
        cfg.tasks[0], cfg.train_samples
    );
    let suite = TaskSuite::build(&cfg);
    let task = &suite.tasks[0];
    eprintln!("[fig2b] test accuracy {:.1}%", task.test_accuracy * 100.0);

    let fig = fig2b::run(task, 6, 48);
    println!("{}", fig.render());
    println!(
        "Paper shape: each class's on-answer logits form a mode clearly to\n\
         the right of the off-answer mass — the separation the thresholds\n\
         θ_i exploit (classes are probed in descending silhouette order)."
    );
    if let Ok(json) = serde_json::to_string_pretty(&fig) {
        let _ = std::fs::create_dir_all("target/experiments");
        let path = "target/experiments/fig2b.json";
        if std::fs::write(path, json).is_ok() {
            eprintln!("[fig2b] results written to {path}");
        }
    }
}
