//! Performance regression gate for the hot paths.
//!
//! Times the production implementations against faithful "seed"
//! re-implementations (naive kernels from [`mann_linalg::reference`],
//! per-sample allocation, unfused backward) on a pinned workload, then
//! enforces speedup floors:
//!
//! * suite build (3-task pinned workload): **>= 1.3x**
//! * per-sample training step:             **>= 1.2x**
//!
//! Results are written to `BENCH_PR1.json` as rows of
//! `{"metric": ..., "value": ..., "unit": ...}`. The baseline is real,
//! runnable code — not a recorded number — so the gate keeps meaning as
//! hardware changes. The reference path is cross-checked against the
//! production path for numerical agreement before any timing, so a gate
//! pass can't come from the baseline silently computing something else.
//!
//! ```sh
//! cargo run -p mann-bench --release --bin perf_gate             # gate mode
//! cargo run -p mann-bench --release --bin perf_gate -- --no-fail
//! ```

use std::hint::black_box;
use std::time::Instant;

use mann_babi::{DatasetBuilder, EncodedSample, TaskId};
use mann_core::parallel::worker_threads;
use mann_hw::{AccelConfig, Accelerator};
use mann_linalg::{Matrix, Vector};
use memn2n::{train_step, ModelConfig, Params, TrainConfig, Trainer, Workspace};

/// Seed-style model code: the pre-optimization implementations, kept
/// runnable as the gate's baseline. Naive kernels, a freshly allocated
/// trace and gradient set per sample, separate (unfused) backward passes —
/// exactly the structure the optimized path replaced. Linear controller
/// only (the paper's datapath).
mod seed {
    use mann_babi::EncodedSample;
    use mann_linalg::{reference, Matrix, Vector};
    use memn2n::{Gradients, Params};

    pub struct Trace {
        pub mem_a: Matrix,
        pub mem_c: Matrix,
        pub keys: Vec<Vector>,
        // The seed retained the raw scores and read vectors in its trace
        // too; kept (though backward does not need them) so the baseline
        // allocates what the seed allocated.
        #[allow(dead_code)]
        pub scores: Vec<Vector>,
        #[allow(dead_code)]
        pub reads: Vec<Vector>,
        pub attention: Vec<Vector>,
        pub hiddens: Vec<Vector>,
        pub logits: Vector,
    }

    fn softmax(x: &Vector) -> Vector {
        let max = x.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let exps: Vec<f32> = x.iter().map(|&v| (v - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        Vector::from(exps.into_iter().map(|e| e / z).collect::<Vec<f32>>())
    }

    pub fn forward(params: &Params, sample: &EncodedSample) -> Trace {
        assert!(
            params.gru.is_none(),
            "seed baseline models the linear controller"
        );
        let e = params.config.embed_dim;
        let l = sample.sentences.len();
        let hops = params.config.hops;
        let w_a = &params.w_emb_a;
        let w_c = params.content_embedding();
        let mut mem_a = Matrix::zeros(l, e);
        let mut mem_c = Matrix::zeros(l, e);
        for (i, sent) in sample.sentences.iter().enumerate() {
            mem_a
                .row_mut(i)
                .copy_from_slice(reference::sum_cols(w_a, sent).as_slice());
            mem_c
                .row_mut(i)
                .copy_from_slice(reference::sum_cols(w_c, sent).as_slice());
        }
        let q_emb = reference::sum_cols(w_a, &sample.question);
        let mut keys = vec![q_emb];
        let mut scores = Vec::new();
        let mut reads = Vec::new();
        let mut attention = Vec::new();
        let mut hiddens: Vec<Vector> = Vec::new();
        for t in 0..hops {
            let score = reference::matvec(&mem_a, &keys[t]);
            let a = softmax(&score);
            let r = reference::matvec_transposed(&mem_c, &a);
            let wk = reference::matvec(&params.w_r, &keys[t]);
            let h: Vector = r.iter().zip(wk.iter()).map(|(x, y)| x + y).collect();
            scores.push(score);
            reads.push(r);
            attention.push(a);
            hiddens.push(h);
            if t + 1 < hops {
                keys.push(hiddens[t].clone());
            }
        }
        let logits = reference::matvec(&params.w_o, hiddens.last().expect("hops >= 1"));
        Trace {
            mem_a,
            mem_c,
            keys,
            scores,
            reads,
            attention,
            hiddens,
            logits,
        }
    }

    /// The seed's gradient clip: per-matrix Frobenius norms computed with a
    /// single scalar accumulator chain (the current implementation uses a
    /// multi-accumulator reduction instead — one of the optimizations this
    /// gate measures).
    pub fn clip_to(grads: &mut Gradients, max_norm: f32) -> f32 {
        fn fro(m: &Matrix) -> f32 {
            m.as_slice().iter().map(|x| x * x).sum::<f32>().sqrt()
        }
        let n = (fro(&grads.w_emb_a).powi(2)
            + fro(&grads.w_emb_c).powi(2)
            + fro(&grads.w_r).powi(2)
            + fro(&grads.w_o).powi(2))
        .sqrt();
        if n > max_norm && n > 0.0 {
            let s = max_norm / n;
            grads.w_emb_a.scale_in_place(s);
            grads.w_emb_c.scale_in_place(s);
            grads.w_r.scale_in_place(s);
            grads.w_o.scale_in_place(s);
        }
        n
    }

    pub fn loss_grad(logits: &Vector, target: usize) -> (f32, Vector) {
        let mut grad = softmax(logits);
        let loss = -(grad[target].max(1e-12)).ln();
        grad[target] -= 1.0;
        (loss, grad)
    }

    pub fn backward(
        params: &Params,
        sample: &EncodedSample,
        trace: &Trace,
        dz: &Vector,
        grads: &mut Gradients,
    ) {
        let hops = params.config.hops;
        let l = sample.sentences.len();
        let e = params.config.embed_dim;
        reference::add_outer(&mut grads.w_o, 1.0, dz, trace.hiddens.last().expect("hops"));
        let mut dh = reference::matvec_transposed(&params.w_o, dz);
        let mut d_mem_a = Matrix::zeros(l, e);
        let mut d_mem_c = Matrix::zeros(l, e);
        for t in (0..hops).rev() {
            let k = &trace.keys[t];
            let a = &trace.attention[t];
            let dr = dh.clone();
            reference::add_outer(&mut grads.w_r, 1.0, &dh, k);
            let mut dk = reference::matvec_transposed(&params.w_r, &dh);
            // Eq 5: da_i = dr . M_c[i], dM_c[i] += a_i dr.
            let mut da = Vector::zeros(l);
            for i in 0..l {
                let row = trace.mem_c.row(i);
                let drow = d_mem_c.row_mut(i);
                let mut dot = 0.0f32;
                for (j, &dv) in dr.iter().enumerate() {
                    dot += row[j] * dv;
                    drow[j] += a[i] * dv;
                }
                da[i] = dot;
            }
            // Eq 1 softmax backward.
            let dot: f32 = a.iter().zip(da.iter()).map(|(x, y)| x * y).sum();
            let mut du = Vector::zeros(l);
            for i in 0..l {
                du[i] = a[i] * (da[i] - dot);
            }
            for i in 0..l {
                let drow = d_mem_a.row_mut(i);
                for (dst, kv) in drow.iter_mut().zip(k.iter()) {
                    *dst += du[i] * kv;
                }
                let mrow = trace.mem_a.row(i);
                for (dst, m) in dk.iter_mut().zip(mrow.iter()) {
                    *dst += du[i] * m;
                }
            }
            if t > 0 {
                dh = dk;
            } else {
                for &w in &sample.question {
                    grads.w_emb_a.add_to_col(w, 1.0, &dk).expect("emb shape");
                }
            }
        }
        let tie = params.config.tie_embeddings;
        for (i, sent) in sample.sentences.iter().enumerate() {
            for &w in sent {
                grads
                    .w_emb_a
                    .add_to_col_slice(w, 1.0, d_mem_a.row(i))
                    .expect("emb shape");
                let target = if tie {
                    &mut grads.w_emb_a
                } else {
                    &mut grads.w_emb_c
                };
                target
                    .add_to_col_slice(w, 1.0, d_mem_c.row(i))
                    .expect("emb shape");
            }
        }
    }

    /// The seed's per-sample SGD step: allocating forward, allocating loss
    /// gradient, a fresh `Gradients` per sample, unfused backward.
    pub fn train_step(params: &mut Params, sample: &EncodedSample, lr: f32, clip: f32) -> f32 {
        let trace = forward(params, sample);
        let (loss, dz) = loss_grad(&trace.logits, sample.answer);
        let mut grads = Gradients::zeros(params);
        backward(params, sample, &trace, &dz, &mut grads);
        clip_to(&mut grads, clip);
        grads.apply(params, lr);
        loss
    }
}

/// One BENCH_PR1.json row.
struct Row {
    metric: &'static str,
    value: f64,
    unit: &'static str,
}

/// Median wall-clock seconds of `reps` runs of `f`.
fn median_s<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Times two workloads in alternating rounds and returns each side's
/// minimum. Interleaving keeps slow drift (thermal, a noisy neighbour on a
/// shared core) from biasing one side, and the minimum discards noise
/// spikes — external interference only ever adds time.
fn interleaved_min_s<A: FnMut(), B: FnMut()>(rounds: usize, mut a: A, mut b: B) -> (f64, f64) {
    let (mut min_a, mut min_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds.max(1) {
        let t0 = Instant::now();
        a();
        min_a = min_a.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        b();
        min_b = min_b.min(t0.elapsed().as_secs_f64());
    }
    (min_a, min_b)
}

/// The pinned workload: three tasks, small fixed splits and epochs, linear
/// controller — big enough to be timing-stable, small enough for CI.
fn pinned_model() -> ModelConfig {
    ModelConfig {
        embed_dim: 50,
        hops: 3,
        tie_embeddings: false,
        ..ModelConfig::default()
    }
}

fn pinned_train() -> TrainConfig {
    TrainConfig {
        epochs: 8,
        learning_rate: 0.05,
        decay_every: 4,
        clip_norm: 40.0,
        seed: 7,
        ..TrainConfig::default()
    }
}

const PINNED_TASKS: [TaskId; 3] = [
    TaskId::SingleSupportingFact,
    TaskId::YesNoQuestions,
    TaskId::AgentMotivations,
];
const PINNED_TRAIN_SAMPLES: usize = 150;
const PINNED_TEST_SAMPLES: usize = 20;

/// Initial parameters and encoded splits for one pinned task.
fn pinned_task(task: TaskId) -> (Params, Vec<EncodedSample>, Vec<EncodedSample>) {
    let data = DatasetBuilder::new()
        .train_samples(PINNED_TRAIN_SAMPLES)
        .test_samples(PINNED_TEST_SAMPLES)
        .seed(7)
        .build_task(task);
    let trainer = Trainer::from_task_data(&data, pinned_model(), pinned_train());
    let params = trainer.as_model().params;
    (
        params,
        trainer.train_set().to_vec(),
        trainer.test_set().to_vec(),
    )
}

/// Runs the pinned training schedule with the production step.
fn train_optimized(params: &mut Params, train_set: &[EncodedSample]) -> f32 {
    let cfg = pinned_train();
    let mut ws = Workspace::for_params(params);
    let mut lr = cfg.learning_rate;
    let mut loss = 0.0;
    for epoch in 0..cfg.epochs {
        if cfg.decay_every > 0 && epoch > 0 && epoch % cfg.decay_every == 0 {
            lr *= 0.5;
        }
        for sample in train_set {
            loss = train_step(params, sample, &mut ws, None, 0.0, lr, cfg.clip_norm);
        }
    }
    loss
}

/// Runs the identical schedule with the seed-style step.
fn train_seed(params: &mut Params, train_set: &[EncodedSample]) -> f32 {
    let cfg = pinned_train();
    let mut lr = cfg.learning_rate;
    let mut loss = 0.0;
    for epoch in 0..cfg.epochs {
        if cfg.decay_every > 0 && epoch > 0 && epoch % cfg.decay_every == 0 {
            lr *= 0.5;
        }
        for sample in train_set {
            loss = seed::train_step(params, sample, lr, cfg.clip_norm);
        }
    }
    loss
}

/// Cross-check: the two implementations must agree numerically before we
/// trust any timing comparison between them.
fn verify_agreement(params: &Params, samples: &[EncodedSample]) {
    let mut p_opt = params.clone();
    let mut p_ref = params.clone();
    let mut ws = Workspace::for_params(&p_opt);
    for s in samples.iter().take(32) {
        let lo = train_step(&mut p_opt, s, &mut ws, None, 0.0, 0.05, 40.0);
        let lr = seed::train_step(&mut p_ref, s, 0.05, 40.0);
        assert!(
            (lo - lr).abs() <= 1e-5 * lo.abs().max(1.0),
            "loss mismatch: optimized {lo} vs seed {lr}"
        );
    }
    let diff = max_param_diff(&p_opt, &p_ref);
    assert!(diff <= 1e-4, "parameter divergence after 32 steps: {diff}");
}

fn max_param_diff(a: &Params, b: &Params) -> f32 {
    let mats = [
        (&a.w_emb_a, &b.w_emb_a),
        (&a.w_emb_c, &b.w_emb_c),
        (&a.w_r, &b.w_r),
        (&a.w_o, &b.w_o),
    ];
    mats.iter()
        .flat_map(|(x, y)| {
            x.as_slice()
                .iter()
                .zip(y.as_slice())
                .map(|(u, v)| (u - v).abs())
        })
        .fold(0.0f32, f32::max)
}

/// Deterministic pseudo-random fill for kernel operands.
fn fill(v: &mut [f32], mut state: u64) {
    for x in v {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *x = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
    }
}

fn kernel_rows(rows: &mut Vec<Row>) {
    let (m, n) = (96, 96);
    let mut w = Matrix::zeros(m, n);
    fill(w.as_mut_slice(), 1);
    let mut x = Vector::zeros(n);
    fill(x.as_mut_slice(), 2);
    let mut xr = Vector::zeros(m);
    fill(xr.as_mut_slice(), 3);
    let mut b = Matrix::zeros(n, m);
    fill(b.as_mut_slice(), 4);
    let iters = 2000;

    let mut out = Vector::default();
    let opt_matvec = median_s(
        || {
            for _ in 0..iters {
                w.matvec_into(black_box(&x), &mut out).expect("shape");
                black_box(&out);
            }
        },
        5,
    );
    let ref_matvec = median_s(
        || {
            for _ in 0..iters {
                black_box(mann_linalg::reference::matvec(black_box(&w), black_box(&x)));
            }
        },
        5,
    );
    let opt_matvec_t = median_s(
        || {
            for _ in 0..iters {
                w.matvec_transposed_into(black_box(&xr), &mut out)
                    .expect("shape");
                black_box(&out);
            }
        },
        5,
    );
    let ref_matvec_t = median_s(
        || {
            for _ in 0..iters {
                black_box(mann_linalg::reference::matvec_transposed(
                    black_box(&w),
                    black_box(&xr),
                ));
            }
        },
        5,
    );
    let opt_matmul = median_s(
        || {
            for _ in 0..iters / 20 {
                black_box(w.matmul(black_box(&b)).expect("shape"));
            }
        },
        5,
    );
    let ref_matmul = median_s(
        || {
            for _ in 0..iters / 20 {
                black_box(mann_linalg::reference::matmul(black_box(&w), black_box(&b)));
            }
        },
        5,
    );
    rows.push(Row {
        metric: "kernel_matvec_speedup",
        value: ref_matvec / opt_matvec,
        unit: "x",
    });
    rows.push(Row {
        metric: "kernel_matvec_transposed_speedup",
        value: ref_matvec_t / opt_matvec_t,
        unit: "x",
    });
    rows.push(Row {
        metric: "kernel_matmul_speedup",
        value: ref_matmul / opt_matmul,
        unit: "x",
    });
}

fn main() {
    let no_fail = std::env::args().any(|a| a == "--no-fail");
    let mut rows: Vec<Row> = Vec::new();

    eprintln!(
        "[perf_gate] preparing pinned workload ({} tasks) ...",
        PINNED_TASKS.len()
    );
    let tasks: Vec<(Params, Vec<EncodedSample>, Vec<EncodedSample>)> =
        PINNED_TASKS.iter().map(|&t| pinned_task(t)).collect();
    verify_agreement(&tasks[0].0, &tasks[0].1);
    eprintln!("[perf_gate] baseline agrees with production; timing ...");

    // --- Per-sample training step (single task, per-step granularity).
    let (params0, train0, test0) = &tasks[0];
    let steps = train0.len();
    let mut ws = Workspace::for_params(params0);
    {
        // Warm the workspace buffers once before timing.
        let mut p = params0.clone();
        for s in train0.iter().take(8) {
            let _ = train_step(&mut p, s, &mut ws, None, 0.0, 0.05, 40.0);
        }
    }
    let (opt_step_s, seed_step_s) = interleaved_min_s(
        5,
        || {
            let mut p = params0.clone();
            for s in train0 {
                black_box(train_step(&mut p, s, &mut ws, None, 0.0, 0.05, 40.0));
            }
        },
        || {
            let mut p = params0.clone();
            for s in train0 {
                black_box(seed::train_step(&mut p, s, 0.05, 40.0));
            }
        },
    );
    let (opt_step_s, seed_step_s) = (opt_step_s / steps as f64, seed_step_s / steps as f64);
    let train_speedup = seed_step_s / opt_step_s;
    rows.push(Row {
        metric: "train_step_reference_us",
        value: seed_step_s * 1e6,
        unit: "us",
    });
    rows.push(Row {
        metric: "train_step_optimized_us",
        value: opt_step_s * 1e6,
        unit: "us",
    });
    rows.push(Row {
        metric: "train_step_speedup",
        value: train_speedup,
        unit: "x",
    });
    eprintln!(
        "[perf_gate] train step: {:.1} us -> {:.1} us ({:.2}x)",
        seed_step_s * 1e6,
        opt_step_s * 1e6,
        train_speedup
    );

    // --- Suite build: the full pinned 3-task training schedule, seed step
    // vs production step (dataset generation and encoding excluded from the
    // timed region on both sides; training dominates a real build).
    let (opt_build_s, seed_build_s) = interleaved_min_s(
        4,
        || {
            for (p0, train, _) in &tasks {
                let mut p = p0.clone();
                black_box(train_optimized(&mut p, train));
            }
        },
        || {
            for (p0, train, _) in &tasks {
                let mut p = p0.clone();
                black_box(train_seed(&mut p, train));
            }
        },
    );
    let build_speedup = seed_build_s / opt_build_s;
    rows.push(Row {
        metric: "suite_build_reference_s",
        value: seed_build_s,
        unit: "s",
    });
    rows.push(Row {
        metric: "suite_build_optimized_s",
        value: opt_build_s,
        unit: "s",
    });
    rows.push(Row {
        metric: "suite_build_speedup",
        value: build_speedup,
        unit: "x",
    });
    rows.push(Row {
        metric: "suite_build_workers",
        value: worker_threads(PINNED_TASKS.len()) as f64,
        unit: "threads",
    });
    eprintln!(
        "[perf_gate] suite build: {:.2} s -> {:.2} s ({:.2}x)",
        seed_build_s, opt_build_s, build_speedup
    );

    // --- Per-inference: model forward (optimized workspace vs seed) and
    // the cycle-accurate accelerator simulation (absolute).
    let trained = {
        let mut p = params0.clone();
        train_optimized(&mut p, train0);
        p
    };
    let n_inf = test0.len();
    let mut inf_ws = Workspace::for_params(&trained);
    let (opt_inf_s, seed_inf_s) = interleaved_min_s(
        8,
        || {
            for s in test0 {
                black_box(inf_ws.predict(&trained, s));
            }
        },
        || {
            for s in test0 {
                black_box(
                    seed::forward(&trained, s)
                        .logits
                        .argmax()
                        .expect("non-empty logits"),
                );
            }
        },
    );
    let (opt_inf_s, seed_inf_s) = (opt_inf_s / n_inf as f64, seed_inf_s / n_inf as f64);
    rows.push(Row {
        metric: "inference_reference_us",
        value: seed_inf_s * 1e6,
        unit: "us",
    });
    rows.push(Row {
        metric: "inference_optimized_us",
        value: opt_inf_s * 1e6,
        unit: "us",
    });
    rows.push(Row {
        metric: "inference_speedup",
        value: seed_inf_s / opt_inf_s,
        unit: "x",
    });

    let accel = Accelerator::new(
        memn2n::TrainedModel {
            task: PINNED_TASKS[0],
            params: trained.clone(),
            encoder: {
                let data = DatasetBuilder::new()
                    .train_samples(PINNED_TRAIN_SAMPLES)
                    .test_samples(PINNED_TEST_SAMPLES)
                    .seed(7)
                    .build_task(PINNED_TASKS[0]);
                Trainer::from_task_data(&data, pinned_model(), pinned_train())
                    .as_model()
                    .encoder
            },
        },
        AccelConfig::default(),
    );
    let hw_inf_s = median_s(
        || {
            for s in test0 {
                black_box(accel.run(s));
            }
        },
        3,
    ) / n_inf as f64;
    rows.push(Row {
        metric: "hw_sim_inference_us",
        value: hw_inf_s * 1e6,
        unit: "us",
    });

    // --- Kernel micro-comparisons.
    kernel_rows(&mut rows);

    // --- Report + gate.
    let json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"metric\": \"{}\", \"value\": {:.6}, \"unit\": \"{}\"}}",
                r.metric, r.value, r.unit
            )
        })
        .collect();
    let body = format!("[\n{}\n]\n", json.join(",\n"));
    std::fs::write("BENCH_PR1.json", &body).expect("write BENCH_PR1.json");
    println!("{body}");

    let mut failed = Vec::new();
    if build_speedup < 1.3 {
        failed.push(format!("suite_build_speedup {build_speedup:.2} < 1.3"));
    }
    if train_speedup < 1.2 {
        failed.push(format!("train_step_speedup {train_speedup:.2} < 1.2"));
    }
    if failed.is_empty() {
        eprintln!("[perf_gate] PASS");
    } else {
        eprintln!("[perf_gate] FAIL: {}", failed.join("; "));
        if !no_fail {
            std::process::exit(1);
        }
    }
}
