//! Performance regression gate for the hot paths.
//!
//! Times the production implementations against faithful "seed"
//! re-implementations (naive kernels from [`mann_linalg::reference`],
//! per-sample allocation, unfused backward) on a pinned workload, then
//! enforces speedup floors:
//!
//! * suite build (3-task pinned workload): **>= 1.3x**
//! * per-sample training step:             **>= 1.2x**
//! * serve throughput, repeated-story trace: **>= 1.5x** requests/s
//! * serve throughput, unique-story trace:   **>= 1.2x** requests/s
//! * same-story batch fusion, burst trace:   **>= 1.3x** simulated req/s
//! * cluster scaling, 1 -> 4 shards:         **>= 3.0x** simulated req/s
//! * hot-key split, pathological story:      **>= 1.3x** simulated req/s
//!
//! Training/kernel results are written to `BENCH_PR1.json`, serving
//! results to `BENCH_PR3.json`, dedup results to `BENCH_PR6.json`,
//! cluster scale-out results to `BENCH_PR7.json`, and membership /
//! hot-key split results to `BENCH_PR10.json`, as rows of
//! `{"metric": ..., "value": ..., "unit": ...}`. Every baseline is real,
//! runnable code — not a recorded number — so the gate keeps meaning as
//! hardware changes. Each reference path is cross-checked against the
//! production path for numerical agreement before any timing, so a gate
//! pass can't come from the baseline silently computing something else.
//!
//! The serve baseline vendors the pre-cache engine's numeric phase: one
//! monolithic run per request (no story dedup, no resident-story reuse), a
//! fresh MEM module — including its exp LUT — per inference, f32 row
//! storage re-quantized on every access, and the CONTROL codec
//! round-trip. The production side times the *entire* `Server::serve`
//! call (event loop and report included), so the comparison is biased
//! against the optimized path.
//!
//! ```sh
//! cargo run -p mann-bench --release --bin perf_gate             # gate mode
//! cargo run -p mann-bench --release --bin perf_gate -- --no-fail
//! ```

use std::hint::black_box;
use std::time::Instant;

use mann_babi::{DatasetBuilder, EncodedSample, TaskId};
use mann_core::parallel::worker_threads;
use mann_core::{SuiteConfig, TaskSuite};
use mann_hw::{AccelConfig, Accelerator, DatapathConfig, MemIndexConfig, PcieLink};
use mann_linalg::{Matrix, Vector};
use mann_serve::{
    ArrivalTrace, Cluster, ClusterConfig, HopPrune, MembershipPlan, SchedulePolicy, ServeConfig,
    Server, TraceConfig,
};
use memn2n::{train_step, ModelConfig, Params, TrainConfig, Trainer, Workspace};

/// Seed-style model code: the pre-optimization implementations, kept
/// runnable as the gate's baseline. Naive kernels, a freshly allocated
/// trace and gradient set per sample, separate (unfused) backward passes —
/// exactly the structure the optimized path replaced. Linear controller
/// only (the paper's datapath).
mod seed {
    use mann_babi::EncodedSample;
    use mann_linalg::{reference, Matrix, Vector};
    use memn2n::{Gradients, Params};

    pub struct Trace {
        pub mem_a: Matrix,
        pub mem_c: Matrix,
        pub keys: Vec<Vector>,
        // The seed retained the raw scores and read vectors in its trace
        // too; kept (though backward does not need them) so the baseline
        // allocates what the seed allocated.
        #[allow(dead_code)]
        pub scores: Vec<Vector>,
        #[allow(dead_code)]
        pub reads: Vec<Vector>,
        pub attention: Vec<Vector>,
        pub hiddens: Vec<Vector>,
        pub logits: Vector,
    }

    fn softmax(x: &Vector) -> Vector {
        let max = x.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let exps: Vec<f32> = x.iter().map(|&v| (v - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        Vector::from(exps.into_iter().map(|e| e / z).collect::<Vec<f32>>())
    }

    pub fn forward(params: &Params, sample: &EncodedSample) -> Trace {
        assert!(
            params.gru.is_none(),
            "seed baseline models the linear controller"
        );
        let e = params.config.embed_dim;
        let l = sample.sentences.len();
        let hops = params.config.hops;
        let w_a = &params.w_emb_a;
        let w_c = params.content_embedding();
        let mut mem_a = Matrix::zeros(l, e);
        let mut mem_c = Matrix::zeros(l, e);
        for (i, sent) in sample.sentences.iter().enumerate() {
            mem_a
                .row_mut(i)
                .copy_from_slice(reference::sum_cols(w_a, sent).as_slice());
            mem_c
                .row_mut(i)
                .copy_from_slice(reference::sum_cols(w_c, sent).as_slice());
        }
        let q_emb = reference::sum_cols(w_a, &sample.question);
        let mut keys = vec![q_emb];
        let mut scores = Vec::new();
        let mut reads = Vec::new();
        let mut attention = Vec::new();
        let mut hiddens: Vec<Vector> = Vec::new();
        for t in 0..hops {
            let score = reference::matvec(&mem_a, &keys[t]);
            let a = softmax(&score);
            let r = reference::matvec_transposed(&mem_c, &a);
            let wk = reference::matvec(&params.w_r, &keys[t]);
            let h: Vector = r.iter().zip(wk.iter()).map(|(x, y)| x + y).collect();
            scores.push(score);
            reads.push(r);
            attention.push(a);
            hiddens.push(h);
            if t + 1 < hops {
                keys.push(hiddens[t].clone());
            }
        }
        let logits = reference::matvec(&params.w_o, hiddens.last().expect("hops >= 1"));
        Trace {
            mem_a,
            mem_c,
            keys,
            scores,
            reads,
            attention,
            hiddens,
            logits,
        }
    }

    /// The seed's gradient clip: per-matrix Frobenius norms computed with a
    /// single scalar accumulator chain (the current implementation uses a
    /// multi-accumulator reduction instead — one of the optimizations this
    /// gate measures).
    pub fn clip_to(grads: &mut Gradients, max_norm: f32) -> f32 {
        fn fro(m: &Matrix) -> f32 {
            m.as_slice().iter().map(|x| x * x).sum::<f32>().sqrt()
        }
        let n = (fro(&grads.w_emb_a).powi(2)
            + fro(&grads.w_emb_c).powi(2)
            + fro(&grads.w_r).powi(2)
            + fro(&grads.w_o).powi(2))
        .sqrt();
        if n > max_norm && n > 0.0 {
            let s = max_norm / n;
            grads.w_emb_a.scale_in_place(s);
            grads.w_emb_c.scale_in_place(s);
            grads.w_r.scale_in_place(s);
            grads.w_o.scale_in_place(s);
        }
        n
    }

    pub fn loss_grad(logits: &Vector, target: usize) -> (f32, Vector) {
        let mut grad = softmax(logits);
        let loss = -(grad[target].max(1e-12)).ln();
        grad[target] -= 1.0;
        (loss, grad)
    }

    pub fn backward(
        params: &Params,
        sample: &EncodedSample,
        trace: &Trace,
        dz: &Vector,
        grads: &mut Gradients,
    ) {
        let hops = params.config.hops;
        let l = sample.sentences.len();
        let e = params.config.embed_dim;
        reference::add_outer(&mut grads.w_o, 1.0, dz, trace.hiddens.last().expect("hops"));
        let mut dh = reference::matvec_transposed(&params.w_o, dz);
        let mut d_mem_a = Matrix::zeros(l, e);
        let mut d_mem_c = Matrix::zeros(l, e);
        for t in (0..hops).rev() {
            let k = &trace.keys[t];
            let a = &trace.attention[t];
            let dr = dh.clone();
            reference::add_outer(&mut grads.w_r, 1.0, &dh, k);
            let mut dk = reference::matvec_transposed(&params.w_r, &dh);
            // Eq 5: da_i = dr . M_c[i], dM_c[i] += a_i dr.
            let mut da = Vector::zeros(l);
            for i in 0..l {
                let row = trace.mem_c.row(i);
                let drow = d_mem_c.row_mut(i);
                let mut dot = 0.0f32;
                for (j, &dv) in dr.iter().enumerate() {
                    dot += row[j] * dv;
                    drow[j] += a[i] * dv;
                }
                da[i] = dot;
            }
            // Eq 1 softmax backward.
            let dot: f32 = a.iter().zip(da.iter()).map(|(x, y)| x * y).sum();
            let mut du = Vector::zeros(l);
            for i in 0..l {
                du[i] = a[i] * (da[i] - dot);
            }
            for i in 0..l {
                let drow = d_mem_a.row_mut(i);
                for (dst, kv) in drow.iter_mut().zip(k.iter()) {
                    *dst += du[i] * kv;
                }
                let mrow = trace.mem_a.row(i);
                for (dst, m) in dk.iter_mut().zip(mrow.iter()) {
                    *dst += du[i] * m;
                }
            }
            if t > 0 {
                dh = dk;
            } else {
                for &w in &sample.question {
                    grads.w_emb_a.add_to_col(w, 1.0, &dk).expect("emb shape");
                }
            }
        }
        let tie = params.config.tie_embeddings;
        for (i, sent) in sample.sentences.iter().enumerate() {
            for &w in sent {
                grads
                    .w_emb_a
                    .add_to_col_slice(w, 1.0, d_mem_a.row(i))
                    .expect("emb shape");
                let target = if tie {
                    &mut grads.w_emb_a
                } else {
                    &mut grads.w_emb_c
                };
                target
                    .add_to_col_slice(w, 1.0, d_mem_c.row(i))
                    .expect("emb shape");
            }
        }
    }

    /// The seed's per-sample SGD step: allocating forward, allocating loss
    /// gradient, a fresh `Gradients` per sample, unfused backward.
    pub fn train_step(params: &mut Params, sample: &EncodedSample, lr: f32, clip: f32) -> f32 {
        let trace = forward(params, sample);
        let (loss, dz) = loss_grad(&trace.logits, sample.answer);
        let mut grads = Gradients::zeros(params);
        backward(params, sample, &trace, &dz, &mut grads);
        clip_to(&mut grads, clip);
        grads.apply(params, lr);
        loss
    }
}

/// Pre-cache serving engine, kept runnable as the serve gate's baseline:
/// the numeric phase as it stood before the write/query split — one
/// monolithic inference per request with a freshly built MEM module (and
/// exp LUT) each time, f32 memory rows converted to fixed point on every
/// access, and the host-stream codec round-trip on the CONTROL path.
mod seed_serve {
    use mann_babi::EncodedSample;
    use mann_hw::adder_tree::AdderTree;
    use mann_hw::div_unit::DivUnit;
    use mann_hw::exp_unit::ExpUnit;
    use mann_hw::modules::{encode_sample_stream, ControlModule, OutputModule, ReadModule};
    use mann_hw::{quantize_params, Cycles, DatapathConfig};
    use mann_linalg::activation::ExpLut;
    use mann_linalg::{Fixed, Matrix};
    use memn2n::TrainedModel;

    /// The old MEM module: f32 rows, per-access quantization.
    struct Mem {
        rows_a: Vec<Vec<f32>>,
        rows_c: Vec<Vec<f32>>,
        tree: AdderTree,
        exp: ExpUnit,
        div: DivUnit,
        embed_dim: usize,
    }

    impl Mem {
        fn new(embed_dim: usize, dp: &DatapathConfig) -> Self {
            Self {
                rows_a: Vec::new(),
                rows_c: Vec::new(),
                tree: AdderTree::new(dp.tree_width),
                // The per-run LUT rebuild (256 `exp` calls) the resident
                // story cache amortizes away.
                exp: ExpUnit::new(ExpLut::new(dp.exp_lut_entries, -16.0), dp.exp_latency),
                div: DivUnit::new(dp.div_latency),
                embed_dim,
            }
        }

        fn write(&mut self, addr_row: Vec<f32>, content_row: Vec<f32>) {
            self.rows_a.push(addr_row);
            self.rows_c.push(content_row);
        }

        fn address_into(&self, key: &[f32], attention: &mut Vec<f32>) -> Cycles {
            attention.clear();
            let l = self.rows_a.len();
            if l == 0 {
                return Cycles::ZERO;
            }
            let mut scores = Vec::with_capacity(l);
            let mut score_cycles = Cycles::ZERO;
            let per_dot = (self.embed_dim.div_ceil(self.tree.width())) as u64;
            for row in &self.rows_a {
                let (s, _) = self.tree.fixed_dot(row, key);
                scores.push(s.to_f32());
                score_cycles += Cycles::new(per_dot);
            }
            score_cycles += Cycles::new(self.tree.depth() + 1);
            let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let shifted: Vec<f32> = scores.iter().map(|s| s - max).collect();
            let (exps, exp_cycles) = self.exp.eval_batch(&shifted);
            let (denom, sum_cycles) = self.tree.reduce(&exps);
            let (normalized, div_cycles) = self.div.div_batch(&exps, denom);
            if denom.is_zero() {
                attention.resize(l, 1.0 / l as f32);
            } else {
                attention.extend(normalized.into_iter().map(Fixed::to_f32));
            }
            score_cycles + exp_cycles + sum_cycles + div_cycles
        }

        fn read_into(&self, attention: &[f32], out: &mut Vec<f32>) -> Cycles {
            out.clear();
            out.reserve(self.embed_dim);
            for j in 0..self.embed_dim {
                let mut acc = Fixed::ZERO;
                for (a, row) in attention.iter().zip(&self.rows_c) {
                    acc += Fixed::from_f32(*a) * Fixed::from_f32(row[j]);
                }
                out.push(acc.to_f32());
            }
            let per_row = (self.embed_dim.div_ceil(self.tree.width())) as u64;
            Cycles::new(self.rows_c.len() as u64 * per_row + self.tree.depth() + 1)
        }
    }

    /// The old assembled accelerator numeric path.
    pub struct SeedAccel {
        w_emb_a: Matrix,
        w_emb_c: Matrix,
        read: ReadModule,
        output: OutputModule,
        control: ControlModule,
        dp: DatapathConfig,
        hops: usize,
        embed_dim: usize,
    }

    impl SeedAccel {
        pub fn new(model: &TrainedModel, dp: DatapathConfig) -> Self {
            let q = quantize_params(&model.params, dp.frac_bits);
            Self {
                w_emb_a: q.w_emb_a.clone(),
                w_emb_c: q.content_embedding().clone(),
                read: ReadModule::new(q.w_r.clone(), &dp),
                output: OutputModule::new(q.w_o.clone(), &dp),
                control: ControlModule::new(),
                hops: model.params.config.hops,
                embed_dim: model.params.config.embed_dim,
                dp,
            }
        }

        /// Per-access fixed-point column accumulation (the old
        /// INPUT & WRITE path).
        fn accumulate(&self, weight: &Matrix, words: &[usize]) -> Vec<f32> {
            let mut acc = vec![Fixed::ZERO; self.embed_dim];
            for &w in words {
                for (r, slot) in acc.iter_mut().enumerate() {
                    *slot += Fixed::from_f32(weight[(r, w)]);
                }
            }
            acc.into_iter().map(Fixed::to_f32).collect()
        }

        /// One monolithic inference; returns the answer and total compute
        /// cycles (the pieces the serve layer consumed).
        pub fn run(&self, sample: &EncodedSample) -> (usize, Cycles) {
            // CONTROL: host stream codec round-trip.
            let stream = encode_sample_stream(sample);
            let ((sentences, question), mut cycles) = self
                .control
                .dispatch(&stream)
                .expect("self-produced stream is well-formed");

            // INPUT & WRITE into a freshly built memory.
            let mut mem = Mem::new(self.embed_dim, &self.dp);
            for sent in &sentences {
                let row_a = self.accumulate(&self.w_emb_a, sent);
                let row_c = self.accumulate(&self.w_emb_c, sent);
                mem.write(row_a, row_c);
                cycles += Cycles::new(sent.len() as u64 + 2);
            }
            let mut key = self.accumulate(&self.w_emb_a, &question);
            cycles += Cycles::new(question.len() as u64 + 2);

            // MEM / READ hops.
            let mut hidden = vec![0.0f32; self.embed_dim];
            let mut attention: Vec<f32> = Vec::new();
            let mut read_vec: Vec<f32> = Vec::new();
            for _hop in 0..self.hops {
                cycles += mem.address_into(&key, &mut attention);
                cycles += mem.read_into(&attention, &mut read_vec);
                cycles += self.read.step_into(&read_vec, &key, &mut hidden);
                std::mem::swap(&mut key, &mut hidden);
            }
            let hidden = if self.hops == 0 { &hidden } else { &key };

            // OUTPUT search.
            let out = self.output.search(hidden);
            cycles += out.cycles;
            (out.label, cycles)
        }
    }
}

/// One benchmark JSON row.
struct Row {
    metric: &'static str,
    value: f64,
    unit: &'static str,
}

/// Median wall-clock seconds of `reps` runs of `f`.
fn median_s<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Times two workloads in alternating rounds and returns each side's
/// minimum. Interleaving keeps slow drift (thermal, a noisy neighbour on a
/// shared core) from biasing one side, and the minimum discards noise
/// spikes — external interference only ever adds time.
fn interleaved_min_s<A: FnMut(), B: FnMut()>(rounds: usize, mut a: A, mut b: B) -> (f64, f64) {
    let (mut min_a, mut min_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds.max(1) {
        let t0 = Instant::now();
        a();
        min_a = min_a.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        b();
        min_b = min_b.min(t0.elapsed().as_secs_f64());
    }
    (min_a, min_b)
}

/// The pinned workload: three tasks, small fixed splits and epochs, linear
/// controller — big enough to be timing-stable, small enough for CI.
fn pinned_model() -> ModelConfig {
    ModelConfig {
        embed_dim: 50,
        hops: 3,
        tie_embeddings: false,
        ..ModelConfig::default()
    }
}

fn pinned_train() -> TrainConfig {
    TrainConfig {
        epochs: 8,
        learning_rate: 0.05,
        decay_every: 4,
        clip_norm: 40.0,
        seed: 7,
        ..TrainConfig::default()
    }
}

const PINNED_TASKS: [TaskId; 3] = [
    TaskId::SingleSupportingFact,
    TaskId::YesNoQuestions,
    TaskId::AgentMotivations,
];
const PINNED_TRAIN_SAMPLES: usize = 150;
const PINNED_TEST_SAMPLES: usize = 20;

/// Initial parameters and encoded splits for one pinned task.
fn pinned_task(task: TaskId) -> (Params, Vec<EncodedSample>, Vec<EncodedSample>) {
    let data = DatasetBuilder::new()
        .train_samples(PINNED_TRAIN_SAMPLES)
        .test_samples(PINNED_TEST_SAMPLES)
        .seed(7)
        .build_task(task);
    let trainer = Trainer::from_task_data(&data, pinned_model(), pinned_train());
    let params = trainer.as_model().params;
    (
        params,
        trainer.train_set().to_vec(),
        trainer.test_set().to_vec(),
    )
}

/// Runs the pinned training schedule with the production step.
fn train_optimized(params: &mut Params, train_set: &[EncodedSample]) -> f32 {
    let cfg = pinned_train();
    let mut ws = Workspace::for_params(params);
    let mut lr = cfg.learning_rate;
    let mut loss = 0.0;
    for epoch in 0..cfg.epochs {
        if cfg.decay_every > 0 && epoch > 0 && epoch % cfg.decay_every == 0 {
            lr *= 0.5;
        }
        for sample in train_set {
            loss = train_step(params, sample, &mut ws, None, 0.0, lr, cfg.clip_norm);
        }
    }
    loss
}

/// Runs the identical schedule with the seed-style step.
fn train_seed(params: &mut Params, train_set: &[EncodedSample]) -> f32 {
    let cfg = pinned_train();
    let mut lr = cfg.learning_rate;
    let mut loss = 0.0;
    for epoch in 0..cfg.epochs {
        if cfg.decay_every > 0 && epoch > 0 && epoch % cfg.decay_every == 0 {
            lr *= 0.5;
        }
        for sample in train_set {
            loss = seed::train_step(params, sample, lr, cfg.clip_norm);
        }
    }
    loss
}

/// Cross-check: the two implementations must agree numerically before we
/// trust any timing comparison between them.
fn verify_agreement(params: &Params, samples: &[EncodedSample]) {
    let mut p_opt = params.clone();
    let mut p_ref = params.clone();
    let mut ws = Workspace::for_params(&p_opt);
    for s in samples.iter().take(32) {
        let lo = train_step(&mut p_opt, s, &mut ws, None, 0.0, 0.05, 40.0);
        let lr = seed::train_step(&mut p_ref, s, 0.05, 40.0);
        assert!(
            (lo - lr).abs() <= 1e-5 * lo.abs().max(1.0),
            "loss mismatch: optimized {lo} vs seed {lr}"
        );
    }
    let diff = max_param_diff(&p_opt, &p_ref);
    assert!(diff <= 1e-4, "parameter divergence after 32 steps: {diff}");
}

fn max_param_diff(a: &Params, b: &Params) -> f32 {
    let mats = [
        (&a.w_emb_a, &b.w_emb_a),
        (&a.w_emb_c, &b.w_emb_c),
        (&a.w_r, &b.w_r),
        (&a.w_o, &b.w_o),
    ];
    mats.iter()
        .flat_map(|(x, y)| {
            x.as_slice()
                .iter()
                .zip(y.as_slice())
                .map(|(u, v)| (u - v).abs())
        })
        .fold(0.0f32, f32::max)
}

/// Deterministic pseudo-random fill for kernel operands.
fn fill(v: &mut [f32], mut state: u64) {
    for x in v {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *x = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
    }
}

fn kernel_rows(rows: &mut Vec<Row>) {
    let (m, n) = (96, 96);
    let mut w = Matrix::zeros(m, n);
    fill(w.as_mut_slice(), 1);
    let mut x = Vector::zeros(n);
    fill(x.as_mut_slice(), 2);
    let mut xr = Vector::zeros(m);
    fill(xr.as_mut_slice(), 3);
    let mut b = Matrix::zeros(n, m);
    fill(b.as_mut_slice(), 4);
    let iters = 2000;

    let mut out = Vector::default();
    let opt_matvec = median_s(
        || {
            for _ in 0..iters {
                w.matvec_into(black_box(&x), &mut out).expect("shape");
                black_box(&out);
            }
        },
        5,
    );
    let ref_matvec = median_s(
        || {
            for _ in 0..iters {
                black_box(mann_linalg::reference::matvec(black_box(&w), black_box(&x)));
            }
        },
        5,
    );
    let opt_matvec_t = median_s(
        || {
            for _ in 0..iters {
                w.matvec_transposed_into(black_box(&xr), &mut out)
                    .expect("shape");
                black_box(&out);
            }
        },
        5,
    );
    let ref_matvec_t = median_s(
        || {
            for _ in 0..iters {
                black_box(mann_linalg::reference::matvec_transposed(
                    black_box(&w),
                    black_box(&xr),
                ));
            }
        },
        5,
    );
    let opt_matmul = median_s(
        || {
            for _ in 0..iters / 20 {
                black_box(w.matmul(black_box(&b)).expect("shape"));
            }
        },
        5,
    );
    let ref_matmul = median_s(
        || {
            for _ in 0..iters / 20 {
                black_box(mann_linalg::reference::matmul(black_box(&w), black_box(&b)));
            }
        },
        5,
    );
    rows.push(Row {
        metric: "kernel_matvec_speedup",
        value: ref_matvec / opt_matvec,
        unit: "x",
    });
    rows.push(Row {
        metric: "kernel_matvec_transposed_speedup",
        value: ref_matvec_t / opt_matvec_t,
        unit: "x",
    });
    rows.push(Row {
        metric: "kernel_matmul_speedup",
        value: ref_matmul / opt_matmul,
        unit: "x",
    });
}

fn main() {
    let no_fail = std::env::args().any(|a| a == "--no-fail");
    let mut rows: Vec<Row> = Vec::new();

    eprintln!(
        "[perf_gate] preparing pinned workload ({} tasks) ...",
        PINNED_TASKS.len()
    );
    let tasks: Vec<(Params, Vec<EncodedSample>, Vec<EncodedSample>)> =
        PINNED_TASKS.iter().map(|&t| pinned_task(t)).collect();
    verify_agreement(&tasks[0].0, &tasks[0].1);
    eprintln!("[perf_gate] baseline agrees with production; timing ...");

    // --- Per-sample training step (single task, per-step granularity).
    let (params0, train0, test0) = &tasks[0];
    let steps = train0.len();
    let mut ws = Workspace::for_params(params0);
    {
        // Warm the workspace buffers once before timing.
        let mut p = params0.clone();
        for s in train0.iter().take(8) {
            let _ = train_step(&mut p, s, &mut ws, None, 0.0, 0.05, 40.0);
        }
    }
    let (opt_step_s, seed_step_s) = interleaved_min_s(
        5,
        || {
            let mut p = params0.clone();
            for s in train0 {
                black_box(train_step(&mut p, s, &mut ws, None, 0.0, 0.05, 40.0));
            }
        },
        || {
            let mut p = params0.clone();
            for s in train0 {
                black_box(seed::train_step(&mut p, s, 0.05, 40.0));
            }
        },
    );
    let (opt_step_s, seed_step_s) = (opt_step_s / steps as f64, seed_step_s / steps as f64);
    let train_speedup = seed_step_s / opt_step_s;
    rows.push(Row {
        metric: "train_step_reference_us",
        value: seed_step_s * 1e6,
        unit: "us",
    });
    rows.push(Row {
        metric: "train_step_optimized_us",
        value: opt_step_s * 1e6,
        unit: "us",
    });
    rows.push(Row {
        metric: "train_step_speedup",
        value: train_speedup,
        unit: "x",
    });
    eprintln!(
        "[perf_gate] train step: {:.1} us -> {:.1} us ({:.2}x)",
        seed_step_s * 1e6,
        opt_step_s * 1e6,
        train_speedup
    );

    // --- Suite build: the full pinned 3-task training schedule, seed step
    // vs production step (dataset generation and encoding excluded from the
    // timed region on both sides; training dominates a real build).
    let (opt_build_s, seed_build_s) = interleaved_min_s(
        4,
        || {
            for (p0, train, _) in &tasks {
                let mut p = p0.clone();
                black_box(train_optimized(&mut p, train));
            }
        },
        || {
            for (p0, train, _) in &tasks {
                let mut p = p0.clone();
                black_box(train_seed(&mut p, train));
            }
        },
    );
    let build_speedup = seed_build_s / opt_build_s;
    rows.push(Row {
        metric: "suite_build_reference_s",
        value: seed_build_s,
        unit: "s",
    });
    rows.push(Row {
        metric: "suite_build_optimized_s",
        value: opt_build_s,
        unit: "s",
    });
    rows.push(Row {
        metric: "suite_build_speedup",
        value: build_speedup,
        unit: "x",
    });
    rows.push(Row {
        metric: "suite_build_workers",
        value: worker_threads(PINNED_TASKS.len()) as f64,
        unit: "threads",
    });
    eprintln!(
        "[perf_gate] suite build: {:.2} s -> {:.2} s ({:.2}x)",
        seed_build_s, opt_build_s, build_speedup
    );

    // --- Per-inference: model forward (optimized workspace vs seed) and
    // the cycle-accurate accelerator simulation (absolute).
    let trained = {
        let mut p = params0.clone();
        train_optimized(&mut p, train0);
        p
    };
    let n_inf = test0.len();
    let mut inf_ws = Workspace::for_params(&trained);
    let (opt_inf_s, seed_inf_s) = interleaved_min_s(
        8,
        || {
            for s in test0 {
                black_box(inf_ws.predict(&trained, s));
            }
        },
        || {
            for s in test0 {
                black_box(
                    seed::forward(&trained, s)
                        .logits
                        .argmax()
                        .expect("non-empty logits"),
                );
            }
        },
    );
    let (opt_inf_s, seed_inf_s) = (opt_inf_s / n_inf as f64, seed_inf_s / n_inf as f64);
    rows.push(Row {
        metric: "inference_reference_us",
        value: seed_inf_s * 1e6,
        unit: "us",
    });
    rows.push(Row {
        metric: "inference_optimized_us",
        value: opt_inf_s * 1e6,
        unit: "us",
    });
    rows.push(Row {
        metric: "inference_speedup",
        value: seed_inf_s / opt_inf_s,
        unit: "x",
    });

    let accel = Accelerator::new(
        memn2n::TrainedModel {
            task: PINNED_TASKS[0],
            params: trained.clone(),
            encoder: {
                let data = DatasetBuilder::new()
                    .train_samples(PINNED_TRAIN_SAMPLES)
                    .test_samples(PINNED_TEST_SAMPLES)
                    .seed(7)
                    .build_task(PINNED_TASKS[0]);
                Trainer::from_task_data(&data, pinned_model(), pinned_train())
                    .as_model()
                    .encoder
            },
        },
        AccelConfig::default(),
    );
    let hw_inf_s = median_s(
        || {
            for s in test0 {
                black_box(accel.run(s));
            }
        },
        3,
    ) / n_inf as f64;
    rows.push(Row {
        metric: "hw_sim_inference_us",
        value: hw_inf_s * 1e6,
        unit: "us",
    });

    // --- Kernel micro-comparisons.
    kernel_rows(&mut rows);

    // --- Serve throughput: the cache-aware engine vs the pre-cache
    // per-request engine.
    eprintln!("[perf_gate] training serve workload ...");
    let serve_suite = TaskSuite::build(&SuiteConfig {
        tasks: vec![TaskId::SingleSupportingFact, TaskId::AgentMotivations],
        train_samples: 120,
        test_samples: 24,
        seed: 11,
        ..SuiteConfig::quick()
    });
    let mut serve_rows: Vec<Row> = Vec::new();
    let (repeated_speedup, unique_speedup) = serve_gate(&serve_suite, &mut serve_rows);

    // --- Compute-dedup levers: same-story batch fusion and adaptive hop
    // pruning, measured in simulated time on a compute-bound trace.
    let mut dedup_rows: Vec<Row> = Vec::new();
    let batched_speedup = batched_serve_gate(&serve_suite, &mut dedup_rows);

    // --- Cluster scale-out: completed-throughput scaling from one shard
    // to a four-shard / replication-2 fleet on a story-heavy trace.
    let mut cluster_rows: Vec<Row> = Vec::new();
    let cluster_scaling = cluster_gate(&mut cluster_rows);

    // --- Live membership: hot-key splitting on a pathological
    // single-story burst, pinned-shard vs full-replica-set fan-out.
    let mut membership_rows: Vec<Row> = Vec::new();
    let split_recovery = membership_gate(&mut membership_rows);

    // --- Sub-linear addressing: the IVF candidate index against the
    // exact scan at a multi-thousand-sentence memory point.
    let mut index_rows: Vec<Row> = Vec::new();
    let (indexed_speedup, indexed_agreement, indexed_fallbacks) =
        indexed_gate(&serve_suite, &mut index_rows);

    // --- Report + gate.
    write_rows("BENCH_PR1.json", &rows);
    write_rows("BENCH_PR3.json", &serve_rows);
    write_rows("BENCH_PR6.json", &dedup_rows);
    write_rows("BENCH_PR7.json", &cluster_rows);
    write_rows("BENCH_PR8.json", &index_rows);
    write_rows("BENCH_PR10.json", &membership_rows);

    let mut failed = Vec::new();
    if build_speedup < 1.3 {
        failed.push(format!("suite_build_speedup {build_speedup:.2} < 1.3"));
    }
    if train_speedup < 1.2 {
        failed.push(format!("train_step_speedup {train_speedup:.2} < 1.2"));
    }
    if repeated_speedup < 1.5 {
        failed.push(format!(
            "serve_repeated_story_speedup {repeated_speedup:.2} < 1.5"
        ));
    }
    if unique_speedup < 1.2 {
        failed.push(format!(
            "serve_unique_story_speedup {unique_speedup:.2} < 1.2"
        ));
    }
    if batched_speedup < 1.3 {
        failed.push(format!(
            "serve_batched_story_speedup {batched_speedup:.2} < 1.3"
        ));
    }
    if cluster_scaling < 3.0 {
        failed.push(format!("serve_cluster_scaling {cluster_scaling:.2} < 3.0"));
    }
    if split_recovery < 1.3 {
        failed.push(format!(
            "serve_hot_key_split_recovery {split_recovery:.2} < 1.3"
        ));
    }
    if indexed_speedup < 2.0 {
        failed.push(format!(
            "indexed_addressing_speedup {indexed_speedup:.2} < 2.0"
        ));
    }
    if indexed_agreement < 0.99 {
        failed.push(format!(
            "indexed_argmax_agreement {indexed_agreement:.3} < 0.99"
        ));
    }
    if indexed_fallbacks == 0 {
        failed.push("indexed_fallbacks 0 (fallback accounting never engaged)".into());
    }
    if failed.is_empty() {
        eprintln!("[perf_gate] PASS");
    } else {
        eprintln!("[perf_gate] FAIL: {}", failed.join("; "));
        if !no_fail {
            std::process::exit(1);
        }
    }
}

/// Formats and writes one benchmark row file, echoing it to stdout.
fn write_rows(path: &str, rows: &[Row]) {
    let json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"metric\": \"{}\", \"value\": {:.6}, \"unit\": \"{}\"}}",
                r.metric, r.value, r.unit
            )
        })
        .collect();
    let body = format!("[\n{}\n]\n", json.join(",\n"));
    std::fs::write(path, &body).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("{body}");
}

/// Times the production serving engine against the vendored pre-cache
/// engine on a repeated-story trace and a unique-story trace; returns the
/// two throughput speedups.
fn serve_gate(suite: &TaskSuite, rows: &mut Vec<Row>) -> (f64, f64) {
    let seed_accels: Vec<seed_serve::SeedAccel> = suite
        .tasks
        .iter()
        .map(|t| seed_serve::SeedAccel::new(&t.model, DatapathConfig::default()))
        .collect();

    // Cross-check before timing: on every request of the repeated trace the
    // seed engine must produce the production answer, and on cache misses
    // its cycle count must match the production run exactly — so the
    // baseline provably computes the same inference.
    let repeated = ArrivalTrace::generate(
        &TraceConfig {
            requests: 192,
            seed: 3,
            mean_interarrival_s: 150e-6,
            story_pool: 4,
        },
        suite,
    );
    let unique = ArrivalTrace::generate(
        &TraceConfig {
            requests: 96,
            seed: 5,
            mean_interarrival_s: 150e-6,
            story_pool: 0,
        },
        suite,
    );
    let server = Server::new(
        suite,
        ServeConfig {
            instances: 2,
            queue_capacity: 256,
            policy: SchedulePolicy::StoryAffinity,
            ..ServeConfig::default()
        },
    );
    let outcome = server.serve(&repeated);
    assert_eq!(outcome.completions.len(), repeated.len());
    for c in &outcome.completions {
        let sample = &suite.tasks[c.request.task_idx].test_set[c.request.sample_idx];
        let (answer, cycles) = seed_accels[c.request.task_idx].run(sample);
        assert_eq!(
            answer, c.run.answer,
            "seed engine answer diverged on request {}",
            c.request.id
        );
        if !c.run.cache_hit {
            assert_eq!(
                cycles, c.run.cycles,
                "seed engine cycles diverged on request {}",
                c.request.id
            );
        }
    }
    let hit_rate = outcome.report.cache.hit_rate;
    eprintln!(
        "[perf_gate] serve baseline agrees with production (repeated-trace hit rate {:.0}%); \
         timing ...",
        hit_rate * 100.0
    );

    let mut speedups = [0.0f64; 2];
    for (idx, (name, trace)) in [("repeated_story", &repeated), ("unique_story", &unique)]
        .into_iter()
        .enumerate()
    {
        let (opt_s, seed_s) = interleaved_min_s(
            5,
            || {
                black_box(server.serve(black_box(trace)));
            },
            || {
                for r in &trace.requests {
                    let sample = &suite.tasks[r.task_idx].test_set[r.sample_idx];
                    black_box(seed_accels[r.task_idx].run(black_box(sample)));
                }
            },
        );
        let n = trace.len() as f64;
        let speedup = seed_s / opt_s;
        speedups[idx] = speedup;
        let metric = |suffix: &'static str| -> &'static str {
            // Row.metric is &'static str; pick from a fixed table.
            match (name, suffix) {
                ("repeated_story", "ref") => "serve_repeated_story_reference_rps",
                ("repeated_story", "opt") => "serve_repeated_story_optimized_rps",
                ("repeated_story", "x") => "serve_repeated_story_speedup",
                ("unique_story", "ref") => "serve_unique_story_reference_rps",
                ("unique_story", "opt") => "serve_unique_story_optimized_rps",
                _ => "serve_unique_story_speedup",
            }
        };
        rows.push(Row {
            metric: metric("ref"),
            value: n / seed_s,
            unit: "req/s",
        });
        rows.push(Row {
            metric: metric("opt"),
            value: n / opt_s,
            unit: "req/s",
        });
        rows.push(Row {
            metric: metric("x"),
            value: speedup,
            unit: "x",
        });
        eprintln!(
            "[perf_gate] serve {name}: {:.0} req/s -> {:.0} req/s ({speedup:.2}x)",
            n / seed_s,
            n / opt_s,
        );
    }
    rows.push(Row {
        metric: "serve_repeated_story_hit_rate",
        value: hit_rate,
        unit: "frac",
    });
    (speedups[0], speedups[1])
}

/// Measures the compute-dedup levers in *simulated* time on a
/// compute-bound shared-story burst: same-story batch fusion (window 8)
/// against the unbatched event loop, and adaptive hop pruning's cycle
/// reduction against the full-hop schedule. Both sides run the identical
/// production `Server::serve`; only the lever config differs, so the
/// comparison isolates exactly the deduplicated work. Returns the batched
/// throughput speedup (simulated req/s ratio).
fn batched_serve_gate(suite: &TaskSuite, rows: &mut Vec<Row>) -> f64 {
    // A burst of questions over few stories, uploaded over a fast link:
    // the instance fabric is the bottleneck, so every deduplicated stream
    // cycle moves the makespan.
    let burst = ArrivalTrace::generate(
        &TraceConfig {
            requests: 192,
            seed: 3,
            mean_interarrival_s: 1e-9,
            story_pool: 4,
        },
        suite,
    );
    let config = |batch_window: usize, hop_prune: HopPrune| ServeConfig {
        instances: 2,
        queue_capacity: 256,
        inflight_limit: 8,
        story_cache: 4,
        policy: SchedulePolicy::StoryAffinity,
        pcie: PcieLink {
            bandwidth_bytes_per_s: 1.5e9,
            latency_per_transfer_s: 1e-6,
        },
        batch_window,
        hop_prune,
        ..ServeConfig::default()
    };

    let unbatched = Server::new(suite, config(0, HopPrune::default())).serve(&burst);
    let batched = Server::new(suite, config(8, HopPrune::default())).serve(&burst);
    assert_eq!(
        unbatched.report.answers_digest, batched.report.answers_digest,
        "batch fusion changed an answer"
    );
    assert!(
        batched.report.batch.fused_groups > 0,
        "batched gate trace formed no fused groups"
    );
    let speedup = batched.report.throughput_rps / unbatched.report.throughput_rps;
    rows.push(Row {
        metric: "serve_batched_story_unbatched_rps",
        value: unbatched.report.throughput_rps,
        unit: "req/s",
    });
    rows.push(Row {
        metric: "serve_batched_story_batched_rps",
        value: batched.report.throughput_rps,
        unit: "req/s",
    });
    rows.push(Row {
        metric: "serve_batched_story_speedup",
        value: speedup,
        unit: "x",
    });
    rows.push(Row {
        metric: "serve_batched_fused_groups",
        value: batched.report.batch.fused_groups as f64,
        unit: "groups",
    });
    rows.push(Row {
        metric: "serve_batched_stream_cycles_saved",
        value: batched.report.batch.cycles_saved as f64,
        unit: "cycles",
    });
    eprintln!(
        "[perf_gate] serve batched_story: {:.0} req/s -> {:.0} req/s ({speedup:.2}x, \
         {} fused groups)",
        unbatched.report.throughput_rps,
        batched.report.throughput_rps,
        batched.report.batch.fused_groups,
    );

    // Hop pruning: reported, not gated — the saved cycles trade against
    // answer agreement, which the golden campaign pins separately.
    let pruned = Server::new(suite, config(0, HopPrune::with_threshold(0.8))).serve(&burst);
    let p = &pruned.report.prune;
    let executed: u64 = pruned.completions.iter().map(|c| c.run.cycles.get()).sum();
    let reduction = p.cycles_saved as f64 / (executed + p.cycles_saved) as f64;
    rows.push(Row {
        metric: "serve_hop_prune_hops_saved",
        value: p.hops_saved as f64,
        unit: "hops",
    });
    rows.push(Row {
        metric: "serve_hop_prune_cycles_saved",
        value: p.cycles_saved as f64,
        unit: "cycles",
    });
    rows.push(Row {
        metric: "serve_hop_prune_cycle_reduction",
        value: reduction,
        unit: "frac",
    });
    eprintln!(
        "[perf_gate] hop pruning at {}: {} hops / {} cycles saved ({:.1}% of compute)",
        HopPrune::with_threshold(0.8),
        p.hops_saved,
        p.cycles_saved,
        reduction * 100.0,
    );
    speedup
}

/// Cluster scale-out gate: a saturating story-heavy burst served by one
/// shard vs a four-shard / replication-2 fleet. Each shard brings its own
/// link and instance pool, so completed throughput (in simulated time)
/// must scale near-linearly; the gate floors it at 3x. Routing must not
/// change any answer, so the completion digests are asserted equal first.
///
/// The gate builds its own suite with a wide test set (96 samples per
/// task): rendezvous balance is statistical over distinct story keys, so
/// a large story pool is what lets four shards draw near-fair shares.
/// Training is shortened — the gate measures throughput, not accuracy.
fn cluster_gate(rows: &mut Vec<Row>) -> f64 {
    eprintln!("[perf_gate] training cluster workload ...");
    let suite = &TaskSuite::build(&SuiteConfig {
        tasks: vec![TaskId::SingleSupportingFact, TaskId::AgentMotivations],
        train_samples: 40,
        test_samples: 96,
        seed: 11,
        ..SuiteConfig::quick()
    });
    let burst = ArrivalTrace::generate(
        &TraceConfig {
            requests: 384,
            seed: 41,
            mean_interarrival_s: 1e-9,
            story_pool: 96,
        },
        suite,
    );
    let base = ServeConfig {
        instances: 2,
        queue_capacity: 512,
        inflight_limit: 4,
        story_cache: 16,
        policy: SchedulePolicy::StoryAffinity,
        pcie: PcieLink {
            bandwidth_bytes_per_s: 1.5e9,
            latency_per_transfer_s: 1e-6,
        },
        ..ServeConfig::default()
    };
    let fleet = |shards: usize, replication: usize| {
        Cluster::new(
            suite,
            ClusterConfig {
                shards,
                replication,
                base: base.clone(),
                ..ClusterConfig::default()
            },
        )
        .serve(&burst)
    };
    let one = fleet(1, 1);
    let four = fleet(4, 2);
    assert_eq!(
        one.report.completed,
        burst.len(),
        "single shard dropped requests — widen the queue"
    );
    assert_eq!(
        four.report.completed,
        burst.len(),
        "four-shard fleet dropped requests"
    );
    assert_eq!(
        one.report.answers_digest, four.report.answers_digest,
        "sharding changed an answer"
    );
    let scaling = four.report.throughput_rps / one.report.throughput_rps;
    rows.push(Row {
        metric: "serve_cluster_1shard_rps",
        value: one.report.throughput_rps,
        unit: "req/s",
    });
    rows.push(Row {
        metric: "serve_cluster_4shard_rps",
        value: four.report.throughput_rps,
        unit: "req/s",
    });
    rows.push(Row {
        metric: "serve_cluster_scaling",
        value: scaling,
        unit: "x",
    });
    rows.push(Row {
        metric: "serve_cluster_4shard_p99_ms",
        value: four.report.latency.p99_s * 1e3,
        unit: "ms",
    });
    eprintln!(
        "[perf_gate] serve cluster: {:.0} req/s (1 shard) -> {:.0} req/s (4 shards, R=2) \
         ({scaling:.2}x)",
        one.report.throughput_rps, four.report.throughput_rps,
    );
    scaling
}

/// Hot-key split gate: one pathological story receives the entire burst,
/// so without the splitter a K=4/R=4 fleet serves it on a single shard
/// while three sit idle. Arming the membership hot-key detector fans the
/// story's traffic across its full replica chain; the gate floors the
/// completed simulated-time throughput recovery at >= 1.3x and asserts
/// the split never changes an answer or drops a request.
fn membership_gate(rows: &mut Vec<Row>) -> f64 {
    eprintln!("[perf_gate] training hot-key workload ...");
    let suite = &TaskSuite::build(&SuiteConfig {
        tasks: vec![TaskId::SingleSupportingFact],
        train_samples: 40,
        test_samples: 64,
        seed: 11,
        ..SuiteConfig::quick()
    });
    let burst = ArrivalTrace::generate(
        &TraceConfig {
            requests: 256,
            seed: 47,
            mean_interarrival_s: 1e-9,
            story_pool: 1,
        },
        suite,
    );
    let base = ServeConfig {
        instances: 2,
        queue_capacity: 512,
        inflight_limit: 4,
        story_cache: 16,
        policy: SchedulePolicy::StoryAffinity,
        pcie: PcieLink {
            bandwidth_bytes_per_s: 1.5e9,
            latency_per_transfer_s: 1e-6,
        },
        ..ServeConfig::default()
    };
    let fleet = |plan: MembershipPlan| {
        Cluster::new(
            suite,
            ClusterConfig {
                shards: 4,
                replication: 4,
                membership: plan,
                base: base.clone(),
                ..ClusterConfig::default()
            },
        )
        .serve(&burst)
    };
    let pinned = fleet(MembershipPlan::none());
    let split = fleet(MembershipPlan::parse_spec("hot-key=8").expect("valid hot-key spec"));
    assert_eq!(
        pinned.report.completed,
        burst.len(),
        "pinned fleet dropped requests — widen the queue"
    );
    assert_eq!(
        split.report.completed,
        burst.len(),
        "split fleet dropped requests"
    );
    assert_eq!(
        pinned.report.answers_digest, split.report.answers_digest,
        "splitting the hot key changed an answer"
    );
    assert!(
        split.report.membership.split_requests > 0,
        "the splitter never engaged — lower the threshold"
    );
    let recovery = split.report.throughput_rps / pinned.report.throughput_rps;
    rows.push(Row {
        metric: "serve_hot_key_pinned_rps",
        value: pinned.report.throughput_rps,
        unit: "req/s",
    });
    rows.push(Row {
        metric: "serve_hot_key_split_rps",
        value: split.report.throughput_rps,
        unit: "req/s",
    });
    rows.push(Row {
        metric: "serve_hot_key_split_recovery",
        value: recovery,
        unit: "x",
    });
    rows.push(Row {
        metric: "serve_hot_key_split_requests",
        value: split.report.membership.split_requests as f64,
        unit: "req",
    });
    eprintln!(
        "[perf_gate] hot-key split: {:.0} req/s (pinned) -> {:.0} req/s (split across R=4) \
         ({recovery:.2}x)",
        pinned.report.throughput_rps, split.report.throughput_rps,
    );
    recovery
}

/// Sub-linear addressing gate: exact-scan vs IVF-indexed addressing at a
/// 2000-sentence memory point (task 1 honors the story-length knob
/// exactly), measured in *simulated* addressing cycles — the figure the
/// paper's Eq 1 datapath spends per hop. Floors: >= 2x addressing
/// throughput, >= 99% answer agreement against the exact oracle, and a
/// demonstrably engaged fallback path (a wide-band run must rescan and
/// reproduce the oracle bit for bit). The small-story crossover point is
/// reported (not gated): at bAbI-default story lengths the probe overhead
/// eats the savings, which is why the index is off by default.
fn indexed_gate(small_suite: &TaskSuite, rows: &mut Vec<Row>) -> (f64, f64, u64) {
    eprintln!("[perf_gate] training indexed-addressing workload (2000-sentence stories) ...");
    let quick = SuiteConfig::quick();
    let suite = TaskSuite::build(&SuiteConfig {
        tasks: vec![TaskId::SingleSupportingFact],
        train_samples: 64,
        test_samples: 24,
        seed: 11,
        story_sentences: 2000,
        train: memn2n::TrainConfig {
            epochs: 18,
            ..quick.train
        },
        ..quick
    });
    let task = &suite.tasks[0];
    let accel_with = |mem_index: MemIndexConfig| {
        Accelerator::new(
            task.model.clone(),
            AccelConfig {
                mem_index,
                ..AccelConfig::default()
            },
        )
    };
    let exact = accel_with(MemIndexConfig::default());
    // Tuned operating point: a 0.4 confidence band trips the rescan on
    // roughly 1-in-5 hops — enough to recover every oracle answer the
    // probe alone would miss while keeping >2x addressing throughput.
    let indexed = accel_with(MemIndexConfig::with_params(64, 16, 0.4));
    let exact_runs: Vec<_> = task.test_set.iter().map(|s| exact.run(s)).collect();

    let (mut exact_addr, mut idx_addr) = (0u64, 0u64);
    let (mut agree, mut scanned, mut skipped, mut saved) = (0usize, 0u64, 0u64, 0u64);
    for (s, e) in task.test_set.iter().zip(&exact_runs) {
        let i = indexed.run(s);
        exact_addr += e.phases.addressing.get();
        idx_addr += i.phases.addressing.get();
        agree += usize::from(i.answer == e.answer);
        scanned += i.index.scanned_slots;
        skipped += i.index.skipped_slots;
        saved += i.index.cycles_saved;
    }
    let speedup = exact_addr as f64 / idx_addr as f64;
    let agreement = agree as f64 / task.test_set.len() as f64;

    // Fallback accounting: a wide band trips the ExitGuard-style margin
    // check on every hop, so the rescan path is exercised and counted —
    // and a fallback hop must reproduce the exact oracle bit for bit.
    let guarded = accel_with(MemIndexConfig::with_params(64, 16, 1e9));
    let mut fallbacks = 0u64;
    for (s, e) in task.test_set.iter().zip(&exact_runs) {
        let g = guarded.run(s);
        fallbacks += g.index.fallbacks;
        assert_eq!(
            g.answer, e.answer,
            "full-fallback indexed run diverged from the exact oracle"
        );
        assert_eq!(g.comparisons, e.comparisons, "fallback changed a score");
    }

    // Crossover: the same index config at bAbI-default story lengths,
    // where k clamps to the (tiny) story and the probe is pure overhead.
    let small_task = &small_suite.tasks[0];
    let small_exact = Accelerator::new(small_task.model.clone(), AccelConfig::default());
    let small_indexed = Accelerator::new(
        small_task.model.clone(),
        AccelConfig {
            mem_index: MemIndexConfig::with_params(64, 16, 0.4),
            ..AccelConfig::default()
        },
    );
    let (mut small_e, mut small_i) = (0u64, 0u64);
    for s in &small_task.test_set {
        small_e += small_exact.run(s).phases.addressing.get();
        small_i += small_indexed.run(s).phases.addressing.get();
    }
    let small_speedup = small_e as f64 / small_i as f64;

    rows.push(Row {
        metric: "indexed_addressing_exact_cycles",
        value: exact_addr as f64,
        unit: "cycles",
    });
    rows.push(Row {
        metric: "indexed_addressing_indexed_cycles",
        value: idx_addr as f64,
        unit: "cycles",
    });
    rows.push(Row {
        metric: "indexed_addressing_speedup",
        value: speedup,
        unit: "x",
    });
    rows.push(Row {
        metric: "indexed_argmax_agreement",
        value: agreement,
        unit: "frac",
    });
    rows.push(Row {
        metric: "indexed_slots_scanned",
        value: scanned as f64,
        unit: "slots",
    });
    rows.push(Row {
        metric: "indexed_slots_skipped",
        value: skipped as f64,
        unit: "slots",
    });
    rows.push(Row {
        metric: "indexed_cycles_saved",
        value: saved as f64,
        unit: "cycles",
    });
    rows.push(Row {
        metric: "indexed_wide_band_fallbacks",
        value: fallbacks as f64,
        unit: "hops",
    });
    rows.push(Row {
        metric: "indexed_small_story_speedup",
        value: small_speedup,
        unit: "x",
    });
    eprintln!(
        "[perf_gate] indexed addressing: {exact_addr} -> {idx_addr} cycles ({speedup:.2}x), \
         agreement {:.1}%, {fallbacks} wide-band fallbacks, small-story crossover {small_speedup:.2}x",
        agreement * 100.0,
    );
    (speedup, agreement, fallbacks)
}
