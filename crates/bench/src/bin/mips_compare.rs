//! Compares all maximum inner-product search strategies on trained models:
//! exhaustive, inference thresholding (± ordering), asymmetric LSH, and
//! clustering — quantifying the related-work claim (§VI-B) that hashing and
//! clustering approaches cost more per query than the paper's data-based
//! thresholding in this regime.
//!
//! ```sh
//! cargo run -p mann-bench --release --bin mips_compare -- --tasks 3 --train 400 --test 50
//! ```

use mann_babi::TaskId;
use mann_bench::HarnessArgs;
use mann_core::report::{fnum, percent, TextTable};
use mann_core::TaskSuite;
use mann_ith::baselines::{AlshConfig, AlshMips, ClusterConfig, ClusterMips};
use mann_ith::search::{ExhaustiveMips, MipsStrategy, ThresholdedMips};
use memn2n::forward::forward_until_output;

struct Row {
    name: String,
    accuracy: f64,
    agreement: f64,
    comparisons_norm: f64,
    extra_probes: f64,
}

fn main() {
    let mut args = HarnessArgs::parse(std::env::args().skip(1));
    if args.tasks == HarnessArgs::default().tasks {
        args.tasks = 3;
        args.train = 400;
        args.test = 50;
    }
    let mut cfg = args.suite_config();
    cfg.tasks = vec![
        TaskId::SingleSupportingFact,
        TaskId::YesNoQuestions,
        TaskId::AgentMotivations,
    ]
    .into_iter()
    .take(args.tasks)
    .collect();
    eprintln!("[mips] training {} tasks ...", cfg.tasks.len());
    let suite = TaskSuite::build(&cfg);

    let mut rows: Vec<Row> = Vec::new();
    let strategies: Vec<&str> = vec!["exhaustive", "ith", "ith-unordered", "alsh", "cluster"];
    for name in strategies {
        let mut correct = 0usize;
        let mut agree = 0usize;
        let mut total = 0usize;
        let mut cmp_frac = 0.0f64;
        let mut probes = 0.0f64;
        for task in &suite.tasks {
            let params = &task.model.params;
            let v = params.vocab_size as f64;
            let alsh = AlshMips::build(params, AlshConfig::default(), 42);
            let cluster = ClusterMips::build(
                params,
                ClusterConfig {
                    clusters: params.vocab_size.min(8),
                    ..ClusterConfig::default()
                },
                42,
            );
            let strategy: Box<dyn MipsStrategy + '_> = match name {
                "exhaustive" => Box::new(ExhaustiveMips),
                "ith" => Box::new(ThresholdedMips::new(&task.ith)),
                "ith-unordered" => Box::new(ThresholdedMips::without_ordering(&task.ith)),
                "alsh" => Box::new(alsh.clone()),
                "cluster" => Box::new(cluster.clone()),
                _ => unreachable!(),
            };
            let per_query_probes = match name {
                // Hash probes are dot products in augmented space.
                "alsh" => alsh.hash_probes() as f64,
                _ => 0.0,
            };
            for s in &task.test_set {
                let h = forward_until_output(params, s);
                let exact = ExhaustiveMips.search(params, &h);
                let r = strategy.search(params, &h);
                if r.label == s.answer {
                    correct += 1;
                }
                if r.label == exact.label {
                    agree += 1;
                }
                cmp_frac += r.comparisons as f64 / v;
                probes += per_query_probes / v;
                total += 1;
            }
        }
        rows.push(Row {
            name: name.to_owned(),
            accuracy: correct as f64 / total as f64,
            agreement: agree as f64 / total as f64,
            comparisons_norm: cmp_frac / total as f64,
            extra_probes: probes / total as f64,
        });
    }

    let mut t = TextTable::new(vec![
        "strategy".into(),
        "accuracy".into(),
        "argmax recall".into(),
        "dot products (norm)".into(),
        "extra probes (norm)".into(),
    ]);
    for r in &rows {
        t.row(vec![
            r.name.clone(),
            percent(r.accuracy),
            percent(r.agreement),
            percent(r.comparisons_norm),
            fnum(r.extra_probes, 2),
        ]);
    }
    println!(
        "MIPS strategy comparison — {} tasks, {} test questions each\n",
        suite.tasks.len(),
        args.test
    );
    println!("{}", t.render());
    println!(
        "reading: 'dot products' counts exact output-row evaluations per\n\
         query normalized to |I|; ALSH additionally pays 'extra probes'\n\
         (hash-plane dot products in augmented space) per query, and\n\
         clustering's count includes its centroid scoring — the overheads\n\
         the paper argues against for resource-limited output layers."
    );
}
