//! Regenerates Fig 3: normalized accuracy and number of MIPS comparisons
//! against the thresholding constant ρ, with and without index ordering.
//!
//! ```sh
//! cargo run -p mann-bench --release --bin fig3
//! cargo run -p mann-bench --release --bin fig3 -- --tasks 5 --train 300 --test 40
//! ```

use mann_bench::HarnessArgs;
use mann_core::experiments::fig3;

fn main() {
    let args = HarnessArgs::parse(std::env::args().skip(1));
    eprintln!(
        "[fig3] training {} tasks ({} train / {} test, seed {}) ...",
        args.tasks, args.train, args.test, args.seed
    );
    let suite = args.build_suite();
    eprintln!(
        "[fig3] mean test accuracy {:.1}%",
        suite.mean_accuracy() * 100.0
    );

    let fig = fig3::run(&suite, &fig3::Fig3Config::default());
    println!(
        "Fig 3 — accuracy and comparisons vs rho, {} tasks",
        suite.tasks.len()
    );
    println!("{}", fig.render());
    println!(
        "\nPaper shape: accuracy declines as rho falls (≈100% at 1.0 to ≈89%\n\
         at 0.9 normalized); comparisons fall from ≈95% to ≈62%; ordering\n\
         improves both accuracy and comparisons at every rho."
    );
    if let Ok(json) = serde_json::to_string_pretty(&fig) {
        let _ = std::fs::create_dir_all("target/experiments");
        let path = "target/experiments/fig3.json";
        if std::fs::write(path, json).is_ok() {
            eprintln!("[fig3] results written to {path}");
        }
    }
}
