//! Trains one task's memory network, calibrates inference thresholding, and
//! saves the deployable model bundle (weights + vocabulary + thresholds) —
//! the "pre-trained model" artifact the accelerator consumes.
//!
//! ```sh
//! cargo run -p mann-bench --release --bin train -- --task 1 --train 1000 --test 100 --out model.json
//! ```

use mann_babi::TaskId;
use mann_bench::HarnessArgs;
use mann_core::{ModelBundle, SuiteConfig, TaskSuite};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = HarnessArgs::parse(raw.clone());
    let mut task_no = 1usize;
    let mut out = "model.json".to_owned();
    let mut it = raw.iter();
    while let Some(k) = it.next() {
        match k.as_str() {
            "--task" => {
                task_no = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--task <1-20>")
            }
            "--out" => out = it.next().expect("--out <path>").clone(),
            _ => {}
        }
    }
    let task = TaskId::from_number(task_no).expect("task number in 1..=20");
    let cfg = SuiteConfig {
        tasks: vec![task],
        ..args.suite_config()
    };
    eprintln!(
        "[train] {task}: {} train / {} test samples ...",
        cfg.train_samples, cfg.test_samples
    );
    let suite = TaskSuite::build(&cfg);
    let trained = &suite.tasks[0];
    eprintln!(
        "[train] test accuracy {:.1}%, {} of {} classes thresholdable",
        trained.test_accuracy * 100.0,
        trained.ith.active_classes(),
        trained.ith.classes()
    );
    let bundle = ModelBundle::from_trained_task(trained);
    bundle.save(&out).expect("write bundle");
    println!("model bundle written to {out}");
}
