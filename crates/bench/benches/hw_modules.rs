//! Criterion benches of the cycle-level hardware modules: the host stream
//! protocol, the MEM module's softmax datapath, the OUTPUT search with and
//! without thresholding, and a whole-accelerator inference.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mann_babi::EncodedSample;
use mann_hw::modules::{decode_stream, encode_sample_stream, MemModule, OutputModule};
use mann_hw::{AccelConfig, Accelerator, DatapathConfig};
use mann_ith::threshold::ClassThreshold;
use mann_ith::{Kernel, ThresholdingModel};
use mann_linalg::Matrix;
use memn2n::{ModelConfig, Params, TrainedModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample(l: usize) -> EncodedSample {
    EncodedSample {
        sentences: (0..l)
            .map(|i| vec![i % 14, (i + 3) % 14, (i + 7) % 14])
            .collect(),
        question: vec![1, 2],
        answer: 0,
    }
}

fn bench_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("host_stream");
    let s = sample(12);
    group.bench_function("encode", |b| b.iter(|| black_box(encode_sample_stream(&s))));
    let words = encode_sample_stream(&s);
    group.bench_function("decode", |b| {
        b.iter(|| black_box(decode_stream(&words).unwrap()))
    });
    group.finish();
}

fn bench_mem_module(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem_module");
    let mut rng = StdRng::seed_from_u64(5);
    for &l in &[8usize, 32] {
        let mut mem = MemModule::new(32, &DatapathConfig::default());
        for _ in 0..l {
            let row: Vec<f32> = (0..32).map(|_| rng.gen_range(-1.0..1.0)).collect();
            mem.write(row.clone(), row);
        }
        let key: Vec<f32> = (0..32).map(|_| rng.gen_range(-1.0..1.0)).collect();
        group.bench_with_input(BenchmarkId::new("address", l), &l, |b, _| {
            b.iter(|| black_box(mem.address(&key)))
        });
        let (attention, _) = mem.address(&key);
        group.bench_with_input(BenchmarkId::new("read", l), &l, |b, _| {
            b.iter(|| black_box(mem.read(&attention)))
        });
    }
    group.finish();
}

fn bench_output_module(c: &mut Criterion) {
    let mut group = c.benchmark_group("output_module");
    let mut rng = StdRng::seed_from_u64(6);
    let v = 256usize;
    let mut w_o = Matrix::zeros(v, 32);
    for x in w_o.as_mut_slice() {
        *x = rng.gen_range(-1.0..1.0);
    }
    let h: Vec<f32> = (0..32).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let exhaustive = OutputModule::new(w_o.clone(), &DatapathConfig::default());
    group.bench_function("exhaustive", |b| {
        b.iter(|| black_box(exhaustive.search(&h)))
    });

    // Threshold that fires after ~10% of rows.
    let ith = ThresholdingModel {
        thresholds: (0..v)
            .map(|i| ClassThreshold {
                theta: if i < v / 10 { Some(-1e9) } else { None },
            })
            .collect(),
        order: (0..v).rev().collect(),
        silhouettes: vec![0.0; v],
        rho: 1.0,
        kernel: Kernel::Epanechnikov,
    };
    let thresholded =
        OutputModule::new(w_o, &DatapathConfig::default()).with_thresholding(&ith, true);
    group.bench_function("thresholded", |b| {
        b.iter(|| black_box(thresholded.search(&h)))
    });
    group.finish();
}

fn bench_accelerator(c: &mut Criterion) {
    let mut group = c.benchmark_group("accelerator");
    group.sample_size(20);
    let params = Params::init(
        ModelConfig {
            embed_dim: 32,
            hops: 3,
            tie_embeddings: false,
            ..ModelConfig::default()
        },
        128,
        &mut StdRng::seed_from_u64(7),
    );
    let model = TrainedModel {
        task: mann_babi::TaskId::SingleSupportingFact,
        params,
        encoder: mann_babi::Encoder::with_time_tokens(mann_babi::Vocab::new(), 0),
    };
    let accel = Accelerator::new(model, AccelConfig::default());
    let s = sample(10);
    group.bench_function("inference", |b| b.iter(|| black_box(accel.run(&s))));
    group.finish();
}

fn bench_write_path(c: &mut Criterion) {
    use mann_hw::write_path::WritePathSim;
    use mann_hw::{ClockDomain, PcieLink};
    let mut group = c.benchmark_group("write_path_sim");
    let sim = WritePathSim::new(512, PcieLink::default(), ClockDomain::mhz(25.0));
    let s = sample(12);
    group.bench_function("token_level", |b| b.iter(|| black_box(sim.run(&s))));
    group.finish();
}

fn bench_gru_controller(c: &mut Criterion) {
    use memn2n::ControllerKind;
    let mut group = c.benchmark_group("controller");
    group.sample_size(30);
    let s = sample(8);
    for kind in [ControllerKind::Linear, ControllerKind::Gru] {
        let params = Params::init(
            ModelConfig {
                embed_dim: 24,
                hops: 2,
                tie_embeddings: false,
                controller: kind,
            },
            64,
            &mut StdRng::seed_from_u64(21),
        );
        let model = TrainedModel {
            task: mann_babi::TaskId::SingleSupportingFact,
            params,
            encoder: mann_babi::Encoder::with_time_tokens(mann_babi::Vocab::new(), 0),
        };
        let accel = Accelerator::new(model, AccelConfig::default());
        group.bench_function(format!("{kind:?}"), |b| b.iter(|| black_box(accel.run(&s))));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_stream,
    bench_mem_module,
    bench_output_module,
    bench_accelerator,
    bench_write_path,
    bench_gru_controller
);
criterion_main!(benches);
