//! Criterion benches of the ablation axes: datapath fractional width,
//! KDE kernel choice, and accelerator tree width — timing the components
//! whose design points the `ablation` binary evaluates for quality.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mann_babi::EncodedSample;
use mann_hw::{quantize_params, AccelConfig, Accelerator, DatapathConfig};
use mann_ith::{Kde, Kernel};
use memn2n::{ModelConfig, Params, TrainedModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn model() -> TrainedModel {
    let params = Params::init(
        ModelConfig {
            embed_dim: 32,
            hops: 2,
            tie_embeddings: false,
            ..ModelConfig::default()
        },
        96,
        &mut StdRng::seed_from_u64(11),
    );
    TrainedModel {
        task: mann_babi::TaskId::SingleSupportingFact,
        params,
        encoder: mann_babi::Encoder::with_time_tokens(mann_babi::Vocab::new(), 0),
    }
}

fn bench_quantization(c: &mut Criterion) {
    let m = model();
    let mut group = c.benchmark_group("quantize_params");
    for &bits in &[4u32, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter(|| black_box(quantize_params(&m.params, bits)))
        });
    }
    group.finish();
}

fn bench_kde_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(12);
    let samples: Vec<f32> = (0..500).map(|_| rng.gen_range(-5.0..5.0)).collect();
    let mut group = c.benchmark_group("kde_density");
    for kernel in [Kernel::Epanechnikov, Kernel::Gaussian] {
        let kde = Kde::fit(&samples, kernel);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kernel:?}")),
            &kde,
            |b, kde| b.iter(|| black_box(kde.density(black_box(1.234)))),
        );
    }
    group.finish();
}

fn bench_tree_width(c: &mut Criterion) {
    let m = model();
    let sample = EncodedSample {
        sentences: (0..8).map(|i| vec![i, i + 1, i + 2]).collect(),
        question: vec![1, 2],
        answer: 0,
    };
    let mut group = c.benchmark_group("accel_tree_width");
    group.sample_size(20);
    for &w in &[2usize, 8, 16] {
        let accel = Accelerator::new(
            m.clone(),
            AccelConfig {
                datapath: DatapathConfig {
                    tree_width: w,
                    ..DatapathConfig::default()
                },
                ..AccelConfig::default()
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, _| {
            b.iter(|| black_box(accel.run(&sample)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_quantization,
    bench_kde_kernels,
    bench_tree_width
);
criterion_main!(benches);
