//! Criterion bench of the Fig 3 sweep (ρ × ordering) on a reduced suite,
//! plus the underlying MIPS strategies in isolation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mann_babi::TaskId;
use mann_core::experiments::fig3;
use mann_core::{SuiteConfig, TaskSuite};
use mann_ith::search::{ExhaustiveMips, MipsStrategy, ThresholdedMips};
use mann_ith::ThresholdingCalibrator;
use memn2n::forward::forward_until_output;

fn bench_fig3(c: &mut Criterion) {
    let cfg = SuiteConfig {
        tasks: vec![TaskId::SingleSupportingFact],
        train_samples: 200,
        test_samples: 25,
        ..SuiteConfig::quick()
    };
    let suite = TaskSuite::build(&cfg);

    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("sweep_runner", |b| {
        b.iter(|| black_box(fig3::run(&suite, &fig3::Fig3Config::default())))
    });
    group.finish();

    // The per-inference search strategies.
    let task = &suite.tasks[0];
    let ith = ThresholdingCalibrator::new()
        .rho(1.0)
        .calibrate(&task.model, &task.train_set);
    let h = forward_until_output(&task.model.params, &task.test_set[0]);
    let mut group = c.benchmark_group("mips");
    group.bench_function("exhaustive", |b| {
        b.iter(|| black_box(ExhaustiveMips.search(&task.model.params, &h)))
    });
    let strategy = ThresholdedMips::new(&ith);
    group.bench_function("thresholded", |b| {
        b.iter(|| black_box(strategy.search(&task.model.params, &h)))
    });
    group.finish();

    println!(
        "\n{}",
        fig3::run(&suite, &fig3::Fig3Config::default()).render()
    );
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
