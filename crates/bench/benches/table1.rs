//! Criterion bench of the Table I experiment runner on a reduced suite —
//! regenerates the table's measurement pipeline under timing. The printed
//! table itself comes from `cargo run -p mann-bench --bin table1`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mann_babi::TaskId;
use mann_core::experiments::table1;
use mann_core::{SuiteConfig, TaskSuite};

fn bench_table1(c: &mut Criterion) {
    let cfg = SuiteConfig {
        tasks: vec![TaskId::SingleSupportingFact, TaskId::AgentMotivations],
        train_samples: 120,
        test_samples: 15,
        ..SuiteConfig::quick()
    };
    let suite = TaskSuite::build(&cfg);

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("full_runner", |b| {
        b.iter(|| black_box(table1::run(&suite, &table1::Table1Config::default())))
    });
    group.bench_function("single_frequency", |b| {
        b.iter(|| {
            black_box(table1::run(
                &suite,
                &table1::Table1Config {
                    repetitions: 100,
                    frequencies_mhz: vec![25.0],
                },
            ))
        })
    });
    group.finish();

    // Print the reduced-scale table once so `cargo bench` output includes
    // the reproduced rows.
    let t = table1::run(&suite, &table1::Table1Config::default());
    println!("\n{}", t.render());
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
