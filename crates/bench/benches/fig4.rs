//! Criterion bench of the Fig 4 per-task efficiency runner on a reduced
//! suite.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mann_babi::TaskId;
use mann_core::experiments::fig4;
use mann_core::{SuiteConfig, TaskSuite};

fn bench_fig4(c: &mut Criterion) {
    let cfg = SuiteConfig {
        tasks: vec![TaskId::SingleSupportingFact, TaskId::Conjunction],
        train_samples: 120,
        test_samples: 12,
        ..SuiteConfig::quick()
    };
    let suite = TaskSuite::build(&cfg);

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("per_task_runner", |b| {
        b.iter(|| black_box(fig4::run(&suite)))
    });
    group.finish();

    println!("\n{}", fig4::run(&suite).render());
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
