//! Criterion bench of the Fig 2(b) runner: logit-statistics collection and
//! the distribution binning behind the figure.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mann_babi::TaskId;
use mann_core::experiments::fig2b;
use mann_core::{SuiteConfig, TaskSuite};
use mann_ith::LogitStats;

fn bench_fig2b(c: &mut Criterion) {
    let cfg = SuiteConfig {
        tasks: vec![TaskId::SingleSupportingFact],
        train_samples: 150,
        test_samples: 10,
        ..SuiteConfig::quick()
    };
    let suite = TaskSuite::build(&cfg);
    let task = &suite.tasks[0];

    let mut group = c.benchmark_group("fig2b");
    group.sample_size(10);
    group.bench_function("runner", |b| b.iter(|| black_box(fig2b::run(task, 6, 48))));
    group.bench_function("logit_stats_collect", |b| {
        b.iter(|| black_box(LogitStats::collect(&task.model, &task.train_set)))
    });
    group.finish();

    println!("\n{}", fig2b::run(task, 4, 32).render());
}

criterion_group!(benches, bench_fig2b);
criterion_main!(benches);
