//! Criterion micro-benchmarks of the numeric kernels on the critical path:
//! softmax (exact and LUT), dot products (f32 and fixed-point), the KDE,
//! and the forward pass.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mann_babi::EncodedSample;
use mann_linalg::activation::{softmax_lut, ExpLut};
use mann_linalg::fixed::fixed_dot;
use mann_linalg::{Matrix, Vector};
use memn2n::{forward, ModelConfig, Params};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("softmax");
    for &n in &[16usize, 64, 256] {
        let v: Vector = (0..n).map(|i| (i as f32 * 0.37).sin() * 4.0).collect();
        group.bench_with_input(BenchmarkId::new("exact", n), &v, |b, v| {
            b.iter(|| black_box(v.softmax()))
        });
        let lut = ExpLut::default();
        let xs: Vec<f32> = v.as_slice().to_vec();
        group.bench_with_input(BenchmarkId::new("lut", n), &xs, |b, xs| {
            b.iter(|| black_box(softmax_lut(xs, &lut)))
        });
    }
    group.finish();
}

fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot");
    for &n in &[32usize, 128, 512] {
        let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos()).collect();
        let bvec: Vec<f32> = (0..n).map(|i| (i as f32 * 0.07).sin()).collect();
        let va = Vector::from(a.clone());
        let vb = Vector::from(bvec.clone());
        group.bench_with_input(BenchmarkId::new("f32", n), &n, |bch, _| {
            bch.iter(|| black_box(va.dot(&vb).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("fixed", n), &n, |bch, _| {
            bch.iter(|| black_box(fixed_dot(&a, &bvec)))
        });
    }
    group.finish();
}

fn bench_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("matvec");
    for &(r, cl) in &[(64usize, 32usize), (256, 32), (1024, 32)] {
        let mut m = Matrix::zeros(r, cl);
        let mut rng = StdRng::seed_from_u64(1);
        for x in m.as_mut_slice() {
            *x = rng.gen_range(-1.0..1.0);
        }
        let v: Vector = (0..cl).map(|i| (i as f32 * 0.3).sin()).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{r}x{cl}")),
            &m,
            |b, m| b.iter(|| black_box(m.matvec(&v).unwrap())),
        );
    }
    group.finish();
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_forward");
    for &hops in &[1usize, 3] {
        let params = Params::init(
            ModelConfig {
                embed_dim: 32,
                hops,
                tie_embeddings: false,
                ..ModelConfig::default()
            },
            180,
            &mut StdRng::seed_from_u64(2),
        );
        let sample = EncodedSample {
            sentences: (0..10).map(|i| vec![i, i + 1, i + 2, i + 3]).collect(),
            question: vec![20, 21, 22],
            answer: 5,
        };
        group.bench_with_input(BenchmarkId::from_parameter(hops), &hops, |b, _| {
            b.iter(|| black_box(forward(&params, &sample)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_softmax,
    bench_dot,
    bench_matvec,
    bench_forward
);
criterion_main!(benches);
