//! Seeded arrival traces: the deterministic "traffic" the server replays.
//!
//! Arrivals follow a Poisson process (exponential inter-arrival times drawn
//! by inverse CDF from the vendored deterministic `StdRng`), and each
//! request picks a uniformly random `(task, sample)` pair from the trained
//! suite — a multi-tenant mix. The same `(config, suite shape)` always
//! yields the same trace, byte for byte, which is what lets serving results
//! be compared across scheduler policies and instance counts.

use mann_core::TaskSuite;
use mann_hw::SimTime;
use rand::{Rng, SeedableRng, StdRng};
use serde::{Deserialize, Serialize};

use crate::Request;

/// Arrival-trace generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of requests.
    pub requests: usize,
    /// RNG seed (drives both arrival times and sample choices).
    pub seed: u64,
    /// Mean inter-arrival time, seconds. The default (200 µs) loads a
    /// 100 MHz instance to roughly its single-stream service rate, so a
    /// few instances sharing one link show real queueing.
    pub mean_interarrival_s: f64,
    /// Restrict each task's sample draws to its first `story_pool` test
    /// samples (0 = the whole test set, the historical behavior). Small
    /// pools model many questions over few stories — the bAbI access
    /// pattern the story cache exploits.
    pub story_pool: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            requests: 256,
            seed: 0,
            mean_interarrival_s: 200e-6,
            story_pool: 0,
        }
    }
}

/// A fully materialized arrival trace, sorted by arrival time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalTrace {
    /// Requests in arrival order; ids are the positions in this order.
    pub requests: Vec<Request>,
    /// The generating configuration.
    pub config: TraceConfig,
}

impl ArrivalTrace {
    /// Generates the trace for `suite`'s test sets.
    ///
    /// # Panics
    ///
    /// Panics if the suite has no tasks, any task has an empty test set, or
    /// the mean inter-arrival time is not positive and finite.
    pub fn generate(config: &TraceConfig, suite: &TaskSuite) -> Self {
        assert!(!suite.tasks.is_empty(), "trace needs at least one task");
        assert!(
            suite.tasks.iter().all(|t| !t.test_set.is_empty()),
            "every task needs test samples to draw requests from"
        );
        assert!(
            config.mean_interarrival_s > 0.0 && config.mean_interarrival_s.is_finite(),
            "mean inter-arrival must be positive and finite"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut now_s = 0.0f64;
        let requests = (0..config.requests)
            .map(|id| {
                // Inverse-CDF exponential sample; 1-u keeps ln's argument
                // in (0, 1].
                let u: f64 = rng.gen_range(0.0f64..1.0);
                now_s += -config.mean_interarrival_s * (1.0 - u).ln();
                let task_idx = rng.gen_range(0..suite.tasks.len());
                let len = suite.tasks[task_idx].test_set.len();
                let limit = if config.story_pool == 0 {
                    len
                } else {
                    config.story_pool.min(len)
                };
                let sample_idx = rng.gen_range(0..limit);
                Request {
                    id: id as u64,
                    task_idx,
                    sample_idx,
                    arrival: SimTime::from_s(now_s),
                }
            })
            .collect();
        Self {
            requests,
            config: config.clone(),
        }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Arrival time of the last request (zero for an empty trace).
    pub fn span(&self) -> SimTime {
        self.requests
            .last()
            .map(|r| r.arrival)
            .unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mann_babi::TaskId;
    use mann_core::SuiteConfig;

    fn suite() -> TaskSuite {
        let cfg = SuiteConfig {
            tasks: vec![TaskId::SingleSupportingFact, TaskId::AgentMotivations],
            train_samples: 40,
            test_samples: 8,
            ..SuiteConfig::quick()
        };
        TaskSuite::build(&cfg)
    }

    #[test]
    fn trace_is_deterministic_and_sorted() {
        let s = suite();
        let cfg = TraceConfig {
            requests: 100,
            seed: 42,
            ..TraceConfig::default()
        };
        let a = ArrivalTrace::generate(&cfg, &s);
        let b = ArrivalTrace::generate(&cfg, &s);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.requests.iter().enumerate().all(|(i, r)| r.id == i as u64));
    }

    #[test]
    fn different_seeds_differ_and_indices_are_in_range() {
        let s = suite();
        let a = ArrivalTrace::generate(
            &TraceConfig {
                requests: 64,
                seed: 1,
                ..TraceConfig::default()
            },
            &s,
        );
        let b = ArrivalTrace::generate(
            &TraceConfig {
                requests: 64,
                seed: 2,
                ..TraceConfig::default()
            },
            &s,
        );
        assert_ne!(a.requests, b.requests);
        for r in a.requests.iter().chain(&b.requests) {
            assert!(r.task_idx < s.tasks.len());
            assert!(r.sample_idx < s.tasks[r.task_idx].test_set.len());
        }
        // Both tenants appear in a 64-request mix.
        assert!(a.requests.iter().any(|r| r.task_idx == 0));
        assert!(a.requests.iter().any(|r| r.task_idx == 1));
    }

    #[test]
    fn mean_interarrival_tracks_config() {
        let s = suite();
        let cfg = TraceConfig {
            requests: 2000,
            seed: 9,
            mean_interarrival_s: 100e-6,
            ..TraceConfig::default()
        };
        let t = ArrivalTrace::generate(&cfg, &s);
        let mean = t.span().as_s() / t.len() as f64;
        assert!(
            (mean - 100e-6).abs() < 15e-6,
            "empirical mean inter-arrival {mean}"
        );
    }

    #[test]
    fn story_pool_restricts_sample_draws_without_shifting_arrivals() {
        let s = suite();
        let base = TraceConfig {
            requests: 64,
            seed: 4,
            ..TraceConfig::default()
        };
        let full = ArrivalTrace::generate(&base, &s);
        let pooled = ArrivalTrace::generate(
            &TraceConfig {
                story_pool: 2,
                ..base.clone()
            },
            &s,
        );
        assert!(pooled.requests.iter().all(|r| r.sample_idx < 2));
        // Pool 0 and pool >= test-set size reproduce the unrestricted draw.
        let wide = ArrivalTrace::generate(
            &TraceConfig {
                story_pool: 999,
                ..base.clone()
            },
            &s,
        );
        assert_eq!(full.requests, wide.requests);
        // The RNG stream (arrivals, task picks) is shared: same schedule.
        for (a, b) in full.requests.iter().zip(&pooled.requests) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.task_idx, b.task_idx);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_rate_rejected() {
        let s = suite();
        let _ = ArrivalTrace::generate(
            &TraceConfig {
                mean_interarrival_s: 0.0,
                ..TraceConfig::default()
            },
            &s,
        );
    }
}
