//! Batched multi-accelerator serving layer.
//!
//! This crate turns the single-inference accelerator model of `mann-hw`
//! into a *served system*: a stream of QA requests arrives at a bounded
//! host queue, story uploads are batched over the one shared PCIe link,
//! and a deterministic scheduler spreads work across N replicated
//! accelerator instances. Every request carries simulated-time
//! timestamps for each lifecycle phase (enqueue → upload → compute →
//! drain), and a serve produces a [`ServeReport`] with p50/p95/p99
//! latency, per-instance occupancy, link utilization and aggregate
//! energy — exportable as JSON via `mann_core::write_json_report`.
//!
//! # Architecture
//!
//! ```text
//!   seeded ArrivalTrace        bounded host queue          N instances
//!  ┌──────────────────┐   ┌──────────────────────┐   ┌───────────────────┐
//!  │ Poisson arrivals  │──▶│ reject when full     │──▶│ Scheduler picks   │
//!  │ (task, sample)    │   │ (backpressure acct.) │   │ rr / shortest-q   │
//!  └──────────────────┘   └──────────────────────┘   └─────────┬─────────┘
//!                                                              ▼
//!                          ┌───────────────────────────────────────────┐
//!                          │ LinkArbiter: one shared PCIe link, FIFO;  │
//!                          │ uploads batched to amortize DMA latency   │
//!                          └───────────────────────────────────────────┘
//! ```
//!
//! # Scale-out
//!
//! The [`Cluster`] layer shards this single-node stack across K nodes: a
//! frontend [`ShardRouter`] consistent-hashes each request's story onto
//! its shard (weighted rendezvous hashing), every shard runs its own
//! queue, link arbiter, instance pool, story cache and fault plan, and a
//! replication factor R re-dispatches crash-stranded requests to the
//! story's replica shard at real re-upload cost. A [`ClusterReport`]
//! merges the per-shard reports (percentiles ranked over pooled samples,
//! never averaged) and is byte-identical across engines, thread counts
//! and shard-iteration order; at K=1/R=1 it reduces byte-identically to
//! the single-node [`ServeReport`]. A [`MembershipPlan`] makes the shard
//! set itself a timeline — scheduled joins, drains and fail-stops,
//! queue-pressure weight retuning and hot-key splitting — resolved
//! purely against the plan so the churned report keeps every one of
//! those byte-identity guarantees.
//!
//! # Determinism
//!
//! A serve is a pure function of `(suite, trace, config)`. The numeric
//! work is precomputed in request order on the deterministic worker pool
//! (`MANN_THREADS`-invariant), and the event loop runs on an integer
//! picosecond clock with a submission-order tie-break — so reports are
//! byte-identical run to run, and the per-request answers (pinned by
//! [`ServeReport::answers_digest`]) are invariant across instance counts
//! and scheduler policies.

mod cluster;
mod faults;
mod membership;
mod numeric;
mod report;
mod request;
mod scheduler;
mod server;
mod store;
mod trace;

pub use cluster::{
    Cluster, ClusterConfig, ClusterFailover, ClusterOutcome, ClusterReport, ShardRouter,
};
pub use faults::{FaultConfig, FaultPlan, FaultPlanError, FaultReport};
pub use mann_ith::{HopPrune, HopPruneError};
pub use membership::{
    MembershipEpoch, MembershipEvent, MembershipEventKind, MembershipPlan, MembershipPlanError,
    MembershipReport,
};
pub use numeric::{NumericHealth, NumericPolicy, NumericPolicyError};
pub use report::{
    answers_digest, BatchReport, CacheReport, HopPruneReport, InstanceReport, LatencySummary,
    LinkReport, ServeReport,
};
pub use request::{Completion, Export, Rejection, Request, RequestTimestamps};
pub use scheduler::{InstanceView, SchedulePolicy, Scheduler};
pub use server::{EngineMode, EngineModeError, ServeConfig, ServeOutcome, Server};
pub use store::{serve_cluster_durable, serve_durable, DurabilityReport, WalConfig, WalSpecError};
pub use trace::{ArrivalTrace, TraceConfig};

pub use mann_store::{StoreError, WalRecord};
