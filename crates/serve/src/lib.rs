//! Batched multi-accelerator serving layer.
//!
//! This crate turns the single-inference accelerator model of `mann-hw`
//! into a *served system*: a stream of QA requests arrives at a bounded
//! host queue, story uploads are batched over the one shared PCIe link,
//! and a deterministic scheduler spreads work across N replicated
//! accelerator instances. Every request carries simulated-time
//! timestamps for each lifecycle phase (enqueue → upload → compute →
//! drain), and a serve produces a [`ServeReport`] with p50/p95/p99
//! latency, per-instance occupancy, link utilization and aggregate
//! energy — exportable as JSON via `mann_core::write_json_report`.
//!
//! # Architecture
//!
//! ```text
//!   seeded ArrivalTrace        bounded host queue          N instances
//!  ┌──────────────────┐   ┌──────────────────────┐   ┌───────────────────┐
//!  │ Poisson arrivals  │──▶│ reject when full     │──▶│ Scheduler picks   │
//!  │ (task, sample)    │   │ (backpressure acct.) │   │ rr / shortest-q   │
//!  └──────────────────┘   └──────────────────────┘   └─────────┬─────────┘
//!                                                              ▼
//!                          ┌───────────────────────────────────────────┐
//!                          │ LinkArbiter: one shared PCIe link, FIFO;  │
//!                          │ uploads batched to amortize DMA latency   │
//!                          └───────────────────────────────────────────┘
//! ```
//!
//! # Determinism
//!
//! A serve is a pure function of `(suite, trace, config)`. The numeric
//! work is precomputed in request order on the deterministic worker pool
//! (`MANN_THREADS`-invariant), and the event loop runs on an integer
//! picosecond clock with a submission-order tie-break — so reports are
//! byte-identical run to run, and the per-request answers (pinned by
//! [`ServeReport::answers_digest`]) are invariant across instance counts
//! and scheduler policies.

mod faults;
mod numeric;
mod report;
mod request;
mod scheduler;
mod server;
mod trace;

pub use faults::{FaultConfig, FaultPlan, FaultPlanError, FaultReport};
pub use mann_ith::{HopPrune, HopPruneError};
pub use numeric::{NumericHealth, NumericPolicy, NumericPolicyError};
pub use report::{
    answers_digest, BatchReport, CacheReport, HopPruneReport, InstanceReport, LatencySummary,
    LinkReport, ServeReport,
};
pub use request::{Completion, Rejection, Request, RequestTimestamps};
pub use scheduler::{InstanceView, SchedulePolicy, Scheduler};
pub use server::{EngineMode, EngineModeError, ServeConfig, ServeOutcome, Server};
pub use trace::{ArrivalTrace, TraceConfig};
