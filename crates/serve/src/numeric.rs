//! Numeric-health policy for the serve stack.
//!
//! Every completion carries the accelerator's per-inference
//! [`mann_hw::NumericReport`] — the sticky saturation/clamp flags the
//! fixed-point datapath latched while computing it. A [`NumericPolicy`]
//! decides what the serving layer does about them:
//!
//! * [`NumericPolicy::Ignore`] — the default — does nothing; the serve
//!   path (and its report bytes) are identical to a build without the
//!   numeric layer.
//! * [`NumericPolicy::Flag`] marks stressed completions and publishes a
//!   [`NumericHealth`] section in the report.
//! * [`NumericPolicy::Failover`] additionally re-runs every stressed
//!   completion on the `f32` reference datapath ("precision failover"),
//!   replacing the fixed-point answer and paying the re-run's
//!   cycles/energy through the existing power model.
//!
//! The policy is applied per completion, after the event loop, as a pure
//! function of each completion's numeric report — so the resulting
//! [`NumericHealth`] is byte-identical across `MANN_THREADS` settings,
//! serial/parallel engines, and cache hit/miss paths.

use mann_core::report::TextTable;
use mann_linalg::NumericStatus;
use serde::{Deserialize, Serialize};

/// What the serving layer does with numeric-event flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum NumericPolicy {
    /// Drop the flags; report bytes stay identical to a build without
    /// the numeric layer.
    #[default]
    Ignore,
    /// Count and expose stressed completions, answers untouched.
    Flag,
    /// Re-run stressed completions on the `f32` reference datapath.
    Failover,
}

/// An unrecognized numeric-policy name (CLI flag or
/// `MANN_NUMERIC_POLICY`). Invalid values are rejected rather than
/// silently falling back to the default.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
#[error("invalid numeric policy {value:?}: expected one of `ignore`, `flag`, `failover`")]
pub struct NumericPolicyError {
    /// The rejected input.
    pub value: String,
}

impl NumericPolicy {
    /// Parses a CLI-style policy name.
    ///
    /// # Errors
    ///
    /// Returns [`NumericPolicyError`] for anything but
    /// `ignore`/`flag`/`failover`.
    pub fn parse(s: &str) -> Result<Self, NumericPolicyError> {
        match s {
            "ignore" => Ok(Self::Ignore),
            "flag" => Ok(Self::Flag),
            "failover" => Ok(Self::Failover),
            _ => Err(NumericPolicyError {
                value: s.to_owned(),
            }),
        }
    }

    /// Policy from the `MANN_NUMERIC_POLICY` environment variable,
    /// falling back to the default (ignore) when unset.
    ///
    /// # Errors
    ///
    /// Returns [`NumericPolicyError`] when the variable is set to an
    /// unrecognized value.
    pub fn from_env() -> Result<Self, NumericPolicyError> {
        match std::env::var("MANN_NUMERIC_POLICY") {
            Err(_) => Ok(Self::default()),
            Ok(v) => Self::parse(&v),
        }
    }
}

impl std::fmt::Display for NumericPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Ignore => write!(f, "ignore"),
            Self::Flag => write!(f, "flag"),
            Self::Failover => write!(f, "failover"),
        }
    }
}

/// Numeric-health summary of one served trace.
///
/// `enabled == false` (the [`NumericPolicy::Ignore`] default) means every
/// other field is zero and the `numeric` key is absent from the JSON
/// report — zero-stress serves stay byte-identical to reports from before
/// the numeric layer existed.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NumericHealth {
    /// Whether a non-ignore policy was active.
    pub enabled: bool,
    /// The active policy name (`flag` or `failover`).
    pub policy: String,
    /// Completions whose sticky flags were set (any saturation, clamp,
    /// or NaN-at-boundary event anywhere in the datapath).
    pub flagged: u64,
    /// ITH early exits vetoed by the saturation exit guard, summed over
    /// completions.
    pub vetoed: u64,
    /// Stressed completions re-answered on the `f32` reference datapath
    /// (failover policy only).
    pub failed_over: u64,
    /// Compute cycles the failover re-runs cost (each re-run is charged
    /// the completion's full fixed-point compute, the conservative model
    /// of an on-host reference replay).
    pub failover_cycles: u64,
    /// Activity-dependent fabric energy of the failover re-runs, joules.
    pub failover_energy_j: f64,
    /// Per-class event histogram summed over every completion's numeric
    /// report (add/sub/mul saturation, div-by-zero, quantize clamp,
    /// NaN-at-boundary).
    pub histogram: NumericStatus,
}

impl NumericHealth {
    /// Renders the numeric-health summary as a text table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["numeric metric".into(), "value".into()]);
        t.row(vec!["policy".into(), self.policy.clone()]);
        t.row(vec!["flagged completions".into(), self.flagged.to_string()]);
        t.row(vec!["exit-guard vetoes".into(), self.vetoed.to_string()]);
        t.row(vec![
            "precision failovers".into(),
            format!(
                "{} ({} cycles, {} J)",
                self.failed_over,
                self.failover_cycles,
                mann_core::report::fnum(self.failover_energy_j, 3)
            ),
        ]);
        t.row(vec![
            "saturation (add/sub/mul)".into(),
            format!(
                "{} / {} / {}",
                self.histogram.add_sat, self.histogram.sub_sat, self.histogram.mul_sat
            ),
        ]);
        t.row(vec![
            "div-zero / quant-clamp / nan".into(),
            format!(
                "{} / {} / {}",
                self.histogram.div_zero, self.histogram.quant_clamp, self.histogram.nan_boundary
            ),
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_policy() {
        for p in [
            NumericPolicy::Ignore,
            NumericPolicy::Flag,
            NumericPolicy::Failover,
        ] {
            assert_eq!(NumericPolicy::parse(&p.to_string()), Ok(p));
        }
        assert!(NumericPolicy::parse("strict").is_err());
        let err = NumericPolicy::parse("Failover").unwrap_err();
        assert!(err.to_string().contains("Failover"));
    }

    #[test]
    fn default_policy_is_ignore() {
        assert_eq!(NumericPolicy::default(), NumericPolicy::Ignore);
    }

    #[test]
    fn health_renders_every_counter() {
        let h = NumericHealth {
            enabled: true,
            policy: "failover".into(),
            flagged: 7,
            vetoed: 3,
            failed_over: 5,
            failover_cycles: 1234,
            failover_energy_j: 0.5,
            histogram: NumericStatus {
                add_sat: 11,
                sub_sat: 12,
                mul_sat: 13,
                div_zero: 14,
                quant_clamp: 15,
                nan_boundary: 16,
            },
        };
        let text = h.render();
        for needle in [
            "failover", "7", "3", "1234", "11", "12", "13", "14", "15", "16",
        ] {
            assert!(text.contains(needle), "render missing {needle}");
        }
    }

    #[test]
    fn serde_round_trip() {
        let h = NumericHealth {
            enabled: true,
            policy: "flag".into(),
            flagged: 2,
            ..NumericHealth::default()
        };
        let v = Serialize::to_value(&h);
        let back: NumericHealth = Deserialize::from_value(&v).unwrap();
        assert_eq!(h, back);
    }
}
