//! The durable story store driver: wires `mann-store`'s WAL/snapshot
//! mechanism into the serving layer.
//!
//! The event loop itself never touches the filesystem — [`crate::Server`]
//! stays a pure function of `(suite, trace, config)` and merely *collects*
//! the journal ([`crate::ServeOutcome::wal_records`]). This module is the
//! impure shell around it:
//!
//! * [`serve_durable`] / [`serve_cluster_durable`] run the pure serve,
//!   then persist its journal — appending every story admission, eviction
//!   and completion to a checksummed segmented WAL, rotating and
//!   snapshotting every [`WalConfig::snapshot_every`] records, and
//!   garbage-collecting segments a snapshot covers.
//! * With `node_kills` armed ([`crate::FaultConfig::node_kills`]), a
//!   seed-chosen victim shard is fail-stopped mid-journal: the append path
//!   is cut at a deterministic kill point and a torn half-frame is left on
//!   disk, exactly as a process death mid-`write` would. Recovery then
//!   proves the durability story end to end — the strict open must detect
//!   the tear, the lenient open truncates it, the replayed
//!   [`StoreState`] fold must equal an independent reference fold of the
//!   journal prefix, and the node re-serves its trace (purity makes the
//!   re-run byte-identical, which the driver asserts via the answers
//!   digest) before appending the remainder in a fresh segment.
//!
//! Every step is accounted in a [`DurabilityReport`]; the `durability`
//! key is omitted from JSON whenever the WAL is off, so all pre-existing
//! golden reports stay byte-identical.
//!
//! A membership-plan `fail` event ([`crate::MembershipPlan`]) composes
//! with the WAL for free: the fail-stopped shard's event loop halts at
//! the scheduled cut, so its collected journal simply *ends* there —
//! post-cut completions are never journaled, leaving a naturally
//! consistent prefix on disk with no torn frame to repair. Requests the
//! cut stranded are exported and re-dispatched by the cluster layer to a
//! live replica, whose own pass journals them; nothing is recovered by
//! replay because nothing past the cut was ever promised durable.

use std::collections::HashMap;
use std::convert::Infallible;
use std::path::{Path, PathBuf};

use mann_core::persist::PersistError;
use mann_core::report::{fnum, TextTable};
use mann_hw::fault_mix;
use mann_store::{
    gc, recover_dir, replay_dir, write_snapshot, StoreError, StoreState, WalRecord, WalStats,
    WalWriter, KIND_COMPLETION, KIND_STORY,
};
use serde::{Deserialize, Serialize};

use crate::cluster::{Cluster, ClusterOutcome};
use crate::server::{ServeOutcome, Server};
use crate::trace::ArrivalTrace;

/// Domain-separation stream for node-kill selection (ASCII "kill"):
/// victim shard and kill point share [`fault_mix`] with the fault layer
/// but never its link/crash/SEU streams.
const STREAM_KILL: u64 = 0x0000_6b69_6c6c;

/// Write-ahead-log configuration, carried inside
/// [`crate::ServeConfig::wal`]. Disabled by default; when disabled the
/// serve path is byte-identical to before the store layer existed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalConfig {
    /// Whether the journal is armed.
    pub enabled: bool,
    /// WAL directory (per shard-pass subdirectories are created under it
    /// by the cluster driver).
    pub dir: String,
    /// Rotate the segment, cut a snapshot, and GC every this many
    /// records; 0 = never snapshot (one segment, sealed at the end).
    pub snapshot_every: u64,
    /// Records per fsync on the append path (1 = sync every record).
    pub fsync_batch: usize,
    /// Host-side cost charged per fsync, microseconds (reported as
    /// [`DurabilityReport::fsync_s`]; the simulated event loop is not
    /// perturbed, preserving byte-identity of every other section).
    pub fsync_us: f64,
    /// Host-side cost charged per replayed record during crash recovery,
    /// microseconds (feeds [`DurabilityReport::recovery_mttr_s`]).
    pub replay_us: f64,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            dir: String::new(),
            snapshot_every: 0,
            fsync_batch: 8,
            fsync_us: 50.0,
            replay_us: 2.0,
        }
    }
}

/// An unparseable `MANN_WAL` value (or CLI-equivalent spec). Invalid
/// values are rejected at startup rather than silently serving without
/// durability — `MANN_WAL=/tmp/wal,snap=abc` must fail loudly, exactly
/// like `MANN_SERVE_ENGINE`/`MANN_MEM_INDEX`.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum WalSpecError {
    /// The spec does not match `<dir>[,key=value]...`.
    #[error(
        "invalid MANN_WAL spec {value:?}: expected `off` or `<dir>[,snap=N][,fsync-batch=N][,fsync-us=F][,replay-us=F]`"
    )]
    BadShape {
        /// The rejected input.
        value: String,
    },
    /// An option key that is not recognized.
    #[error(
        "unknown MANN_WAL option {option:?}: expected one of `snap`, `fsync-batch`, `fsync-us`, `replay-us`"
    )]
    UnknownOption {
        /// The rejected key.
        option: String,
    },
    /// An option value that does not parse or is out of range.
    #[error("invalid MANN_WAL value {value:?} for `{option}`: {reason}")]
    BadValue {
        /// The option the value belongs to.
        option: String,
        /// The rejected value.
        value: String,
        /// Why it was rejected.
        reason: String,
    },
}

impl WalConfig {
    /// Parses a CLI/env spec: `off` (or empty, or `0`) disables the
    /// journal; otherwise `<dir>[,snap=N][,fsync-batch=N][,fsync-us=F]
    /// [,replay-us=F]` enables it.
    ///
    /// # Errors
    ///
    /// Returns [`WalSpecError`] on malformed input — never a silent
    /// fallback.
    pub fn parse(spec: &str) -> Result<Self, WalSpecError> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "off" || spec == "0" {
            return Ok(Self::default());
        }
        let mut parts = spec.split(',');
        let dir = parts.next().expect("split yields at least one part").trim();
        if dir.is_empty() || dir == "off" || dir.contains('=') {
            return Err(WalSpecError::BadShape {
                value: spec.to_owned(),
            });
        }
        let mut cfg = Self {
            enabled: true,
            dir: dir.to_owned(),
            ..Self::default()
        };
        for part in parts {
            let part = part.trim();
            let Some((key, value)) = part.split_once('=') else {
                return Err(WalSpecError::BadShape {
                    value: spec.to_owned(),
                });
            };
            let (key, value) = (key.trim(), value.trim());
            let bad = |reason: &str| WalSpecError::BadValue {
                option: key.to_owned(),
                value: value.to_owned(),
                reason: reason.to_owned(),
            };
            match key {
                "snap" => {
                    cfg.snapshot_every = value
                        .parse()
                        .map_err(|_| bad("expected a non-negative integer"))?;
                }
                "fsync-batch" => {
                    let n: usize = value
                        .parse()
                        .map_err(|_| bad("expected a positive integer"))?;
                    if n == 0 {
                        return Err(bad("fsync batch must be at least 1"));
                    }
                    cfg.fsync_batch = n;
                }
                "fsync-us" => {
                    let f: f64 = value.parse().map_err(|_| bad("expected a number"))?;
                    if !f.is_finite() || f < 0.0 {
                        return Err(bad("expected a finite non-negative number"));
                    }
                    cfg.fsync_us = f;
                }
                "replay-us" => {
                    let f: f64 = value.parse().map_err(|_| bad("expected a number"))?;
                    if !f.is_finite() || f < 0.0 {
                        return Err(bad("expected a finite non-negative number"));
                    }
                    cfg.replay_us = f;
                }
                _ => {
                    return Err(WalSpecError::UnknownOption {
                        option: key.to_owned(),
                    })
                }
            }
        }
        Ok(cfg)
    }

    /// Configuration from the `MANN_WAL` environment variable, falling
    /// back to the default (disabled) when unset.
    ///
    /// # Errors
    ///
    /// Returns [`WalSpecError`] when the variable is set to a malformed
    /// value.
    pub fn from_env() -> Result<Self, WalSpecError> {
        match std::env::var("MANN_WAL") {
            Err(_) => Ok(Self::default()),
            Ok(v) => Self::parse(&v),
        }
    }

    /// Checks structural validity (called from
    /// [`crate::ServeConfig::validate`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled && self.dir.trim().is_empty() {
            return Err("write-ahead log enabled without a directory".into());
        }
        if !self.enabled && self.snapshot_every > 0 {
            return Err("snapshot interval set but the write-ahead log is off".into());
        }
        if self.fsync_batch == 0 {
            return Err("wal fsync batch must be at least 1".into());
        }
        if !self.fsync_us.is_finite() || self.fsync_us < 0.0 {
            return Err(format!("wal fsync cost {} us is not a cost", self.fsync_us));
        }
        if !self.replay_us.is_finite() || self.replay_us < 0.0 {
            return Err(format!(
                "wal replay cost {} us is not a cost",
                self.replay_us
            ));
        }
        Ok(())
    }
}

/// Everything the durability layer did for one serve: journal volume,
/// fsync cost, snapshot/compaction activity, and — when a node-kill
/// campaign ran — the recovery accounting. `enabled == false` (and the
/// `durability` key absent from JSON) whenever the WAL is off, keeping
/// every pre-existing golden byte-identical. Deliberately free of
/// filesystem paths so reports are byte-comparable across WAL
/// directories.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DurabilityReport {
    /// Whether the journal was armed.
    pub enabled: bool,
    /// Records appended (stories + completions + evictions).
    pub records: u64,
    /// Story-admission records journaled.
    pub story_records: u64,
    /// Completion records journaled.
    pub completion_records: u64,
    /// Eviction records journaled.
    pub evict_records: u64,
    /// Frame bytes appended to WAL segments.
    pub wal_bytes: u64,
    /// WAL segments opened.
    pub segments: u64,
    /// fsync calls issued on the append path.
    pub fsyncs: u64,
    /// Host-side fsync cost: `fsyncs × fsync_us`, seconds.
    pub fsync_s: f64,
    /// Snapshots cut.
    pub snapshots: u64,
    /// Bytes written into snapshot containers.
    pub snapshot_bytes: u64,
    /// WAL segments compaction deleted (fully covered by a snapshot).
    pub gc_segments: u64,
    /// Superseded snapshot files compaction deleted.
    pub gc_snapshots: u64,
    /// Bytes compaction reclaimed.
    pub gc_bytes: u64,
    /// Stories dropped from snapshot images after being evicted from
    /// every shard's residency.
    pub gc_stories: u64,
    /// Node kills injected (fail-stop mid-journal).
    pub node_kills: u64,
    /// Torn WAL tails the strict open detected after a kill.
    pub torn_tails: u64,
    /// Torn-tail bytes recovery truncated.
    pub dropped_bytes: u64,
    /// Records replayed (snapshot + WAL) to rebuild the store state.
    pub replayed_records: u64,
    /// Completions that were already durable at the kill point.
    pub recovered_completions: u64,
    /// In-flight completions re-dispatched after recovery (journaled but
    /// not yet durable when the node died).
    pub redispatched: u64,
    /// Mean recovery time per kill: `replayed_records × replay_us`,
    /// seconds.
    pub recovery_mttr_s: f64,
}

impl DurabilityReport {
    /// Renders the durability section as a text table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["durability metric".into(), "value".into()]);
        t.row(vec![
            "journal records (story/compl/evict)".into(),
            format!(
                "{} ({}/{}/{})",
                self.records, self.story_records, self.completion_records, self.evict_records
            ),
        ]);
        t.row(vec![
            "wal volume".into(),
            format!("{} B over {} segments", self.wal_bytes, self.segments),
        ]);
        t.row(vec![
            "fsyncs".into(),
            format!("{} ({} s)", self.fsyncs, fnum(self.fsync_s, 6)),
        ]);
        t.row(vec![
            "snapshots".into(),
            format!("{} ({} B)", self.snapshots, self.snapshot_bytes),
        ]);
        t.row(vec![
            "compaction".into(),
            format!(
                "{} segments, {} snapshots, {} stories, {} B",
                self.gc_segments, self.gc_snapshots, self.gc_stories, self.gc_bytes
            ),
        ]);
        t.row(vec![
            "node kills (torn tails)".into(),
            format!("{} ({})", self.node_kills, self.torn_tails),
        ]);
        t.row(vec![
            "replayed records".into(),
            format!(
                "{} ({} durable completions, {} B tail dropped)",
                self.replayed_records, self.recovered_completions, self.dropped_bytes
            ),
        ]);
        t.row(vec![
            "re-dispatched in-flight".into(),
            self.redispatched.to_string(),
        ]);
        t.row(vec![
            "recovery MTTR".into(),
            format!("{} s", fnum(self.recovery_mttr_s, 6)),
        ]);
        t.render()
    }
}

/// The seed-pure kill plan shared by the single-node and cluster drivers.
#[derive(Debug, Clone, Copy)]
struct KillPlan {
    /// Kills armed (`FaultConfig::node_kills` from the *base* config; the
    /// per-shard re-mixed fault seeds must not move the victim).
    node_kills: u32,
    /// The base fault seed.
    seed: u64,
    /// Shard count the victim is drawn from.
    shards: u64,
    /// This run's failover pass.
    pass: usize,
    /// This run's shard index.
    shard: usize,
}

impl KillPlan {
    /// The journal index at which this shard-pass dies, if it does.
    /// Kills strike only pass 0 (a failover pass *is* already a recovery
    /// path) on the one seed-chosen victim shard, landing in the middle
    /// half of the journal so the campaign is genuinely mid-flight.
    fn kill_at(&self, journal_len: usize) -> Option<usize> {
        if self.node_kills == 0 || self.pass != 0 || journal_len < 2 {
            return None;
        }
        let victim = fault_mix(self.seed ^ STREAM_KILL, 0, 0) % self.shards;
        if self.shard as u64 != victim {
            return None;
        }
        let quarter = journal_len / 4;
        let span = (journal_len - 2 * quarter).max(1) as u64;
        let roll = fault_mix(self.seed ^ STREAM_KILL, 1, journal_len as u64) % span;
        Some((quarter + roll as usize).min(journal_len - 1))
    }
}

/// Appends `records` to a fresh segment under `dir`, rotating, cutting a
/// snapshot, and compacting every `snapshot_every` records. Returns the
/// writer unsealed so the caller decides between a clean seal
/// ([`WalWriter::finish`]) and a simulated crash
/// ([`WalWriter::abandon_torn`]).
fn append_stream(
    dir: &Path,
    cfg: &WalConfig,
    records: &[WalRecord],
    state: &mut StoreState,
    since_snap: &mut u64,
    dr: &mut DurabilityReport,
) -> Result<WalWriter, StoreError> {
    let mut w = WalWriter::open(dir, cfg.fsync_batch)?;
    for rec in records {
        w.append(rec)?;
        state.apply(rec);
        if cfg.snapshot_every > 0 {
            *since_snap += 1;
            if *since_snap >= cfg.snapshot_every {
                *since_snap = 0;
                let sealed = w.rotate()?;
                let (snap, dead) = state.to_snapshot(sealed);
                dr.snapshot_bytes += write_snapshot(dir, &snap)?;
                let gcs = gc(dir, sealed)?;
                dr.snapshots += 1;
                dr.gc_segments += gcs.segments;
                dr.gc_snapshots += gcs.snapshots;
                dr.gc_bytes += gcs.bytes;
                dr.gc_stories += dead;
            }
        }
    }
    Ok(w)
}

fn absorb_stats(dr: &mut DurabilityReport, stats: WalStats) {
    dr.records += stats.records;
    dr.wal_bytes += stats.bytes;
    dr.fsyncs += stats.fsyncs;
    dr.segments += stats.segments;
}

/// Persists one shard-pass journal, optionally killing the node at
/// `kill_at` and recovering.
fn run_journal(
    dir: &Path,
    cfg: &WalConfig,
    records: &[WalRecord],
    kill_at: Option<usize>,
    dr: &mut DurabilityReport,
) -> Result<(), StoreError> {
    for rec in records {
        match rec.kind {
            KIND_STORY => dr.story_records += 1,
            KIND_COMPLETION => dr.completion_records += 1,
            _ => dr.evict_records += 1,
        }
    }
    let fsyncs_before = dr.fsyncs;
    let mut state = StoreState::default();
    let mut since_snap = 0u64;

    let Some(kp) = kill_at else {
        let w = append_stream(dir, cfg, records, &mut state, &mut since_snap, dr)?;
        absorb_stats(dr, w.finish()?);
        dr.fsync_s += (dr.fsyncs - fsyncs_before) as f64 * cfg.fsync_us * 1e-6;
        return Ok(());
    };

    // ----- fail-stop: cut the journal mid-append ------------------------
    let w = append_stream(dir, cfg, &records[..kp], &mut state, &mut since_snap, dr)?;
    // The frame the node was writing when it died: half of it reaches the
    // platter, exactly the torn tail a strict open must refuse.
    let frame = mann_store::frame_record(&records[kp]);
    absorb_stats(dr, w.abandon_torn(&frame[..frame.len() / 2])?);
    dr.node_kills += 1;

    // ----- recovery -----------------------------------------------------
    match replay_dir(dir) {
        Err(StoreError::TornTail { .. }) => dr.torn_tails += 1,
        Err(other) => return Err(other),
        Ok(_) => {
            return Err(StoreError::Recovery(format!(
                "node kill at journal index {kp} left no torn tail in {}",
                dir.display()
            )))
        }
    }
    let rec = recover_dir(dir)?;
    dr.dropped_bytes += rec.dropped_bytes;
    dr.replayed_records += rec.replayed_records;
    dr.recovery_mttr_s += rec.replayed_records as f64 * cfg.replay_us * 1e-6;
    let mut recovered = StoreState::from_replay(rec.snapshot.as_ref(), &rec.records);
    dr.recovered_completions += recovered.completion_count() as u64;

    // Integrity: the replayed fold must equal an independent reference
    // fold of the journal prefix (both collapsed — mid-stream snapshots
    // drop dead stories the reference never materialized).
    let mut reference = StoreState::from_replay(None, &records[..kp]);
    recovered.collapse();
    reference.collapse();
    if recovered != reference {
        return Err(StoreError::Recovery(format!(
            "replayed state diverges from the journal prefix in {}: \
             {} vs {} live stories, {} vs {} completions",
            dir.display(),
            recovered.live_stories(),
            reference.live_stories(),
            recovered.completion_count(),
            reference.completion_count(),
        )));
    }

    // Consistency: every durable completion must agree with the re-served
    // run's journal (the caller has already re-served and asserted the
    // answers digest; here the *records* are cross-checked).
    let full: HashMap<u64, u32> = records
        .iter()
        .filter(|r| r.kind == KIND_COMPLETION)
        .map(|r| (r.id, r.answer))
        .collect();
    for c in recovered.completions() {
        if full.get(&c.id) != Some(&c.answer) {
            return Err(StoreError::Recovery(format!(
                "recovered completion {} (answer {}) contradicts the re-served journal",
                c.id, c.answer
            )));
        }
    }
    dr.redispatched += records[kp..]
        .iter()
        .filter(|r| r.kind == KIND_COMPLETION)
        .count() as u64;

    // ----- resume: the remainder lands in a fresh segment ---------------
    let mut state = recovered;
    let w = append_stream(dir, cfg, &records[kp..], &mut state, &mut since_snap, dr)?;
    absorb_stats(dr, w.finish()?);
    dr.fsync_s += (dr.fsyncs - fsyncs_before) as f64 * cfg.fsync_us * 1e-6;
    Ok(())
}

/// Runs one shard-pass durably: pure serve, then journal persistence
/// (with the kill-and-recover campaign when this shard-pass is the
/// victim), patching the outcome's report with the durability section.
fn run_shard_durable(
    server: &Server<'_>,
    trace: &ArrivalTrace,
    dir: &Path,
    plan: KillPlan,
) -> Result<ServeOutcome, PersistError> {
    let mut out = server.serve(trace);
    let cfg = &server.config().wal;
    let mut dr = DurabilityReport {
        enabled: true,
        ..DurabilityReport::default()
    };
    let kill_at = plan.kill_at(out.wal_records.len());
    if kill_at.is_some() {
        // The recovered node re-dispatches its trace through the same
        // serve stack. The serve is a pure function, so the re-run is
        // byte-identical to the killed run — assert it rather than
        // assume it.
        let re = server.serve(trace);
        if re.report.answers_digest != out.report.answers_digest {
            return Err(StoreError::Recovery(format!(
                "re-served answers digest {} diverges from the killed run's {}",
                re.report.answers_digest, out.report.answers_digest
            ))
            .into());
        }
    }
    run_journal(dir, cfg, &out.wal_records, kill_at, &mut dr)?;
    out.report.durability = dr;
    Ok(out)
}

/// Serves a trace with the write-ahead log armed. With
/// [`WalConfig::enabled`] off this is exactly [`Server::serve`]; with it
/// on, the journal is persisted under [`WalConfig::dir`] and — when
/// `node_kills` is set — the node is fail-stopped mid-journal and
/// recovered, with the accounting in
/// [`crate::ServeReport::durability`].
///
/// # Errors
///
/// Returns [`PersistError`] on store I/O failure, undetected/unexpected
/// damage, or a recovery that contradicts the journal.
pub fn serve_durable(
    server: &Server<'_>,
    trace: &ArrivalTrace,
) -> Result<ServeOutcome, PersistError> {
    let cfg = server.config();
    if !cfg.wal.enabled {
        return Ok(server.serve(trace));
    }
    run_shard_durable(
        server,
        trace,
        &PathBuf::from(&cfg.wal.dir),
        KillPlan {
            node_kills: cfg.faults.node_kills,
            seed: cfg.faults.seed,
            shards: 1,
            pass: 0,
            shard: 0,
        },
    )
}

/// Serves a trace across a cluster with the write-ahead log armed: every
/// `(shard, pass)` journals into its own `shard-<s>/pass-<p>` directory
/// under the base [`WalConfig::dir`], and the `node_kills` victim shard
/// (chosen seed-purely from the *base* fault seed, so per-shard seed
/// re-mixing never moves it) is killed and recovered on its primary
/// pass.
///
/// # Errors
///
/// Returns [`PersistError`] on store I/O failure or a failed recovery.
pub fn serve_cluster_durable(
    cluster: &Cluster<'_>,
    trace: &ArrivalTrace,
) -> Result<ClusterOutcome, PersistError> {
    let config = cluster.config();
    if !config.base.wal.enabled {
        return Ok(cluster.serve(trace));
    }
    let root = PathBuf::from(&config.base.wal.dir);
    let (node_kills, seed) = (config.base.faults.node_kills, config.base.faults.seed);
    let shards = config.shards as u64;
    let order: Vec<usize> = (0..config.shards).collect();
    cluster.serve_in_order_with(trace, &order, |pass, shard, server, sub| {
        run_shard_durable(
            server,
            sub,
            &root
                .join(format!("shard-{shard}"))
                .join(format!("pass-{pass}")),
            KillPlan {
                node_kills,
                seed,
                shards,
                pass,
                shard,
            },
        )
    })
}

/// The plain (non-durable) serve is infallible; this adapter lets it share
/// the generic pass loop with the durable driver.
pub(crate) fn never<T>(result: Result<T, Infallible>) -> T {
    result.unwrap_or_else(|e| match e {})
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_the_full_option_set() {
        let cfg = WalConfig::parse("/tmp/wal,snap=64,fsync-batch=4,fsync-us=10.5,replay-us=1")
            .expect("valid spec");
        assert!(cfg.enabled);
        assert_eq!(cfg.dir, "/tmp/wal");
        assert_eq!(cfg.snapshot_every, 64);
        assert_eq!(cfg.fsync_batch, 4);
        assert_eq!(cfg.fsync_us, 10.5);
        assert_eq!(cfg.replay_us, 1.0);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn spec_off_and_empty_disable() {
        for s in ["", "off", "0", "  "] {
            let cfg = WalConfig::parse(s).expect("disabling spec");
            assert!(!cfg.enabled, "{s:?} should disable the WAL");
            assert_eq!(cfg, WalConfig::default());
        }
    }

    #[test]
    fn malformed_specs_are_hard_errors() {
        assert!(matches!(
            WalConfig::parse(",snap=4"),
            Err(WalSpecError::BadShape { .. })
        ));
        assert!(matches!(
            WalConfig::parse("snap=4"),
            Err(WalSpecError::BadShape { .. })
        ));
        assert!(matches!(
            WalConfig::parse("/tmp/w,snap"),
            Err(WalSpecError::BadShape { .. })
        ));
        assert!(matches!(
            WalConfig::parse("/tmp/w,snapshots=4"),
            Err(WalSpecError::UnknownOption { .. })
        ));
        assert!(matches!(
            WalConfig::parse("/tmp/w,snap=abc"),
            Err(WalSpecError::BadValue { .. })
        ));
        assert!(matches!(
            WalConfig::parse("/tmp/w,fsync-batch=0"),
            Err(WalSpecError::BadValue { .. })
        ));
        assert!(matches!(
            WalConfig::parse("/tmp/w,fsync-us=-1"),
            Err(WalSpecError::BadValue { .. })
        ));
        assert!(matches!(
            WalConfig::parse("/tmp/w,replay-us=NaN"),
            Err(WalSpecError::BadValue { .. })
        ));
    }

    #[test]
    fn validation_rejects_inconsistent_configs() {
        let mut cfg = WalConfig {
            enabled: true,
            ..WalConfig::default()
        };
        assert!(cfg.validate().is_err(), "enabled without a directory");
        cfg.dir = "/tmp/w".into();
        assert!(cfg.validate().is_ok());
        cfg.fsync_batch = 0;
        assert!(cfg.validate().is_err());
        let orphan_snap = WalConfig {
            snapshot_every: 8,
            ..WalConfig::default()
        };
        assert!(orphan_snap.validate().is_err(), "snapshots without a WAL");
    }

    #[test]
    fn kill_plan_is_seed_pure_and_pass_zero_only() {
        let plan = KillPlan {
            node_kills: 1,
            seed: 7,
            shards: 4,
            pass: 0,
            shard: 0,
        };
        let victim = (0..4)
            .filter(|&s| KillPlan { shard: s, ..plan }.kill_at(100).is_some())
            .collect::<Vec<_>>();
        assert_eq!(victim.len(), 1, "exactly one victim shard");
        let v = victim[0];
        let kp = KillPlan { shard: v, ..plan }
            .kill_at(100)
            .expect("kill point");
        assert_eq!(KillPlan { shard: v, ..plan }.kill_at(100), Some(kp));
        assert!((25..100).contains(&kp), "mid-campaign kill point, got {kp}");
        assert_eq!(
            KillPlan {
                pass: 1,
                shard: v,
                ..plan
            }
            .kill_at(100),
            None
        );
        assert_eq!(
            KillPlan {
                node_kills: 0,
                shard: v,
                ..plan
            }
            .kill_at(100),
            None
        );
    }

    #[test]
    fn durability_report_renders_every_counter() {
        let dr = DurabilityReport {
            enabled: true,
            records: 100,
            story_records: 40,
            completion_records: 50,
            evict_records: 10,
            wal_bytes: 4096,
            segments: 3,
            fsyncs: 13,
            fsync_s: 6.5e-4,
            snapshots: 2,
            snapshot_bytes: 2048,
            gc_segments: 2,
            gc_snapshots: 1,
            gc_bytes: 1024,
            gc_stories: 5,
            node_kills: 1,
            torn_tails: 1,
            dropped_bytes: 33,
            replayed_records: 77,
            recovered_completions: 25,
            redispatched: 25,
            recovery_mttr_s: 1.54e-4,
        };
        let r = dr.render();
        for needle in [
            "100 (40/50/10)",
            "4096 B over 3 segments",
            "13",
            "2 (2048 B)",
            "1 (1)",
            "77",
            "25",
            "33",
        ] {
            assert!(r.contains(needle), "missing {needle:?} in:\n{r}");
        }
    }
}
