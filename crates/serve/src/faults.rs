//! Deterministic fault-injection campaigns for the serve stack.
//!
//! A [`FaultConfig`] describes *what can go wrong* during a serve — link
//! corruption, instance crashes, radiation upsets in resident story
//! memory, host-queue overload — and a [`FaultPlan`] materializes that
//! description into a concrete, seeded schedule of fault events in
//! simulated time. The plan is a pure function of `(config, trace span,
//! instance count)`: every decision — whether a given transfer attempt is
//! corrupted, when an instance crashes, which resident story an SEU
//! flips — derives from counter-mode hashes ([`mann_hw::fault_mix`]) or a
//! dedicated `StdRng` stream, never from wall-clock state or event-loop
//! interleaving. That is what makes a fault campaign byte-identical
//! across `MANN_THREADS` settings and across the serial/parallel engines.
//!
//! Recovery is the serving engine's job ([`crate::Server::serve`]): CRC
//! retransmission with bounded exponential backoff, watchdog-driven
//! failover to a healthy replica, degraded-ITH admission under overload,
//! and scrub-and-reupload of poisoned resident stories. The outcome is
//! summarized in a [`FaultReport`] embedded in the serve report.

use mann_hw::{fault_coin, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use mann_core::report::{fnum, TextTable};

/// Everything that can go wrong reading or validating a fault plan.
#[derive(Debug, thiserror::Error)]
pub enum FaultPlanError {
    /// The plan file could not be read.
    #[error("cannot read fault plan {path}: {source}")]
    Io {
        /// Path of the unreadable plan.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The plan file was not valid JSON of the expected shape.
    #[error("cannot parse fault plan {path}: {source}")]
    Parse {
        /// Path of the malformed plan.
        path: String,
        /// The underlying JSON error.
        source: serde_json::Error,
    },
    /// A field value is out of range or inconsistent.
    #[error("invalid fault plan: {field} {reason}")]
    Invalid {
        /// The offending field.
        field: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// An inline `key=value` spec used an unknown key.
    #[error(
        "unknown fault-plan key {key:?}: expected one of seed, corrupt, retries, \
         backoff-us, crashes, cooldown-us, watchdog-us, seus, degrade-depth, degrade-margin, \
         node-kills"
    )]
    UnknownKey {
        /// The unrecognized key.
        key: String,
    },
    /// An inline `key=value` spec had an unparseable value.
    #[error("bad value {value:?} for fault-plan key {key}")]
    BadValue {
        /// The key whose value failed to parse.
        key: String,
        /// The rejected value text.
        value: String,
    },
}

/// Declarative description of one fault campaign.
///
/// The default value injects nothing: a zero [`FaultConfig`] serves
/// byte-identically to a build without the fault layer at all (pinned by
/// the golden suite). All probabilities and durations are interpreted in
/// simulated time.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultConfig {
    /// Seed of the campaign; all fault randomness derives from it.
    pub seed: u64,
    /// Per-attempt probability that a link transfer arrives corrupted
    /// (detected by CRC at the receiver, answered by retransmission).
    pub link_corrupt_prob: f64,
    /// Retransmissions allowed per link job before the payload is
    /// declared undeliverable and its requests are shed.
    pub max_retries: u32,
    /// Backoff before the first retransmission, seconds; doubles per
    /// subsequent attempt on the same job.
    pub backoff_base_s: f64,
    /// Instance crash events injected uniformly over the trace span.
    pub crashes: u32,
    /// Time a crashed instance stays down before rejoining, seconds.
    pub crash_cooldown_s: f64,
    /// Per-request watchdog timeout, seconds; 0 disables the watchdog.
    /// Required whenever `crashes > 0` — it is the only mechanism that
    /// rescues requests stranded on a dead instance.
    pub watchdog_s: f64,
    /// Single-event upsets injected into resident story memory, uniformly
    /// over the trace span.
    pub seus: u32,
    /// Host-queue depth at (and beyond) which newly admitted requests are
    /// answered in aggressive-ITH degraded mode; 0 disables degradation.
    pub degrade_depth: usize,
    /// How far degraded mode lowers every calibrated ITH threshold
    /// (earlier early-exit: cheaper, less accurate).
    pub degrade_margin: f32,
    /// Host-level fail-stop kills: whole serving nodes (shards) terminated
    /// mid-campaign and recovered by WAL replay. Unlike every other class
    /// this is not an event-loop fault — the simulated serve itself is
    /// untouched (so it stays out of [`FaultConfig::is_active`]); the
    /// durable-store driver kills the journaling process instead and must
    /// be enabled (`wal`) for the class to be usable. Contrast with a
    /// membership-plan `fail` event ([`crate::MembershipPlan`]), which
    /// fail-stops a shard *inside* the simulated timeline at a scheduled
    /// instant — stranding its in-flight work for live re-routing —
    /// rather than killing the journaling process around it.
    pub node_kills: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            link_corrupt_prob: 0.0,
            max_retries: 3,
            backoff_base_s: 1e-6,
            crashes: 0,
            crash_cooldown_s: 100e-6,
            watchdog_s: 0.0,
            seus: 0,
            degrade_depth: 0,
            degrade_margin: 0.0,
            node_kills: 0,
        }
    }
}

// Hand-written so that partial plan files work: every omitted field keeps
// its default, which lets a plan say only `{"crashes": 2, "watchdog-us"...}`
// without restating the whole struct. (The derived deserializer treats a
// missing field as an error.)
impl Deserialize for FaultConfig {
    fn from_value(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        let serde_json::Value::Object(pairs) = v else {
            return Err(serde_json::Error::msg(format!(
                "expected fault-config object, got {}",
                v.kind()
            )));
        };
        let mut out = Self::default();
        for (key, val) in pairs {
            match key.as_str() {
                "seed" => out.seed = Deserialize::from_value(val)?,
                "link_corrupt_prob" => out.link_corrupt_prob = Deserialize::from_value(val)?,
                "max_retries" => out.max_retries = Deserialize::from_value(val)?,
                "backoff_base_s" => out.backoff_base_s = Deserialize::from_value(val)?,
                "crashes" => out.crashes = Deserialize::from_value(val)?,
                "crash_cooldown_s" => out.crash_cooldown_s = Deserialize::from_value(val)?,
                "watchdog_s" => out.watchdog_s = Deserialize::from_value(val)?,
                "seus" => out.seus = Deserialize::from_value(val)?,
                "degrade_depth" => out.degrade_depth = Deserialize::from_value(val)?,
                "degrade_margin" => out.degrade_margin = Deserialize::from_value(val)?,
                "node_kills" => out.node_kills = Deserialize::from_value(val)?,
                other => {
                    return Err(serde_json::Error::msg(format!(
                        "unknown fault-config field `{other}`"
                    )))
                }
            }
        }
        Ok(out)
    }
}

impl FaultConfig {
    /// A campaign that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether this campaign injects any fault at all. An inactive config
    /// leaves the serve path untouched (byte-identical reports).
    pub fn is_active(&self) -> bool {
        self.link_corrupt_prob > 0.0 || self.crashes > 0 || self.seus > 0 || self.degrade_depth > 0
    }

    /// Checks ranges and cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::Invalid`] naming the first bad field.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let bad =
            |field: &'static str, reason: String| Err(FaultPlanError::Invalid { field, reason });
        if !(self.link_corrupt_prob.is_finite() && (0.0..=1.0).contains(&self.link_corrupt_prob)) {
            return bad(
                "link_corrupt_prob",
                format!("must be in [0, 1], got {}", self.link_corrupt_prob),
            );
        }
        if self.link_corrupt_prob >= 1.0 {
            return bad(
                "link_corrupt_prob",
                "of 1.0 corrupts every attempt forever; no transfer can succeed".into(),
            );
        }
        if !(self.backoff_base_s.is_finite() && self.backoff_base_s >= 0.0) {
            return bad(
                "backoff_base_s",
                format!("must be finite and >= 0, got {}", self.backoff_base_s),
            );
        }
        if !(self.crash_cooldown_s.is_finite() && self.crash_cooldown_s >= 0.0) {
            return bad(
                "crash_cooldown_s",
                format!("must be finite and >= 0, got {}", self.crash_cooldown_s),
            );
        }
        if !(self.watchdog_s.is_finite() && self.watchdog_s >= 0.0) {
            return bad(
                "watchdog_s",
                format!("must be finite and >= 0, got {}", self.watchdog_s),
            );
        }
        if self.crashes > 0 && self.watchdog_s <= 0.0 {
            return bad(
                "watchdog_s",
                "must be positive when crashes > 0 (the watchdog is the only \
                 mechanism that rescues requests stranded on a dead instance)"
                    .into(),
            );
        }
        if !(self.degrade_margin.is_finite() && self.degrade_margin >= 0.0) {
            return bad(
                "degrade_margin",
                format!("must be finite and >= 0, got {}", self.degrade_margin),
            );
        }
        Ok(())
    }

    /// Loads a plan from a JSON file. Omitted fields keep their defaults.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError`] on unreadable files, malformed JSON, or
    /// out-of-range fields.
    pub fn load(path: &str) -> Result<Self, FaultPlanError> {
        let text = std::fs::read_to_string(path).map_err(|source| FaultPlanError::Io {
            path: path.to_owned(),
            source,
        })?;
        let config: Self = serde_json::from_str(&text).map_err(|source| FaultPlanError::Parse {
            path: path.to_owned(),
            source,
        })?;
        config.validate()?;
        Ok(config)
    }

    /// Parses an inline `key=value[,key=value...]` spec, e.g.
    /// `corrupt=0.05,retries=4,crashes=2,watchdog-us=400,seed=7`.
    ///
    /// Keys: `seed`, `corrupt`, `retries`, `backoff-us`, `crashes`,
    /// `cooldown-us`, `watchdog-us`, `seus`, `degrade-depth`,
    /// `degrade-margin`, `node-kills`. Omitted keys keep their defaults.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError`] on unknown keys, unparseable values, or
    /// out-of-range fields.
    pub fn parse_spec(spec: &str) -> Result<Self, FaultPlanError> {
        let mut out = Self::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| FaultPlanError::BadValue {
                    key: part.trim().to_owned(),
                    value: String::new(),
                })?;
            let (key, value) = (key.trim(), value.trim());
            let bad = || FaultPlanError::BadValue {
                key: key.to_owned(),
                value: value.to_owned(),
            };
            match key {
                "seed" => out.seed = value.parse().map_err(|_| bad())?,
                "corrupt" => out.link_corrupt_prob = value.parse().map_err(|_| bad())?,
                "retries" => out.max_retries = value.parse().map_err(|_| bad())?,
                "backoff-us" => {
                    out.backoff_base_s = value.parse::<f64>().map_err(|_| bad())? * 1e-6;
                }
                "crashes" => out.crashes = value.parse().map_err(|_| bad())?,
                "cooldown-us" => {
                    out.crash_cooldown_s = value.parse::<f64>().map_err(|_| bad())? * 1e-6;
                }
                "watchdog-us" => {
                    out.watchdog_s = value.parse::<f64>().map_err(|_| bad())? * 1e-6;
                }
                "seus" => out.seus = value.parse().map_err(|_| bad())?,
                "degrade-depth" => out.degrade_depth = value.parse().map_err(|_| bad())?,
                "degrade-margin" => out.degrade_margin = value.parse().map_err(|_| bad())?,
                "node-kills" => out.node_kills = value.parse().map_err(|_| bad())?,
                _ => {
                    return Err(FaultPlanError::UnknownKey {
                        key: key.to_owned(),
                    })
                }
            }
        }
        out.validate()?;
        Ok(out)
    }

    /// Loads from either an inline spec (contains `=`) or a JSON file path.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlanError`] from whichever form was detected.
    pub fn from_arg(arg: &str) -> Result<Self, FaultPlanError> {
        if arg.contains('=') {
            Self::parse_spec(arg)
        } else {
            Self::load(arg)
        }
    }
}

/// A materialized fault schedule: the [`FaultConfig`] plus concrete,
/// seeded crash and SEU event times for one `(trace span, instances)`
/// geometry. Link-corruption decisions are not precomputed — they hash
/// `(job, attempt)` on demand, so they cost nothing when clean and never
/// depend on event interleaving.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    /// `(time, instance)` crash events, time-ordered.
    crash_events: Vec<(SimTime, usize)>,
    /// `(time, instance, pick)` SEU events, time-ordered; `pick` selects
    /// a resident story uniformly at fire time.
    seu_events: Vec<(SimTime, usize, u64)>,
}

/// Domain-separation constants: one per consumer of the campaign seed, so
/// streams never alias.
const STREAM_LINK: u64 = 0x6c69_6e6b;
const STREAM_CRASH: u64 = 0x0063_7261_7368;
const STREAM_SEU: u64 = 0x0073_6575;

impl FaultPlan {
    /// Materializes `config` over a trace of `span` with `instances`
    /// replicas. Validates the config first.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::Invalid`] on a bad config.
    pub fn materialize(
        config: &FaultConfig,
        span: SimTime,
        instances: usize,
    ) -> Result<Self, FaultPlanError> {
        config.validate()?;
        assert!(instances > 0, "fault plan needs at least one instance");
        // Degenerate single-request traces have span 0; give the uniform
        // draw a 1 ns floor so events still land at a defined time.
        let horizon_s = span.as_s().max(1e-9);
        let mut crash_rng = StdRng::seed_from_u64(config.seed ^ STREAM_CRASH);
        let mut crash_events: Vec<(SimTime, usize)> = (0..config.crashes)
            .map(|_| {
                let t = crash_rng.gen_range(0.0..horizon_s);
                let inst = crash_rng.gen_range(0..instances);
                (SimTime::from_s(t), inst)
            })
            .collect();
        crash_events.sort_by_key(|&(t, i)| (t, i));
        let mut seu_rng = StdRng::seed_from_u64(config.seed ^ STREAM_SEU);
        let mut seu_events: Vec<(SimTime, usize, u64)> = (0..config.seus)
            .map(|_| {
                let t = seu_rng.gen_range(0.0..horizon_s);
                let inst = seu_rng.gen_range(0..instances);
                let pick = seu_rng.next_u64();
                (SimTime::from_s(t), inst, pick)
            })
            .collect();
        seu_events.sort_by_key(|&(t, i, _)| (t, i));
        Ok(Self {
            config: config.clone(),
            crash_events,
            seu_events,
        })
    }

    /// The campaign description this plan was materialized from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Whether transfer attempt `attempt` of link job `job` arrives
    /// corrupted. Pure in `(seed, job, attempt)` — independent of when the
    /// attempt happens or what else is in flight.
    pub fn corrupts(&self, job: u64, attempt: u32) -> bool {
        fault_coin(
            self.config.link_corrupt_prob,
            self.config.seed ^ STREAM_LINK,
            job,
            u64::from(attempt),
        )
    }

    /// Backoff before retransmitting after `attempt` failures of one job:
    /// `backoff_base_s * 2^attempt`, exponential per job.
    pub fn backoff(&self, attempt: u32) -> SimTime {
        SimTime::from_s(self.config.backoff_base_s * f64::from(1u32 << attempt.min(20)))
    }

    /// Scheduled `(time, instance)` crash events, time-ordered.
    pub fn crash_events(&self) -> &[(SimTime, usize)] {
        &self.crash_events
    }

    /// Scheduled `(time, instance, pick)` SEU events, time-ordered.
    pub fn seu_events(&self) -> &[(SimTime, usize, u64)] {
        &self.seu_events
    }
}

/// What a fault campaign did to one served trace, and what recovery cost.
///
/// All times are simulated seconds. `mttr_*` fields are means over the
/// repaired events of that class (0 when the class never fired):
/// link = first corrupted attempt to the successful retransmission;
/// instance = crash to watchdog-driven failover of a stranded request;
/// SEU = scrub detection at dispatch to the repaired story being resident
/// again (upload complete).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultReport {
    /// Whether any fault class was active; `false` means every other
    /// field is zero and the serve was byte-identical to a fault-free one.
    pub enabled: bool,
    /// Seed the campaign derived its randomness from.
    pub plan_seed: u64,
    /// Link transfer attempts that arrived corrupted (CRC failures).
    pub link_corruptions: u64,
    /// Retransmissions issued in response.
    pub retransmits: u64,
    /// Link jobs that exhausted their retry budget (payload undeliverable).
    pub retry_exhausted: u64,
    /// Link time spent on retransmissions, seconds (subset of link busy).
    pub retry_link_s: f64,
    /// Board energy burned while replaying transfers, joules.
    pub retry_energy_j: f64,
    /// Instance crash events that hit a live instance.
    pub crashes: u64,
    /// Watchdog expirations that found their request still unanswered
    /// (most are benign re-arms; see `failovers` for actual rescues).
    pub watchdog_fires: u64,
    /// Requests rescued off a dead instance and re-dispatched.
    pub failovers: u64,
    /// Requests shed because a link job exhausted its retries.
    pub shed_link: u64,
    /// Requests shed at admission by the bounded queue while the campaign
    /// was active (overload class).
    pub shed_overload: u64,
    /// Requests answered in aggressive-ITH degraded mode.
    pub degraded: u64,
    /// SEU events injected (whether or not they hit a resident story).
    pub seu_events: u64,
    /// Poisoned stories detected by digest check and scrubbed.
    pub scrubs: u64,
    /// Write-phase cycles re-run to repair scrubbed stories.
    pub scrub_cycles: u64,
    /// Fabric energy of the scrub re-writes, joules.
    pub scrub_energy_j: f64,
    /// Mean time-to-repair of link corruption, seconds.
    pub mttr_link_s: f64,
    /// Mean time from crash to failover of a stranded request, seconds.
    pub mttr_instance_s: f64,
    /// Mean time from SEU detection to repaired residency, seconds.
    pub mttr_seu_s: f64,
}

impl FaultReport {
    /// Requests shed for any reason.
    pub fn total_shed(&self) -> u64 {
        self.shed_link + self.shed_overload
    }

    /// Renders the campaign summary as a text table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["fault metric".into(), "value".into()]);
        t.row(vec!["plan seed".into(), self.plan_seed.to_string()]);
        t.row(vec![
            "link corruptions".into(),
            format!(
                "{} ({} retransmits, {} exhausted)",
                self.link_corruptions, self.retransmits, self.retry_exhausted
            ),
        ]);
        t.row(vec![
            "retry cost".into(),
            format!(
                "{} us link, {} J",
                fnum(self.retry_link_s * 1e6, 1),
                fnum(self.retry_energy_j, 3)
            ),
        ]);
        t.row(vec![
            "crashes / failovers".into(),
            format!("{} / {}", self.crashes, self.failovers),
        ]);
        t.row(vec![
            "shed (link / overload)".into(),
            format!("{} / {}", self.shed_link, self.shed_overload),
        ]);
        t.row(vec!["degraded answers".into(), self.degraded.to_string()]);
        t.row(vec![
            "seu events / scrubs".into(),
            format!("{} / {}", self.seu_events, self.scrubs),
        ]);
        t.row(vec![
            "scrub cost".into(),
            format!(
                "{} cycles, {} J",
                self.scrub_cycles,
                fnum(self.scrub_energy_j, 3)
            ),
        ]);
        t.row(vec![
            "mttr link/instance/seu".into(),
            format!(
                "{} / {} / {} us",
                fnum(self.mttr_link_s * 1e6, 1),
                fnum(self.mttr_instance_s * 1e6, 1),
                fnum(self.mttr_seu_s * 1e6, 1)
            ),
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inactive_and_valid() {
        let c = FaultConfig::none();
        assert!(!c.is_active());
        c.validate().expect("default config valid");
    }

    #[test]
    fn validate_rejects_bad_fields() {
        let mut c = FaultConfig {
            link_corrupt_prob: 1.5,
            ..FaultConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(FaultPlanError::Invalid { field, .. }) if field == "link_corrupt_prob"
        ));
        c.link_corrupt_prob = 0.0;
        c.crashes = 1;
        c.watchdog_s = 0.0;
        assert!(matches!(
            c.validate(),
            Err(FaultPlanError::Invalid { field, .. }) if field == "watchdog_s"
        ));
        c.watchdog_s = 100e-6;
        c.validate().expect("crashes with watchdog valid");
    }

    #[test]
    fn spec_round_trips_and_rejects_unknown_keys() {
        let c = FaultConfig::parse_spec(
            "corrupt=0.05,retries=4,backoff-us=2,crashes=2,cooldown-us=300,\
             watchdog-us=400,seus=3,degrade-depth=8,degrade-margin=0.5,seed=7",
        )
        .expect("spec parses");
        assert_eq!(c.seed, 7);
        assert_eq!(c.max_retries, 4);
        assert_eq!(c.crashes, 2);
        assert_eq!(c.seus, 3);
        assert_eq!(c.degrade_depth, 8);
        assert!((c.link_corrupt_prob - 0.05).abs() < 1e-12);
        assert!((c.backoff_base_s - 2e-6).abs() < 1e-15);
        assert!((c.watchdog_s - 400e-6).abs() < 1e-12);
        assert!(c.is_active());
        assert!(matches!(
            FaultConfig::parse_spec("corupt=0.1"),
            Err(FaultPlanError::UnknownKey { .. })
        ));
        assert!(matches!(
            FaultConfig::parse_spec("corrupt=lots"),
            Err(FaultPlanError::BadValue { .. })
        ));
    }

    #[test]
    fn partial_json_plan_keeps_defaults() {
        let c: FaultConfig =
            serde_json::from_str(r#"{"crashes": 2, "watchdog_s": 0.0004}"#).expect("parses");
        assert_eq!(c.crashes, 2);
        assert_eq!(c.max_retries, FaultConfig::default().max_retries);
        assert!((c.watchdog_s - 0.0004).abs() < 1e-12);
        assert!(serde_json::from_str::<FaultConfig>(r#"{"crashs": 2}"#).is_err());
    }

    #[test]
    fn config_json_round_trips() {
        let c = FaultConfig::parse_spec("corrupt=0.1,crashes=1,watchdog-us=50,seed=3")
            .expect("spec parses");
        let json = serde_json::to_string(&c).expect("serializes");
        let back: FaultConfig = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, c);
    }

    #[test]
    fn plan_is_deterministic_and_in_range() {
        let c = FaultConfig::parse_spec("crashes=5,watchdog-us=100,seus=7,seed=11")
            .expect("spec parses");
        let span = SimTime::from_s(1e-3);
        let a = FaultPlan::materialize(&c, span, 3).expect("plan");
        let b = FaultPlan::materialize(&c, span, 3).expect("plan");
        assert_eq!(a.crash_events(), b.crash_events());
        assert_eq!(a.seu_events(), b.seu_events());
        assert_eq!(a.crash_events().len(), 5);
        assert_eq!(a.seu_events().len(), 7);
        for &(t, i) in a.crash_events() {
            assert!(t <= span && i < 3);
        }
        for w in a.crash_events().windows(2) {
            assert!(w[0].0 <= w[1].0, "crash events time-ordered");
        }
        let other = FaultPlan::materialize(
            &FaultConfig {
                seed: 12,
                ..c.clone()
            },
            span,
            3,
        )
        .expect("plan");
        assert_ne!(a.crash_events(), other.crash_events());
    }

    #[test]
    fn corruption_is_pure_in_job_and_attempt() {
        let c = FaultConfig::parse_spec("corrupt=0.5,seed=9").expect("spec parses");
        let p = FaultPlan::materialize(&c, SimTime::from_s(1e-3), 2).expect("plan");
        let hits: Vec<bool> = (0..64).map(|j| p.corrupts(j, 0)).collect();
        let again: Vec<bool> = (0..64).map(|j| p.corrupts(j, 0)).collect();
        assert_eq!(hits, again);
        assert!(hits.iter().any(|&h| h) && hits.iter().any(|&h| !h));
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let c = FaultConfig::parse_spec("backoff-us=2,corrupt=0.1").expect("spec parses");
        let p = FaultPlan::materialize(&c, SimTime::from_s(1e-3), 1).expect("plan");
        assert_eq!(p.backoff(0).ps(), 2_000_000);
        assert_eq!(p.backoff(1).ps(), 4_000_000);
        assert_eq!(p.backoff(3).ps(), 16_000_000);
    }

    #[test]
    fn fault_report_renders_every_counter() {
        let r = FaultReport {
            enabled: true,
            plan_seed: 7,
            link_corruptions: 3,
            retransmits: 2,
            retry_exhausted: 1,
            crashes: 1,
            failovers: 2,
            shed_link: 1,
            shed_overload: 4,
            degraded: 5,
            seu_events: 2,
            scrubs: 1,
            ..FaultReport::default()
        };
        let text = r.render();
        for needle in ["retransmits", "failovers", "scrubs", "mttr"] {
            assert!(text.contains(needle), "render missing {needle}");
        }
        assert_eq!(r.total_shed(), 5);
    }
}
