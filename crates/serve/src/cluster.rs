//! Distributed serve fabric: a story-affinity sharded cluster.
//!
//! The single-node [`Server`](crate::Server) models one host — one bounded
//! queue, one PCIe arbiter, one instance pool. This module scales that out:
//! a frontend [`ShardRouter`] consistent-hashes each request's story onto K
//! shard nodes (rendezvous hashing with weighted virtual nodes), every
//! shard runs its own full serve stack (link arbiter, instance pool, story
//! cache, fault plan), and a replication factor R arms *cross-shard*
//! failover — a request stranded by an instance crash is re-dispatched to
//! the story's replica shard, paying the story re-upload at real
//! cycle/link cost, instead of re-queueing locally.
//!
//! # Determinism
//!
//! A cluster serve is a pure function of `(suite, trace, config)`:
//!
//! * routing is pure rendezvous hashing over `story_digest`
//!   ([`mann_hw::fault_mix`] under a routing salt), so placement never
//!   depends on arrival interleaving;
//! * each shard's fault plan derives from [`mann_hw::shard_fault_seed`],
//!   so what shard `s` injects is independent of how many shards exist or
//!   the order they are served in;
//! * aggregation folds per-shard results in `(pass, shard)` order whatever
//!   order the shards actually ran in, so [`ClusterReport`] bytes are
//!   identical across `MANN_THREADS`, engine modes, and shard-iteration
//!   order (pinned by tests and a golden).
//!
//! At K=1/R=1 the layer is *inert*: the report serializes and renders as
//! the single shard's [`ServeReport`], byte-identical to the single-node
//! path.

use std::collections::HashMap;
use std::convert::Infallible;

use mann_core::report::{fnum, percent, TextTable};
use mann_core::TaskSuite;
use mann_hw::{
    fault_mix, shard_fault_seed, story_digest, Accelerator, PcieLink, PhaseCycles, SimTime,
};
use serde::Serialize;

use crate::faults::{FaultConfig, FaultReport};
use crate::membership::{
    MembershipEpoch, MembershipEventKind, MembershipPlan, MembershipReport, MembershipView,
};
use crate::numeric::NumericHealth;
use crate::report::{
    answers_digest, BatchReport, CacheReport, HopPruneReport, IndexReport, LatencySummary,
    LinkReport, ServeReport,
};
use crate::request::{Completion, Rejection, Request};
use crate::server::{ServeConfig, ServeOutcome, Server};
use crate::store::{never, DurabilityReport};
use crate::trace::ArrivalTrace;

/// Domain-separation salt for routing hashes (ASCII "router"): routing
/// scores share [`fault_mix`] with the fault layer but never its streams.
const ROUTE_SALT: u64 = 0x0000_726f_7574_6572;

/// Virtual nodes per shard are packed into 16 bits of the hash input.
const MAX_WEIGHT: u32 = 1 << 16;

/// Scheduling keys mix the task index into the story digest exactly like
/// the single-node scheduler, so "same story, same task" is one routing
/// unit cluster-wide.
const TASK_KEY_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Frontend router: weighted rendezvous (highest-random-weight) hashing of
/// story keys onto shards.
///
/// Every `(key, shard)` pair gets a score — the max of the shard's
/// `weight` virtual-node hashes — and a key's replica chain is the shards
/// ranked by score. Rendezvous hashing gives minimal disruption natively:
/// removing a shard only moves the keys that ranked it, because the other
/// shards' scores are untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    weights: Vec<u32>,
}

impl ShardRouter {
    /// A router over `shards` equally weighted shards.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn new(shards: usize) -> Self {
        Self::with_weights(vec![1; shards])
    }

    /// A router with one relative capacity weight per shard (virtual-node
    /// count; a weight-2 shard owns ~2x the keys of a weight-1 shard).
    ///
    /// # Panics
    ///
    /// Panics when `weights` is empty or any weight is 0 or ≥ 2^16.
    pub fn with_weights(weights: Vec<u32>) -> Self {
        assert!(!weights.is_empty(), "router needs at least one shard");
        assert!(
            weights.iter().all(|&w| (1..MAX_WEIGHT).contains(&w)),
            "shard weights must be in 1..{MAX_WEIGHT}"
        );
        Self { weights }
    }

    /// Number of shards the router spreads keys over.
    pub fn shards(&self) -> usize {
        self.weights.len()
    }

    /// The per-shard weight vector (virtual-node counts).
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Rendezvous score of `key` on `shard`: the best of the shard's
    /// weighted virtual nodes.
    fn score(&self, key: u64, shard: usize) -> u64 {
        (0..u64::from(self.weights[shard]))
            .map(|v| fault_mix(ROUTE_SALT, key, ((shard as u64) << 16) | v))
            .max()
            .expect("weight >= 1")
    }

    /// The up-to-`replicas` highest-scoring shards for `key` among those
    /// `alive` admits, primary first. Pure in `(key, weights, liveness)`.
    pub fn route_live(
        &self,
        key: u64,
        replicas: usize,
        alive: impl Fn(usize) -> bool,
    ) -> Vec<usize> {
        let mut ranked: Vec<(u64, usize)> = (0..self.weights.len())
            .filter(|&s| alive(s))
            .map(|s| (self.score(key, s), s))
            .collect();
        // Highest score wins; the shard index breaks (astronomically
        // unlikely) score ties so the order is total.
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        ranked.truncate(replicas);
        ranked.into_iter().map(|(_, s)| s).collect()
    }

    /// The `replicas` highest-scoring shards for `key`, primary first.
    ///
    /// # Panics
    ///
    /// Panics when `replicas` exceeds the shard count.
    pub fn route(&self, key: u64, replicas: usize) -> Vec<usize> {
        assert!(
            replicas <= self.weights.len(),
            "cannot pick {replicas} replicas from {} shards",
            self.weights.len()
        );
        self.route_live(key, replicas, |_| true)
    }

    /// The primary shard for `key`.
    pub fn primary(&self, key: u64) -> usize {
        self.route(key, 1)[0]
    }
}

/// Cluster-level configuration wrapped around a per-shard [`ServeConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Shard nodes; 1 makes the cluster layer inert.
    pub shards: usize,
    /// Replica shards per story (including the primary); with R ≥ 2 a
    /// request stranded by a crash fails over to the next replica shard.
    pub replication: usize,
    /// Relative routing weight per shard; empty = uniform.
    pub weights: Vec<u32>,
    /// Per-shard fault-campaign overrides (targeted campaigns / tests);
    /// `None` entries fall back to `base.faults`. Empty = all from base.
    /// At K > 1 every shard's plan seed — overridden or not — is re-mixed
    /// through [`shard_fault_seed`] to keep plans seed-pure per shard.
    pub shard_faults: Vec<Option<FaultConfig>>,
    /// The serve stack every shard runs.
    pub base: ServeConfig,
    /// Live-membership campaign: scheduled drains/failures/joins, weight
    /// re-tuning, and the hot-key splitter. The default (empty) plan
    /// leaves the cluster serve path byte-identical to before the
    /// membership layer existed.
    pub membership: MembershipPlan,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            replication: 1,
            weights: Vec::new(),
            shard_faults: Vec::new(),
            base: ServeConfig::default(),
            membership: MembershipPlan::none(),
        }
    }
}

impl ClusterConfig {
    /// Checks structural validity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("need at least one shard".into());
        }
        if self.replication == 0 || self.replication > self.shards {
            return Err(format!(
                "replication {} out of range 1..={} (shard count)",
                self.replication, self.shards
            ));
        }
        if !self.weights.is_empty() && self.weights.len() != self.shards {
            return Err(format!(
                "{} weights for {} shards",
                self.weights.len(),
                self.shards
            ));
        }
        if let Some((shard, &w)) = self
            .weights
            .iter()
            .enumerate()
            .find(|&(_, &w)| !(1..MAX_WEIGHT).contains(&w))
        {
            return Err(format!(
                "shard {shard} weight {w} out of range 1..{MAX_WEIGHT}"
            ));
        }
        if !self.shard_faults.is_empty() && self.shard_faults.len() != self.shards {
            return Err(format!(
                "{} fault overrides for {} shards",
                self.shard_faults.len(),
                self.shards
            ));
        }
        self.base.validate()?;
        for f in self.shard_faults.iter().flatten() {
            f.validate().map_err(|e| e.to_string())?;
        }
        self.membership
            .validate_for(self.shards)
            .map_err(|e| e.to_string())?;
        Ok(())
    }
}

/// Cross-shard failover accounting (zeros at R = 1 or without crashes).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct ClusterFailover {
    /// Watchdog handoffs: requests a shard exported after its instance
    /// crashed under them.
    pub exports: u64,
    /// Exported requests that completed on a replica shard.
    pub completed: u64,
    /// Exported requests lost anyway (replica queue full or replica-side
    /// shed); still accounted in the cluster partition.
    pub lost: u64,
    /// Link bytes the replica passes moved — the re-uploaded stories plus
    /// their answer drains, paid at real link cost.
    pub replay_link_bytes: u64,
    /// Mean end-to-end latency of failed-over completions, measured from
    /// the *original* arrival, seconds.
    pub mean_failover_latency_s: f64,
}

/// Aggregate report of one cluster serve: per-shard [`ServeReport`]s
/// merged the only sound way — latency percentiles ranked over the pooled
/// raw samples (never averaged), counter sections summed, MTTR means
/// re-weighted by their event counts — plus the per-shard breakdown.
///
/// Serialization is hand-written for the same reason as [`ServeReport`]:
/// at K=1/R=1 the cluster layer is inert and the report serializes as the
/// single shard's `ServeReport`, byte-identical to the single-node path
/// (the golden suite pins this).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Shard nodes.
    pub shards: usize,
    /// Replication factor.
    pub replication: usize,
    /// Requests in the trace.
    pub requests: usize,
    /// Requests that completed, on any shard.
    pub completed: usize,
    /// Requests rejected by a bounded shard queue.
    pub rejected: usize,
    /// Requests shed by a shard's fault campaign.
    pub shed: usize,
    /// Fraction of completed requests answered correctly.
    pub accuracy: f64,
    /// First arrival to the last drain on any shard, seconds.
    pub makespan_s: f64,
    /// Completed requests per simulated second of cluster makespan.
    pub throughput_rps: f64,
    /// Latency distribution over the pooled per-shard samples (failovers
    /// measured from their original arrival).
    pub latency: LatencySummary,
    /// Mean host-queue wait over all completions, seconds.
    pub mean_queue_wait_s: f64,
    /// Deepest host queue on any shard.
    pub max_queue_depth: usize,
    /// Cross-shard failover accounting.
    pub failover: ClusterFailover,
    /// Story-cache sections summed over shards, hit rate recomputed.
    pub cache: CacheReport,
    /// Link sections summed; utilization = fleet busy time over
    /// `shards x makespan` (each shard has its own link).
    pub link: LinkReport,
    /// Compute cycles summed over all completions, by pipeline phase.
    pub phase_totals: PhaseCycles,
    /// Completions that exited the output search early (ITH).
    pub speculated: usize,
    /// Sum of per-shard energies, joules.
    pub total_energy_j: f64,
    /// One-time model-upload cost, paid once per shard, seconds.
    pub setup_s: f64,
    /// FNV-1a digest over `(id, answer)` of all completions in id order;
    /// invariant across shard counts — routing never changes an answer.
    pub answers_digest: String,
    /// Fault sections summed (MTTR means re-weighted); `enabled == false`
    /// omits the key, exactly like [`ServeReport`].
    pub fault: FaultReport,
    /// Numeric-health sections summed, histograms merged; key omitted
    /// when disabled.
    pub numeric: NumericHealth,
    /// Batching sections summed, histograms merged element-wise; key
    /// omitted when disabled.
    pub batch: BatchReport,
    /// Hop-pruning sections summed; key omitted when disabled.
    pub prune: HopPruneReport,
    /// Candidate-index sections summed; key omitted when disabled.
    pub index: IndexReport,
    /// Durability sections summed (recovery MTTR re-weighted by kill
    /// counts); key omitted when the write-ahead log is off.
    pub durability: DurabilityReport,
    /// Live-membership summary (epoch timeline, hand-off accounting,
    /// moved-key fraction); key omitted when the plan is empty, so every
    /// pre-membership report stays byte-identical.
    pub membership: MembershipReport,
    /// Each shard's primary-pass report, in shard-index order (replica
    /// passes are folded into the merged sections above).
    pub per_shard: Vec<ServeReport>,
}

impl Serialize for ClusterReport {
    fn to_value(&self) -> serde_json::Value {
        if self.shards == 1 && self.replication == 1 {
            // Inert cluster: the report *is* the single shard's report.
            return self.per_shard[0].to_value();
        }
        let mut pairs: Vec<(String, serde_json::Value)> = vec![
            ("shards".into(), self.shards.to_value()),
            ("replication".into(), self.replication.to_value()),
            ("requests".into(), self.requests.to_value()),
            ("completed".into(), self.completed.to_value()),
            ("rejected".into(), self.rejected.to_value()),
            ("shed".into(), self.shed.to_value()),
            ("accuracy".into(), self.accuracy.to_value()),
            ("makespan_s".into(), self.makespan_s.to_value()),
            ("throughput_rps".into(), self.throughput_rps.to_value()),
            ("latency".into(), self.latency.to_value()),
            (
                "mean_queue_wait_s".into(),
                self.mean_queue_wait_s.to_value(),
            ),
            ("max_queue_depth".into(), self.max_queue_depth.to_value()),
            ("failover".into(), self.failover.to_value()),
            ("cache".into(), self.cache.to_value()),
            ("link".into(), self.link.to_value()),
            ("phase_totals".into(), self.phase_totals.to_value()),
            ("speculated".into(), self.speculated.to_value()),
            ("total_energy_j".into(), self.total_energy_j.to_value()),
            ("setup_s".into(), self.setup_s.to_value()),
            ("answers_digest".into(), self.answers_digest.to_value()),
        ];
        if self.fault.enabled {
            pairs.push(("fault".into(), self.fault.to_value()));
        }
        if self.numeric.enabled {
            pairs.push(("numeric".into(), self.numeric.to_value()));
        }
        if self.batch.enabled {
            pairs.push(("batch".into(), self.batch.to_value()));
        }
        if self.prune.enabled {
            pairs.push(("prune".into(), self.prune.to_value()));
        }
        if self.index.enabled {
            pairs.push(("index".into(), self.index.to_value()));
        }
        if self.durability.enabled {
            pairs.push(("durability".into(), self.durability.to_value()));
        }
        if self.membership.enabled {
            pairs.push(("membership".into(), self.membership.to_value()));
        }
        pairs.push(("per_shard".into(), self.per_shard.to_value()));
        serde_json::Value::Object(pairs)
    }
}

impl ClusterReport {
    /// A copy with every durability section (cluster-level and per-shard)
    /// reset to the disabled default: with the WAL on but no kills, this
    /// must be byte-identical to the same campaign served without a WAL —
    /// the journaling layer may observe a serve, never change it.
    #[must_use]
    pub fn sans_durability(&self) -> Self {
        let mut r = self.clone();
        r.durability = DurabilityReport::default();
        for shard in &mut r.per_shard {
            shard.durability = DurabilityReport::default();
        }
        r
    }

    /// Renders the cluster report as text tables; at K=1/R=1 this is the
    /// single shard's render, byte for byte.
    pub fn render(&self) -> String {
        if self.shards == 1 && self.replication == 1 {
            return self.per_shard[0].render();
        }
        let mut out = String::new();
        let mut t = TextTable::new(vec!["cluster metric".into(), "value".into()]);
        t.row(vec![
            "shards x replication".into(),
            format!("{} x {}", self.shards, self.replication),
        ]);
        t.row(vec!["requests".into(), self.requests.to_string()]);
        t.row(vec!["completed".into(), self.completed.to_string()]);
        t.row(vec!["rejected".into(), self.rejected.to_string()]);
        t.row(vec!["shed".into(), self.shed.to_string()]);
        t.row(vec!["accuracy".into(), percent(self.accuracy)]);
        t.row(vec![
            "makespan".into(),
            format!("{} ms", fnum(self.makespan_s * 1e3, 3)),
        ]);
        t.row(vec![
            "throughput".into(),
            format!("{} req/s", fnum(self.throughput_rps, 1)),
        ]);
        t.row(vec![
            "latency p50/p95/p99 (pooled)".into(),
            format!(
                "{} / {} / {} us",
                fnum(self.latency.p50_s * 1e6, 1),
                fnum(self.latency.p95_s * 1e6, 1),
                fnum(self.latency.p99_s * 1e6, 1)
            ),
        ]);
        t.row(vec![
            "mean queue wait".into(),
            format!("{} us", fnum(self.mean_queue_wait_s * 1e6, 1)),
        ]);
        t.row(vec![
            "cross-shard failovers".into(),
            format!(
                "{} exported, {} completed, {} lost, {} B re-uploaded",
                self.failover.exports,
                self.failover.completed,
                self.failover.lost,
                self.failover.replay_link_bytes
            ),
        ]);
        t.row(vec![
            "fleet link utilization".into(),
            format!(
                "{} ({} grants)",
                percent(self.link.utilization),
                self.link.grants
            ),
        ]);
        t.row(vec![
            "cache hits".into(),
            format!(
                "{} / {} ({})",
                self.cache.hits,
                self.cache.hits + self.cache.misses,
                percent(self.cache.hit_rate)
            ),
        ]);
        t.row(vec![
            "energy".into(),
            format!("{} J", fnum(self.total_energy_j, 3)),
        ]);
        t.row(vec![
            "setup (model uploads)".into(),
            format!("{} ms", fnum(self.setup_s * 1e3, 3)),
        ]);
        t.row(vec!["answers digest".into(), self.answers_digest.clone()]);
        out.push_str(&t.render());
        out.push('\n');
        if self.fault.enabled {
            out.push_str(&self.fault.render());
            out.push('\n');
        }
        if self.numeric.enabled {
            out.push_str(&self.numeric.render());
            out.push('\n');
        }
        if self.batch.enabled {
            out.push_str(&self.batch.render());
            out.push('\n');
        }
        if self.prune.enabled {
            out.push_str(&self.prune.render());
            out.push('\n');
        }
        if self.index.enabled {
            out.push_str(&self.index.render());
            out.push('\n');
        }
        if self.durability.enabled {
            out.push_str(&self.durability.render());
            out.push('\n');
        }
        if self.membership.enabled {
            out.push_str(&self.membership.render());
            out.push('\n');
        }
        let mut st = TextTable::new(vec![
            "shard".into(),
            "requests".into(),
            "completed".into(),
            "rejected".into(),
            "cache hit rate".into(),
            "crashes".into(),
            "failovers".into(),
            "p99 (us)".into(),
            "energy (J)".into(),
        ]);
        for (s, r) in self.per_shard.iter().enumerate() {
            st.row(vec![
                s.to_string(),
                r.requests.to_string(),
                r.completed.to_string(),
                r.rejected.to_string(),
                percent(r.cache.hit_rate),
                r.fault.crashes.to_string(),
                r.fault.failovers.to_string(),
                fnum(r.latency.p99_s * 1e6, 1),
                fnum(r.total_energy_j, 3),
            ]);
        }
        out.push_str(&st.render());
        out
    }
}

/// Everything a cluster serve produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// Every completed request across all shards and failover passes, in
    /// request-id order. `Completion::instance` is shard-local.
    pub completions: Vec<Completion>,
    /// Rejected requests (primary or replica queue full), in id order.
    pub rejections: Vec<Rejection>,
    /// Requests shed by a fault campaign on any shard, in id order.
    pub sheds: Vec<Request>,
    /// Ids of requests re-dispatched cross-shard at least once, ascending
    /// and deduplicated.
    pub failovers: Vec<u64>,
    /// Ids of requests shed because no live replica existed for their key
    /// (every shard of the story's chain down), ascending. These are the
    /// dedicated all-replicas-down counter: they land in `sheds` (so the
    /// cluster partition stays exact) and are never silently dropped.
    pub unroutable: Vec<u64>,
    /// The aggregate report.
    pub report: ClusterReport,
}

/// A sharded cluster over one trained suite.
///
/// Construction is cheap; each [`Cluster::serve`] builds its shard
/// [`Server`]s on the fly (they borrow the suite), runs the primary pass
/// on every shard, then drains the cross-shard failover chain until every
/// request is completed, rejected, or shed.
#[derive(Debug)]
pub struct Cluster<'a> {
    suite: &'a TaskSuite,
    router: ShardRouter,
    config: ClusterConfig,
}

impl<'a> Cluster<'a> {
    /// Builds a cluster over a trained suite.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid ([`ClusterConfig::validate`]).
    pub fn new(suite: &'a TaskSuite, config: ClusterConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid cluster config: {e}"));
        let router = if config.weights.is_empty() {
            ShardRouter::new(config.shards)
        } else {
            ShardRouter::with_weights(config.weights.clone())
        };
        Self {
            suite,
            router,
            config,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The frontend router.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// A request's routing key: story digest mixed with its task index —
    /// the same affinity unit the single-node scheduler uses.
    fn route_key(&self, r: &Request) -> u64 {
        let sample = &self.suite.tasks[r.task_idx].test_set[r.sample_idx];
        story_digest(sample) ^ (r.task_idx as u64).wrapping_mul(TASK_KEY_MIX)
    }

    /// The [`ServeConfig`] shard `shard` runs on failover pass `pass`.
    fn shard_config(&self, shard: usize, pass: usize, export: bool) -> ServeConfig {
        let mut cfg = self.config.base.clone();
        if self.config.shards > 1 {
            if let Some(Some(f)) = self.config.shard_faults.get(shard) {
                cfg.faults = f.clone();
            }
            // Seed-pure per shard and per pass: the plan a shard injects
            // never depends on shard count, iteration order, or what the
            // other shards did.
            cfg.faults.seed =
                shard_fault_seed(cfg.faults.seed, ((pass as u64) << 32) | shard as u64);
        }
        cfg.failover_export = export;
        // A membership fail-stop cuts this shard at T on every pass: it
        // can still be holding re-dispatched work when it dies, and the
        // stranded requests must come back as exports regardless of the
        // pass-level export flag.
        if let Some(t) = self.config.membership.fail_time(shard) {
            cfg.fail_stop = Some(t);
            cfg.failover_export = true;
        }
        cfg
    }

    /// The base weight vector the membership view starts from.
    fn effective_weights(&self) -> Vec<u32> {
        if self.config.weights.is_empty() {
            vec![1; self.config.shards]
        } else {
            self.config.weights.clone()
        }
    }

    /// Routes every request against the live membership view *as of its
    /// arrival* — a drained/failed shard attracts nothing after its exit,
    /// a joining shard attracts nothing before its entry — with hot keys
    /// fanned round-robin (by per-key arrival rank) across their full
    /// live replica chain. Returns the per-shard pass-0 sub-traces, the
    /// requests with no live replica at all, and the hot-split request
    /// count. Pure in `(trace, view, hot)`.
    fn assign_pass0(
        &self,
        trace: &ArrivalTrace,
        keys: &HashMap<u64, u64>,
        view: &MembershipView,
        hot: &[u64],
    ) -> (Vec<Vec<Request>>, Vec<Request>, u64) {
        let mut pending: Vec<Vec<Request>> = vec![Vec::new(); self.config.shards];
        let mut unroutable: Vec<Request> = Vec::new();
        let mut split_requests = 0u64;
        let mut hot_rank: HashMap<u64, usize> = HashMap::new();
        for r in &trace.requests {
            let key = keys[&r.id];
            let chain = view.resolve(key, r.arrival);
            if chain.is_empty() {
                unroutable.push(*r);
                continue;
            }
            let target = if hot.binary_search(&key).is_ok() {
                split_requests += 1;
                let rank = hot_rank.entry(key).or_insert(0);
                let t = chain[*rank % chain.len()];
                *rank += 1;
                t
            } else {
                chain[0]
            };
            pending[target].push(*r);
        }
        (pending, unroutable, split_requests)
    }

    /// Serves a trace across the cluster.
    pub fn serve(&self, trace: &ArrivalTrace) -> ClusterOutcome {
        let order: Vec<usize> = (0..self.config.shards).collect();
        self.serve_in_order(trace, &order)
    }

    /// Serves with an explicit shard-iteration order. The outcome must be
    /// identical for every permutation — shards share no state and the
    /// aggregation folds in canonical `(pass, shard)` order — which the
    /// determinism tests assert byte-for-byte. [`Cluster::serve`] uses the
    /// identity order.
    ///
    /// # Panics
    ///
    /// Panics when `order` is not a permutation of `0..shards`.
    pub fn serve_in_order(&self, trace: &ArrivalTrace, order: &[usize]) -> ClusterOutcome {
        never(self.serve_in_order_with(trace, order, |_, _, server, sub| {
            Ok::<_, Infallible>(server.serve(sub))
        }))
    }

    /// The generic pass loop under [`Cluster::serve_in_order`]: `run`
    /// serves each `(pass, shard)` sub-trace, so the plain path (pure,
    /// infallible) and the durable path (journaling, fallible) share one
    /// routing/failover/aggregation skeleton and cannot drift apart.
    pub(crate) fn serve_in_order_with<E>(
        &self,
        trace: &ArrivalTrace,
        order: &[usize],
        mut run: impl FnMut(usize, usize, &Server<'_>, &ArrivalTrace) -> Result<ServeOutcome, E>,
    ) -> Result<ClusterOutcome, E> {
        let k = self.config.shards;
        {
            let mut sorted = order.to_vec();
            sorted.sort_unstable();
            assert!(
                sorted == (0..k).collect::<Vec<_>>(),
                "order must be a permutation of 0..{k}"
            );
        }
        let replicas = self.config.replication;
        let plan = &self.config.membership;

        // Every request's routing key and original arrival, keyed by id.
        let keys: HashMap<u64, u64> = trace
            .requests
            .iter()
            .map(|r| (r.id, self.route_key(r)))
            .collect();
        let arrival_of: HashMap<u64, SimTime> =
            trace.requests.iter().map(|r| (r.id, r.arrival)).collect();

        // The live membership view: with an empty plan every shard is
        // alive forever on the base weights, and resolving a key at any
        // instant equals the frozen `ShardRouter::route` — the whole
        // membership layer reduces to the pre-membership routing, byte
        // for byte (pinned by the golden suite).
        let mut view = MembershipView::new(plan, self.effective_weights(), replicas);
        let hot = plan.hot_keys(trace.requests.iter().map(|r| keys[&r.id]));

        // Weight re-tuning: probe-serve each shard's provisional pass-0
        // sub-trace (a *pure* serve, never the caller's `run` hook, so
        // the durable path journals nothing twice), find the first
        // instant its host-queue depth crosses the threshold, and divide
        // the crossing shard's weight from that instant on. The probe
        // runs on the pre-retune assignment, so the re-tune instants are
        // a pure function of `(plan, trace, config)` — no fixed-point
        // iteration, no event-loop feedback.
        let mut retunes: Vec<(SimTime, usize)> = Vec::new();
        if plan.retune_threshold > 0.0 {
            let (provisional, _, _) = self.assign_pass0(trace, &keys, &view, &hot);
            let limit = ((plan.retune_threshold * self.config.base.queue_capacity as f64).ceil()
                as i64)
                .max(1);
            for (shard, reqs) in provisional.into_iter().enumerate() {
                if reqs.is_empty() {
                    continue;
                }
                let server = Server::new(self.suite, self.shard_config(shard, 0, replicas > 1));
                let sub = ArrivalTrace {
                    requests: reqs,
                    config: trace.config.clone(),
                };
                let probe = server.serve(&sub);
                // Occupancy deltas: +1 at enqueue, -1 at dispatch; a
                // rejection means the queue sat at full capacity, which
                // is >= any valid threshold.
                let mut deltas: Vec<(SimTime, i32)> = Vec::new();
                for c in &probe.completions {
                    deltas.push((c.timestamps.enqueue, 1));
                    deltas.push((c.timestamps.dispatch, -1));
                }
                let mut crossing = crate::scheduler::first_depth_crossing(deltas, limit);
                if let Some(rej) = probe.rejections.iter().map(|r| r.request.arrival).min() {
                    crossing = Some(crossing.map_or(rej, |c| c.min(rej)));
                }
                if let Some(t) = crossing {
                    retunes.push((t, shard));
                }
            }
            view.apply_retunes(&retunes, plan.retune_factor);
        }

        // Pass 0: sub-traces routed against the live view at each
        // request's arrival, arrival order preserved.
        let (mut pending, mut unroutable, split_requests) =
            self.assign_pass0(trace, &keys, &view, &hot);

        // Outcomes keyed by (pass, shard); folded in that canonical order
        // below, so the caller's `order` can never leak into the report.
        let mut passes: Vec<(usize, usize, ServeOutcome)> = Vec::new();
        let mut stranded_exports = 0u64;
        let mut pass = 0usize;
        while pending.iter().any(|p| !p.is_empty()) || pass == 0 {
            let mut next_pending: Vec<Vec<Request>> = vec![Vec::new(); k];
            // The last link of every replica chain resolves locally (the
            // stock watchdog re-queue), so the chain always terminates.
            let export = pass + 1 < replicas;
            for &shard in order {
                let mut reqs = std::mem::take(&mut pending[shard]);
                if reqs.is_empty() && pass > 0 {
                    continue;
                }
                // Canonical replay order: exports were collected in the
                // caller's shard order, which must not be observable.
                reqs.sort_by_key(|r| (r.arrival, r.id));
                let server = Server::new(self.suite, self.shard_config(shard, pass, export));
                let sub = ArrivalTrace {
                    requests: reqs,
                    config: trace.config.clone(),
                };
                let out = run(pass, shard, &server, &sub)?;
                if plan.fail_time(shard).is_some() {
                    stranded_exports += out.exports.len() as u64;
                }
                for ex in &out.exports {
                    // Re-dispatch against the live view *at the handoff
                    // instant*, skipping the exporting shard: the
                    // request arrives at its `pass`-th surviving
                    // candidate and pays its story upload like any other
                    // arrival. With an empty plan the exporter at pass p
                    // is the chain's p-th entry, so the p-th survivor is
                    // exactly the old frozen-chain `routes[id][p + 1]` —
                    // byte-identity preserved. A request with no
                    // surviving candidate is shed as unroutable, never
                    // dropped or panicked on.
                    let cands: Vec<usize> = view
                        .resolve(keys[&ex.request.id], ex.at)
                        .into_iter()
                        .filter(|&s| s != shard)
                        .collect();
                    match cands.get(pass) {
                        Some(&target) => next_pending[target].push(Request {
                            arrival: ex.at,
                            ..ex.request
                        }),
                        None => unroutable.push(ex.request),
                    }
                }
                passes.push((pass, shard, out));
            }
            pending = next_pending;
            pass += 1;
        }
        passes.sort_by_key(|&(p, s, _)| (p, s));

        let membership = self.membership_report(
            &keys,
            &view,
            &retunes,
            &hot,
            split_requests,
            stranded_exports,
            unroutable.len() as u64,
            &passes,
        );
        Ok(self.aggregate(trace, &keys, &arrival_of, passes, membership, unroutable))
    }

    /// Builds the [`MembershipReport`] for a non-empty plan: lifecycle
    /// counters, drain hand-off accounting through the link model, and
    /// the moved-key epoch timeline measured on the live router. An empty
    /// plan returns the disabled default (key omitted from JSON).
    #[allow(clippy::too_many_arguments)]
    fn membership_report(
        &self,
        keys: &HashMap<u64, u64>,
        view: &MembershipView,
        retunes: &[(SimTime, usize)],
        hot: &[u64],
        split_requests: u64,
        stranded_exports: u64,
        unroutable_shed: u64,
        passes: &[(usize, usize, ServeOutcome)],
    ) -> MembershipReport {
        let plan = &self.config.membership;
        if plan.is_empty() {
            return MembershipReport::default();
        }
        let base = &self.config.base;
        let mut m = MembershipReport {
            enabled: true,
            drains: plan
                .events
                .iter()
                .filter(|e| e.kind == MembershipEventKind::Drain)
                .count() as u64,
            failures: plan
                .events
                .iter()
                .filter(|e| e.kind == MembershipEventKind::Fail)
                .count() as u64,
            joins: plan
                .events
                .iter()
                .filter(|e| e.kind == MembershipEventKind::Join)
                .count() as u64,
            retunes: retunes.len() as u64,
            hot_keys: hot.len() as u64,
            split_requests,
            stranded_exports,
            unroutable_shed,
            ..MembershipReport::default()
        };

        // Drain hand-off: the stories resident on a draining shard when
        // it exits — its most recently drained distinct stories, up to
        // its fleet cache capacity — are re-uploaded to their next live
        // replica through the link model, at idle-board link energy (the
        // same precedent as fault-retry link time). The hand-off is a
        // background copy: it costs bytes/cycles/energy but never blocks
        // the destination's serve timeline.
        let cache_slots = base.instances * base.story_cache;
        for e in plan
            .events
            .iter()
            .filter(|e| e.kind == MembershipEventKind::Drain)
        {
            let Some((_, _, out)) = passes.iter().find(|&&(p, s, _)| p == 0 && s == e.shard) else {
                continue;
            };
            // Last drain instant per distinct story, with a
            // representative request for sizing the re-upload.
            let mut last_drained: HashMap<u64, (SimTime, Request)> = HashMap::new();
            for c in &out.completions {
                let key = keys[&c.request.id];
                let entry = last_drained
                    .entry(key)
                    .or_insert((c.timestamps.drain_end, c.request));
                if c.timestamps.drain_end > entry.0 {
                    *entry = (c.timestamps.drain_end, c.request);
                }
            }
            let mut resident: Vec<(u64, SimTime, Request)> = last_drained
                .into_iter()
                .map(|(k, (t, r))| (k, t, r))
                .collect();
            // Most recently used first (the LRU survivors), key ascending
            // on ties so the hand-off set is deterministic.
            resident.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            resident.truncate(cache_slots);
            for (key, _, r) in resident {
                if view.resolve(key, e.at()).is_empty() {
                    continue; // nowhere live to hand the story to
                }
                let sample = &self.suite.tasks[r.task_idx].test_set[r.sample_idx];
                let bytes = PcieLink::input_bytes(Accelerator::input_words(sample));
                let s = base.pcie.transfer_time_s(bytes);
                m.stories_moved += 1;
                m.handoff_bytes += bytes;
                m.handoff_s += s;
                m.handoff_cycles += (s * base.clock.freq_hz()).round() as u64;
                m.handoff_energy_j += base.power.retry_energy_j(base.clock.freq_mhz(), s);
            }
        }

        // Moved-key timeline: at every membership boundary (lifecycle
        // event or weight re-tune), count the distinct trace keys whose
        // live primary differs across the instant — measured on the real
        // router, the same measurement the moved-key-bound proptest
        // makes. The per-leave mean fraction is the live form of the
        // rendezvous bound: each removal relocates <= 1/K + eps of keys.
        let mut tracked: Vec<u64> = keys.values().copied().collect();
        tracked.sort_unstable();
        tracked.dedup();
        m.tracked_keys = tracked.len() as u64;
        let mut boundaries: Vec<(SimTime, String, usize, bool)> = plan
            .events
            .iter()
            .map(|e| (e.at(), e.kind.to_string(), e.shard, e.kind.is_leave()))
            .chain(
                retunes
                    .iter()
                    .map(|&(t, s)| (t, "retune".to_owned(), s, false)),
            )
            .collect();
        boundaries.sort_by_key(|b| (b.0, b.2));
        let mut leave_moved = 0u64;
        let mut leaves = 0u64;
        for (at, kind, shard, is_leave) in boundaries {
            let before = SimTime::from_ps(at.ps() - 1);
            let moved = tracked
                .iter()
                .filter(|&&key| view.primary(key, before) != view.primary(key, at))
                .count() as u64;
            m.moved_keys += moved;
            if is_leave {
                leave_moved += moved;
                leaves += 1;
            }
            m.timeline.push(MembershipEpoch {
                at_s: at.as_s(),
                kind,
                shard,
                moved_keys: moved,
            });
        }
        m.epochs = 1 + m.timeline.len();
        m.moved_key_fraction = if leaves > 0 && !tracked.is_empty() {
            leave_moved as f64 / (tracked.len() as f64 * leaves as f64)
        } else {
            0.0
        };
        m
    }

    /// Folds per-pass outcomes (already in canonical `(pass, shard)`
    /// order) into the cluster outcome.
    #[allow(clippy::too_many_lines)]
    fn aggregate(
        &self,
        trace: &ArrivalTrace,
        keys: &HashMap<u64, u64>,
        arrival_of: &HashMap<u64, SimTime>,
        passes: Vec<(usize, usize, ServeOutcome)>,
        membership: MembershipReport,
        unroutable: Vec<Request>,
    ) -> ClusterOutcome {
        let k = self.config.shards;
        let base = &self.config.base;

        // ----- pool the request-level results ---------------------------
        let mut completions: Vec<Completion> = Vec::new();
        let mut rejections: Vec<Rejection> = Vec::new();
        // Unroutable requests (no live replica) are shed — counted in the
        // cluster partition like every other shed, plus their own counter
        // in the membership section and `ClusterOutcome::unroutable`.
        let mut unroutable_ids: Vec<u64> = unroutable.iter().map(|r| r.id).collect();
        unroutable_ids.sort_unstable();
        let mut sheds: Vec<Request> = unroutable;
        let mut failover_ids: Vec<u64> = Vec::new();
        let mut failover = ClusterFailover::default();
        let mut replay_completed: u64 = 0;
        let mut replay_latency_sum = 0.0;
        for &(pass, _, ref out) in &passes {
            completions.extend(out.completions.iter().cloned());
            rejections.extend(out.rejections.iter().copied());
            sheds.extend(out.sheds.iter().copied());
            failover.exports += out.exports.len() as u64;
            failover_ids.extend(out.exports.iter().map(|e| e.request.id));
            if pass > 0 {
                replay_completed += out.completions.len() as u64;
                failover.lost += (out.rejections.len() + out.sheds.len()) as u64;
                failover.replay_link_bytes += out.report.link.bytes;
                replay_latency_sum += out
                    .completions
                    .iter()
                    .map(|c| {
                        c.timestamps
                            .drain_end
                            .saturating_sub(arrival_of[&c.request.id])
                            .as_s()
                    })
                    .sum::<f64>();
            }
        }
        failover.completed = replay_completed;
        failover.mean_failover_latency_s = if replay_completed > 0 {
            replay_latency_sum / replay_completed as f64
        } else {
            0.0
        };
        completions.sort_by_key(|c| c.request.id);
        rejections.sort_by_key(|r| r.request.id);
        sheds.sort_by_key(|r| r.id);
        failover_ids.sort_unstable();
        failover_ids.dedup();

        // End-to-end latencies from the *original* arrival (a failover's
        // replay enqueue is its handoff time, not its arrival), pooled
        // across shards and ranked once — never averaged per shard.
        let latencies: Vec<f64> = completions
            .iter()
            .map(|c| {
                c.timestamps
                    .drain_end
                    .saturating_sub(arrival_of[&c.request.id])
                    .as_s()
            })
            .collect();
        let mean_queue_wait_s = if completions.is_empty() {
            0.0
        } else {
            completions
                .iter()
                .map(|c| c.timestamps.queue_wait().as_s())
                .sum::<f64>()
                / completions.len() as f64
        };
        let correct = completions.iter().filter(|c| c.correct).count();

        // ----- merge the report sections --------------------------------
        let makespan_s = passes
            .iter()
            .map(|(_, _, o)| o.report.makespan_s)
            .fold(0.0f64, f64::max);
        let mut cache = CacheReport {
            capacity: base.story_cache,
            ..CacheReport::default()
        };
        let mut link = LinkReport::default();
        let mut fault = FaultReport::default();
        let mut numeric = NumericHealth::default();
        let mut batch = BatchReport {
            enabled: base.batch_window > 1,
            window: base.batch_window,
            ..BatchReport::default()
        };
        let mut prune = HopPruneReport {
            enabled: base.hop_prune.enabled,
            threshold: base.hop_prune.threshold,
            ..HopPruneReport::default()
        };
        let mut durability = DurabilityReport::default();
        // MTTR means re-weight by kill count, like the fault MTTRs below.
        let mut mttr_kill = 0.0f64;
        // Like the single-node report, a disabled section stays the
        // default rather than echoing config.
        let mut index = IndexReport::default();
        if base.mem_index.enabled {
            index.enabled = true;
            index.k = base.mem_index.k;
            index.nprobe = base.mem_index.nprobe;
            index.band = base.mem_index.band;
        }
        let mut phase_totals = PhaseCycles::default();
        let mut speculated = 0usize;
        let mut total_energy_j = 0.0;
        let mut max_queue_depth = 0usize;
        // MTTR means are re-weighted by their event counts so the merged
        // figure is the fleet mean, not a mean of shard means.
        let (mut mttr_l, mut mttr_i, mut mttr_s) = (0.0f64, 0.0f64, 0.0f64);
        for (_, _, out) in &passes {
            let r = &out.report;
            cache.unique_stories += r.cache.unique_stories;
            cache.hits += r.cache.hits;
            cache.misses += r.cache.misses;
            cache.evictions += r.cache.evictions;
            cache.write_cycles_saved += r.cache.write_cycles_saved;
            cache.upload_bytes_saved += r.cache.upload_bytes_saved;
            cache.write_energy_saved_j += r.cache.write_energy_saved_j;
            link.grants += r.link.grants;
            link.bytes += r.link.bytes;
            link.busy_s += r.link.busy_s;
            phase_totals += r.phase_totals;
            speculated += r.speculated;
            total_energy_j += r.total_energy_j;
            max_queue_depth = max_queue_depth.max(r.max_queue_depth);
            if r.fault.enabled {
                fault.enabled = true;
                fault.link_corruptions += r.fault.link_corruptions;
                fault.retransmits += r.fault.retransmits;
                fault.retry_exhausted += r.fault.retry_exhausted;
                fault.retry_link_s += r.fault.retry_link_s;
                fault.retry_energy_j += r.fault.retry_energy_j;
                fault.crashes += r.fault.crashes;
                fault.watchdog_fires += r.fault.watchdog_fires;
                fault.failovers += r.fault.failovers;
                fault.shed_link += r.fault.shed_link;
                fault.shed_overload += r.fault.shed_overload;
                fault.degraded += r.fault.degraded;
                fault.seu_events += r.fault.seu_events;
                fault.scrubs += r.fault.scrubs;
                fault.scrub_cycles += r.fault.scrub_cycles;
                fault.scrub_energy_j += r.fault.scrub_energy_j;
                mttr_l += r.fault.mttr_link_s * r.fault.retransmits as f64;
                mttr_i += r.fault.mttr_instance_s * r.fault.failovers as f64;
                mttr_s += r.fault.mttr_seu_s * r.fault.scrubs as f64;
            }
            if r.numeric.enabled {
                numeric.enabled = true;
                numeric.policy.clone_from(&r.numeric.policy);
                numeric.flagged += r.numeric.flagged;
                numeric.vetoed += r.numeric.vetoed;
                numeric.failed_over += r.numeric.failed_over;
                numeric.failover_cycles += r.numeric.failover_cycles;
                numeric.failover_energy_j += r.numeric.failover_energy_j;
                numeric.histogram.merge(&r.numeric.histogram);
            }
            if r.batch.enabled {
                batch.groups += r.batch.groups;
                batch.fused_groups += r.batch.fused_groups;
                batch.batched_requests += r.batch.batched_requests;
                if batch.size_histogram.len() < r.batch.size_histogram.len() {
                    batch.size_histogram.resize(r.batch.size_histogram.len(), 0);
                }
                for (acc, &v) in batch.size_histogram.iter_mut().zip(&r.batch.size_histogram) {
                    *acc += v;
                }
                batch.cycles_saved += r.batch.cycles_saved;
                batch.energy_saved_j += r.batch.energy_saved_j;
            }
            if r.prune.enabled {
                prune.pruned_completions += r.prune.pruned_completions;
                prune.hops_executed += r.prune.hops_executed;
                prune.hops_saved += r.prune.hops_saved;
                prune.vetoes += r.prune.vetoes;
                prune.cycles_saved += r.prune.cycles_saved;
                prune.energy_saved_j += r.prune.energy_saved_j;
            }
            if r.index.enabled {
                index.scanned_slots += r.index.scanned_slots;
                index.skipped_slots += r.index.skipped_slots;
                index.fallbacks += r.index.fallbacks;
                index.build_cycles += r.index.build_cycles;
                index.cycles_saved += r.index.cycles_saved;
                index.energy_saved_j += r.index.energy_saved_j;
            }
            if r.durability.enabled {
                let d = &r.durability;
                durability.enabled = true;
                durability.records += d.records;
                durability.story_records += d.story_records;
                durability.completion_records += d.completion_records;
                durability.evict_records += d.evict_records;
                durability.wal_bytes += d.wal_bytes;
                durability.segments += d.segments;
                durability.fsyncs += d.fsyncs;
                durability.fsync_s += d.fsync_s;
                durability.snapshots += d.snapshots;
                durability.snapshot_bytes += d.snapshot_bytes;
                durability.gc_segments += d.gc_segments;
                durability.gc_snapshots += d.gc_snapshots;
                durability.gc_bytes += d.gc_bytes;
                durability.gc_stories += d.gc_stories;
                durability.node_kills += d.node_kills;
                durability.torn_tails += d.torn_tails;
                durability.dropped_bytes += d.dropped_bytes;
                durability.replayed_records += d.replayed_records;
                durability.recovered_completions += d.recovered_completions;
                durability.redispatched += d.redispatched;
                mttr_kill += d.recovery_mttr_s * d.node_kills as f64;
            }
        }
        cache.hit_rate = if cache.hits + cache.misses > 0 {
            cache.hits as f64 / (cache.hits + cache.misses) as f64
        } else {
            0.0
        };
        link.utilization = if makespan_s > 0.0 {
            (link.busy_s / (k as f64 * makespan_s)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        if fault.enabled {
            fault.plan_seed = base.faults.seed;
            let mean = |sum: f64, n: u64| if n > 0 { sum / n as f64 } else { 0.0 };
            fault.mttr_link_s = mean(mttr_l, fault.retransmits);
            fault.mttr_instance_s = mean(mttr_i, fault.failovers);
            fault.mttr_seu_s = mean(mttr_s, fault.scrubs);
        }
        if durability.node_kills > 0 {
            durability.recovery_mttr_s = mttr_kill / durability.node_kills as f64;
        }

        // Per-shard breakdown = each shard's primary pass; setup (model
        // upload) is paid once per shard — replica passes reuse the loaded
        // shard and add none.
        let per_shard: Vec<ServeReport> = passes
            .iter()
            .filter(|&&(p, _, _)| p == 0)
            .map(|(_, _, o)| o.report.clone())
            .collect();
        debug_assert_eq!(per_shard.len(), k);
        let setup_s: f64 = per_shard.iter().map(|r| r.setup_s).sum();

        debug_assert!(
            {
                let mut seen: Vec<u64> = completions
                    .iter()
                    .map(|c| c.request.id)
                    .chain(rejections.iter().map(|r| r.request.id))
                    .chain(sheds.iter().map(|r| r.id))
                    .collect();
                seen.sort_unstable();
                let mut all: Vec<u64> = keys.keys().copied().collect();
                all.sort_unstable();
                seen == all
            },
            "completions + rejections + sheds must partition the trace"
        );

        let report = ClusterReport {
            shards: k,
            replication: self.config.replication,
            requests: trace.requests.len(),
            completed: completions.len(),
            rejected: rejections.len(),
            shed: sheds.len(),
            accuracy: if completions.is_empty() {
                0.0
            } else {
                correct as f64 / completions.len() as f64
            },
            makespan_s,
            throughput_rps: if makespan_s > 0.0 {
                completions.len() as f64 / makespan_s
            } else {
                0.0
            },
            latency: LatencySummary::from_latencies(&latencies),
            mean_queue_wait_s,
            max_queue_depth,
            failover,
            cache,
            link,
            phase_totals,
            speculated,
            total_energy_j,
            setup_s,
            answers_digest: answers_digest(
                completions.iter().map(|c| (c.request.id, c.run.answer)),
            ),
            fault,
            numeric,
            batch,
            prune,
            index,
            durability,
            membership,
            per_shard,
        };
        ClusterOutcome {
            completions,
            rejections,
            sheds,
            failovers: failover_ids,
            unroutable: unroutable_ids,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_deterministic_and_distinct() {
        let router = ShardRouter::new(5);
        for key in [0u64, 1, 42, u64::MAX] {
            let chain = router.route(key, 3);
            assert_eq!(chain, router.route(key, 3));
            assert_eq!(chain.len(), 3);
            let mut uniq = chain.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "duplicate shard in chain {chain:?}");
            assert_eq!(router.primary(key), chain[0]);
        }
    }

    #[test]
    fn chains_are_prefix_consistent() {
        // The R-replica chain is the first R entries of the full ranking,
        // so growing R never reshuffles existing replicas.
        let router = ShardRouter::new(6);
        for key in 0..64u64 {
            let full = router.route(key, 6);
            for r in 1..=6 {
                assert_eq!(router.route(key, r), full[..r]);
            }
        }
    }

    #[test]
    fn weighted_shards_attract_more_keys() {
        let router = ShardRouter::with_weights(vec![4, 1, 1]);
        let mut counts = [0usize; 3];
        for key in 0..6000u64 {
            counts[router.primary(key.wrapping_mul(0x2545_f491_4f6c_dd1d))] += 1;
        }
        assert!(
            counts[0] > counts[1] * 2 && counts[0] > counts[2] * 2,
            "weight-4 shard should dominate: {counts:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_router_rejected() {
        let _ = ShardRouter::with_weights(Vec::new());
    }

    #[test]
    #[should_panic(expected = "cannot pick")]
    fn over_replication_rejected() {
        let _ = ShardRouter::new(2).route(1, 3);
    }

    #[test]
    fn route_live_with_no_live_shards_is_empty() {
        // The all-replicas-down edge: an empty chain, never a panic. The
        // serve path turns this into an unroutable shed with its own
        // counter rather than dropping the request on the floor.
        let router = ShardRouter::new(3);
        assert!(router.route_live(42, 2, |_| false).is_empty());
        assert!(router.route_live(42, 3, |_| false).is_empty());
        // A partial outage degrades the chain instead of panicking too.
        assert_eq!(router.route_live(42, 3, |s| s == 1), vec![1]);
    }

    #[test]
    fn config_validation_catches_bad_shapes() {
        let ok = ClusterConfig {
            shards: 4,
            replication: 2,
            ..ClusterConfig::default()
        };
        assert!(ok.validate().is_ok());
        let bad_repl = ClusterConfig {
            shards: 2,
            replication: 3,
            ..ClusterConfig::default()
        };
        assert!(bad_repl.validate().is_err());
        let bad_weights = ClusterConfig {
            shards: 3,
            replication: 1,
            weights: vec![1, 2],
            ..ClusterConfig::default()
        };
        assert!(bad_weights.validate().is_err());
        let zero_weight = ClusterConfig {
            shards: 3,
            replication: 1,
            weights: vec![1, 0, 2],
            ..ClusterConfig::default()
        };
        assert!(
            zero_weight.validate().is_err(),
            "a zero weight must be a hard error, not a clamp"
        );
        let oversize_weight = ClusterConfig {
            shards: 2,
            replication: 1,
            weights: vec![1, MAX_WEIGHT],
            ..ClusterConfig::default()
        };
        assert!(oversize_weight.validate().is_err());
        let plan_out_of_range = ClusterConfig {
            shards: 2,
            replication: 2,
            membership: MembershipPlan::parse_spec("fail=5@1000").expect("parseable"),
            ..ClusterConfig::default()
        };
        assert!(
            plan_out_of_range.validate().is_err(),
            "membership events must reference shards < K"
        );
        let bad_overrides = ClusterConfig {
            shards: 3,
            replication: 1,
            shard_faults: vec![None],
            ..ClusterConfig::default()
        };
        assert!(bad_overrides.validate().is_err());
        let zero = ClusterConfig {
            shards: 0,
            ..ClusterConfig::default()
        };
        assert!(zero.validate().is_err());
    }
}
