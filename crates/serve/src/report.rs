//! The `ServeReport`: everything measured about one served trace, in
//! simulated time, exportable as JSON.

use mann_core::report::{fnum, percent, percentile, TextTable};
use mann_hw::PhaseCycles;
use serde::{Deserialize, Serialize};

use crate::faults::FaultReport;
use crate::numeric::NumericHealth;
use crate::store::DurabilityReport;

/// Latency summary over completed requests (simulated seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Mean end-to-end latency.
    pub mean_s: f64,
    /// Nearest-rank 50th percentile.
    pub p50_s: f64,
    /// Nearest-rank 95th percentile.
    pub p95_s: f64,
    /// Nearest-rank 99th percentile.
    pub p99_s: f64,
    /// Worst-case latency.
    pub max_s: f64,
}

impl LatencySummary {
    /// Summarizes a set of latencies (need not be sorted).
    pub fn from_latencies(latencies: &[f64]) -> Self {
        if latencies.is_empty() {
            return Self::default();
        }
        // `total_cmp` instead of `partial_cmp(..).expect(..)`: a NaN
        // latency (impossible today, but this is the report path of last
        // resort) sorts to the end instead of panicking mid-report, and
        // the hardened `percentile` below reads the same sorted view.
        let mut sorted = latencies.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Self {
            mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_s: percentile(&sorted, 50.0),
            p95_s: percentile(&sorted, 95.0),
            p99_s: percentile(&sorted, 99.0),
            max_s: sorted.last().copied().unwrap_or_default(),
        }
    }

    /// Summarizes the union of several shards' raw latency samples — the
    /// only sound way to merge shard summaries into a fleet summary.
    /// Percentiles are not linear: averaging per-shard p99s misstates the
    /// fleet tail whenever load is skewed (a cold shard's cheap p99 dilutes
    /// a hot shard's expensive one), so cluster aggregation must pool the
    /// samples and rank once.
    pub fn from_pooled<'a>(groups: impl IntoIterator<Item = &'a [f64]>) -> Self {
        let pooled: Vec<f64> = groups.into_iter().flatten().copied().collect();
        Self::from_latencies(&pooled)
    }
}

/// Per-instance utilization and energy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceReport {
    /// Instance index.
    pub instance: usize,
    /// Requests completed on this instance.
    pub completed: u64,
    /// Requests served from this instance's resident-story cache.
    pub cache_hits: u64,
    /// Total fabric compute time, seconds.
    pub busy_s: f64,
    /// `busy_s / makespan` — fraction of the served interval spent
    /// computing.
    pub occupancy: f64,
    /// Board energy over the served interval at this occupancy (from the
    /// calibrated [`mann_hw::PowerModel`]).
    pub energy_j: f64,
}

/// Aggregate story-cache effectiveness across every instance.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CacheReport {
    /// Resident stories each instance can hold (`MANN_STORY_CACHE`;
    /// 0 = caching off).
    pub capacity: usize,
    /// Distinct `(task, story)` pairs in the trace.
    pub unique_stories: usize,
    /// Dispatches that found the story resident on the chosen instance.
    pub hits: u64,
    /// Dispatches that had to upload and write the story.
    pub misses: u64,
    /// Resident stories displaced by capacity pressure.
    pub evictions: u64,
    /// `hits / (hits + misses)`, zero when nothing was dispatched.
    pub hit_rate: f64,
    /// CONTROL + INPUT & WRITE cycles the hits did not re-run.
    pub write_cycles_saved: u64,
    /// Story-payload bytes the hits kept off the shared link.
    pub upload_bytes_saved: u64,
    /// Activity-dependent fabric energy of the skipped write phases,
    /// joules (static/clock power is drawn regardless).
    pub write_energy_saved_j: f64,
}

/// Shared-story compute batching effectiveness: queries queued behind the
/// same resident story drained into one fused compute group, sharing the
/// per-hop story stream and the OUTPUT weight stream.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BatchReport {
    /// Whether batching was on (`batch_window > 1`); the `batch` key is
    /// absent from JSON when off, keeping seed reports byte-identical.
    pub enabled: bool,
    /// Configured window: max queries fused into one compute group.
    pub window: usize,
    /// Compute groups started (any size; a group of one is a plain
    /// un-fused compute).
    pub groups: u64,
    /// Groups that actually fused two or more queries.
    pub fused_groups: u64,
    /// Requests that computed inside a fused group.
    pub batched_requests: u64,
    /// Group-size histogram: entry `k` counts groups of size `k + 1`.
    pub size_histogram: Vec<u64>,
    /// Story/OUTPUT stream cycles the fused groups shared instead of
    /// re-spending.
    pub cycles_saved: u64,
    /// Activity-dependent fabric energy of those cycles, joules.
    pub energy_saved_j: f64,
}

impl BatchReport {
    /// Renders the batching section as a text table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["batch metric".into(), "value".into()]);
        t.row(vec!["window".into(), self.window.to_string()]);
        t.row(vec![
            "groups (fused)".into(),
            format!("{} ({})", self.groups, self.fused_groups),
        ]);
        t.row(vec![
            "batched requests".into(),
            self.batched_requests.to_string(),
        ]);
        let hist = self
            .size_histogram
            .iter()
            .enumerate()
            .map(|(k, n)| format!("{}x{n}", k + 1))
            .collect::<Vec<_>>()
            .join(" ");
        t.row(vec![
            "size histogram".into(),
            if hist.is_empty() { "-".into() } else { hist },
        ]);
        t.row(vec![
            "stream cycles saved".into(),
            format!("{} ({} J)", self.cycles_saved, fnum(self.energy_saved_j, 3)),
        ]);
        t.render()
    }
}

/// Adaptive hop-pruning effectiveness over the completed requests.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HopPruneReport {
    /// Whether pruning was on; the `prune` key is absent from JSON when
    /// off, keeping seed reports byte-identical.
    pub enabled: bool,
    /// Convergence threshold on the maximum attention weight.
    pub threshold: f32,
    /// Completions that exited the hop schedule early.
    pub pruned_completions: u64,
    /// MEM/READ hops executed, summed over completions.
    pub hops_executed: u64,
    /// Hops skipped, summed over completions.
    pub hops_saved: u64,
    /// Prunes vetoed by the winning weight's saturation flag.
    pub vetoes: u64,
    /// Addressing + read + controller cycles the skipped hops never spent.
    pub cycles_saved: u64,
    /// Activity-dependent fabric energy of those cycles, joules.
    pub energy_saved_j: f64,
}

impl HopPruneReport {
    /// Renders the pruning section as a text table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["prune metric".into(), "value".into()]);
        t.row(vec!["threshold".into(), self.threshold.to_string()]);
        t.row(vec![
            "pruned completions".into(),
            self.pruned_completions.to_string(),
        ]);
        t.row(vec![
            "hops executed / saved".into(),
            format!("{} / {}", self.hops_executed, self.hops_saved),
        ]);
        t.row(vec!["saturation vetoes".into(), self.vetoes.to_string()]);
        t.row(vec![
            "hop cycles saved".into(),
            format!("{} ({} J)", self.cycles_saved, fnum(self.energy_saved_j, 3)),
        ]);
        t.render()
    }
}

/// Candidate-index effectiveness over the completed requests: how many
/// memory slots the IVF index let the MEM module skip, and what the
/// probe/fallback machinery cost.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IndexReport {
    /// Whether the index was armed; the `index` key is absent from JSON
    /// when off, keeping seed reports byte-identical.
    pub enabled: bool,
    /// Configured centroid count (clamped to the story length at build).
    pub k: usize,
    /// Centroid lists probed per hop.
    pub nprobe: usize,
    /// Fallback margin: a hop rescans exactly when the best candidate
    /// score is within `band` of the worst retained one.
    pub band: f32,
    /// Memory slots exact-scored inside candidate lists (fallback hops
    /// count the full story length).
    pub scanned_slots: u64,
    /// Memory slots the index let the addressing pass skip.
    pub skipped_slots: u64,
    /// Hops that fell back to a full exact scan.
    pub fallbacks: u64,
    /// Centroid-construction cycles charged to the story-upload phase.
    pub build_cycles: u64,
    /// Addressing cycles the surviving candidate scans avoided versus the
    /// exact pass, net of probe overhead.
    pub cycles_saved: u64,
    /// Activity-dependent fabric energy of those cycles, joules.
    pub energy_saved_j: f64,
}

impl IndexReport {
    /// Renders the index section as a text table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["index metric".into(), "value".into()]);
        t.row(vec![
            "config (k,nprobe,band)".into(),
            format!("{},{},{}", self.k, self.nprobe, self.band),
        ]);
        t.row(vec![
            "slots scanned / skipped".into(),
            format!("{} / {}", self.scanned_slots, self.skipped_slots),
        ]);
        t.row(vec!["fallback scans".into(), self.fallbacks.to_string()]);
        t.row(vec!["build cycles".into(), self.build_cycles.to_string()]);
        t.row(vec![
            "addressing cycles saved".into(),
            format!("{} ({} J)", self.cycles_saved, fnum(self.energy_saved_j, 3)),
        ]);
        t.render()
    }
}

/// Shared host-link utilization.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkReport {
    /// DMA grants issued (uploads + drains).
    pub grants: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Time the link spent transferring, seconds.
    pub busy_s: f64,
    /// `busy_s / makespan`.
    pub utilization: f64,
}

/// Aggregate report of one served trace.
///
/// Serialization is hand-written (not derived) for one reason: the
/// `fault` key is emitted only when a campaign was active, so fault-free
/// reports stay byte-identical to reports from before the fault layer
/// existed (the golden suite pins this).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests in the trace.
    pub requests: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Requests rejected by the bounded queue (backpressure accounting).
    pub rejected: usize,
    /// Fraction of completed requests answered correctly.
    pub accuracy: f64,
    /// First arrival to last drain, seconds.
    pub makespan_s: f64,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
    /// End-to-end latency distribution.
    pub latency: LatencySummary,
    /// Mean time spent in the host queue, seconds.
    pub mean_queue_wait_s: f64,
    /// High-water mark of the host queue.
    pub max_queue_depth: usize,
    /// Per-instance utilization, in index order.
    pub instances: Vec<InstanceReport>,
    /// Shared-link utilization.
    pub link: LinkReport,
    /// Story-cache effectiveness (zeros when caching is off).
    pub cache: CacheReport,
    /// Compute cycles summed over completions, by pipeline phase — the
    /// ITH-under-load tests read the output phase here.
    pub phase_totals: PhaseCycles,
    /// Completions that exited the output search early (ITH).
    pub speculated: usize,
    /// Sum of per-instance energies, joules.
    pub total_energy_j: f64,
    /// One-time model-upload cost paid before serving, seconds.
    pub setup_s: f64,
    /// FNV-1a digest over `(id, answer)` of completions in id order.
    /// Invariant across instance counts and scheduler policies — the
    /// serving layer never changes an answer.
    pub answers_digest: String,
    /// Fault-campaign summary; `fault.enabled == false` (and the key
    /// absent from JSON) when no faults were injected.
    pub fault: FaultReport,
    /// Numeric-health summary; `numeric.enabled == false` (and the key
    /// absent from JSON) under the default ignore policy.
    pub numeric: NumericHealth,
    /// Shared-story batching summary; `batch.enabled == false` (and the
    /// key absent from JSON) when `batch_window <= 1`.
    pub batch: BatchReport,
    /// Hop-pruning summary; `prune.enabled == false` (and the key absent
    /// from JSON) when pruning is off.
    pub prune: HopPruneReport,
    /// Candidate-index summary; `index.enabled == false` (and the key
    /// absent from JSON) when the index is off.
    pub index: IndexReport,
    /// Durable-store summary; `durability.enabled == false` (and the key
    /// absent from JSON) when the write-ahead log is off.
    pub durability: DurabilityReport,
    /// Whether this serve was cut short by a membership fail-stop
    /// (`ServeConfig::fail_stop`); the key is absent from JSON when
    /// false, so every pre-membership report stays byte-identical.
    pub fail_stopped: bool,
}

impl Serialize for ServeReport {
    fn to_value(&self) -> serde_json::Value {
        let mut pairs: Vec<(String, serde_json::Value)> = vec![
            ("requests".into(), self.requests.to_value()),
            ("completed".into(), self.completed.to_value()),
            ("rejected".into(), self.rejected.to_value()),
            ("accuracy".into(), self.accuracy.to_value()),
            ("makespan_s".into(), self.makespan_s.to_value()),
            ("throughput_rps".into(), self.throughput_rps.to_value()),
            ("latency".into(), self.latency.to_value()),
            (
                "mean_queue_wait_s".into(),
                self.mean_queue_wait_s.to_value(),
            ),
            ("max_queue_depth".into(), self.max_queue_depth.to_value()),
            ("instances".into(), self.instances.to_value()),
            ("link".into(), self.link.to_value()),
            ("cache".into(), self.cache.to_value()),
            ("phase_totals".into(), self.phase_totals.to_value()),
            ("speculated".into(), self.speculated.to_value()),
            ("total_energy_j".into(), self.total_energy_j.to_value()),
            ("setup_s".into(), self.setup_s.to_value()),
            ("answers_digest".into(), self.answers_digest.to_value()),
        ];
        if self.fault.enabled {
            pairs.push(("fault".into(), self.fault.to_value()));
        }
        if self.numeric.enabled {
            pairs.push(("numeric".into(), self.numeric.to_value()));
        }
        if self.batch.enabled {
            pairs.push(("batch".into(), self.batch.to_value()));
        }
        if self.prune.enabled {
            pairs.push(("prune".into(), self.prune.to_value()));
        }
        if self.index.enabled {
            pairs.push(("index".into(), self.index.to_value()));
        }
        if self.durability.enabled {
            pairs.push(("durability".into(), self.durability.to_value()));
        }
        if self.fail_stopped {
            pairs.push(("fail_stopped".into(), self.fail_stopped.to_value()));
        }
        serde_json::Value::Object(pairs)
    }
}

impl Deserialize for ServeReport {
    fn from_value(v: &serde_json::Value) -> Result<Self, serde_json::Error> {
        Ok(Self {
            requests: Deserialize::from_value(v.field("requests")?)?,
            completed: Deserialize::from_value(v.field("completed")?)?,
            rejected: Deserialize::from_value(v.field("rejected")?)?,
            accuracy: Deserialize::from_value(v.field("accuracy")?)?,
            makespan_s: Deserialize::from_value(v.field("makespan_s")?)?,
            throughput_rps: Deserialize::from_value(v.field("throughput_rps")?)?,
            latency: Deserialize::from_value(v.field("latency")?)?,
            mean_queue_wait_s: Deserialize::from_value(v.field("mean_queue_wait_s")?)?,
            max_queue_depth: Deserialize::from_value(v.field("max_queue_depth")?)?,
            instances: Deserialize::from_value(v.field("instances")?)?,
            link: Deserialize::from_value(v.field("link")?)?,
            cache: Deserialize::from_value(v.field("cache")?)?,
            phase_totals: Deserialize::from_value(v.field("phase_totals")?)?,
            speculated: Deserialize::from_value(v.field("speculated")?)?,
            total_energy_j: Deserialize::from_value(v.field("total_energy_j")?)?,
            setup_s: Deserialize::from_value(v.field("setup_s")?)?,
            answers_digest: Deserialize::from_value(v.field("answers_digest")?)?,
            fault: match v.field("fault") {
                Ok(fv) => Deserialize::from_value(fv)?,
                Err(_) => FaultReport::default(),
            },
            numeric: match v.field("numeric") {
                Ok(nv) => Deserialize::from_value(nv)?,
                Err(_) => NumericHealth::default(),
            },
            batch: match v.field("batch") {
                Ok(bv) => Deserialize::from_value(bv)?,
                Err(_) => BatchReport::default(),
            },
            prune: match v.field("prune") {
                Ok(pv) => Deserialize::from_value(pv)?,
                Err(_) => HopPruneReport::default(),
            },
            index: match v.field("index") {
                Ok(iv) => Deserialize::from_value(iv)?,
                Err(_) => IndexReport::default(),
            },
            durability: match v.field("durability") {
                Ok(dv) => Deserialize::from_value(dv)?,
                Err(_) => DurabilityReport::default(),
            },
            fail_stopped: match v.field("fail_stopped") {
                Ok(fv) => Deserialize::from_value(fv)?,
                Err(_) => false,
            },
        })
    }
}

impl ServeReport {
    /// Sum of per-instance busy seconds.
    pub fn total_busy_s(&self) -> f64 {
        self.instances.iter().map(|i| i.busy_s).sum()
    }

    /// A copy with the durability section reset to the disabled default:
    /// with the WAL on (even across a kill-and-recover), everything else
    /// must be byte-identical to the same serve without a WAL — the
    /// journaling layer may observe a serve, never change it.
    #[must_use]
    pub fn sans_durability(&self) -> Self {
        let mut r = self.clone();
        r.durability = DurabilityReport::default();
        r
    }

    /// Renders the report as text tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut t = TextTable::new(vec!["metric".into(), "value".into()]);
        t.row(vec!["requests".into(), self.requests.to_string()]);
        t.row(vec!["completed".into(), self.completed.to_string()]);
        t.row(vec!["rejected".into(), self.rejected.to_string()]);
        t.row(vec!["accuracy".into(), percent(self.accuracy)]);
        t.row(vec![
            "makespan".into(),
            format!("{} ms", fnum(self.makespan_s * 1e3, 3)),
        ]);
        t.row(vec![
            "throughput".into(),
            format!("{} req/s", fnum(self.throughput_rps, 1)),
        ]);
        t.row(vec![
            "latency p50/p95/p99".into(),
            format!(
                "{} / {} / {} us",
                fnum(self.latency.p50_s * 1e6, 1),
                fnum(self.latency.p95_s * 1e6, 1),
                fnum(self.latency.p99_s * 1e6, 1)
            ),
        ]);
        t.row(vec![
            "mean queue wait".into(),
            format!("{} us", fnum(self.mean_queue_wait_s * 1e6, 1)),
        ]);
        t.row(vec![
            "max queue depth".into(),
            self.max_queue_depth.to_string(),
        ]);
        t.row(vec![
            "link utilization".into(),
            format!(
                "{} ({} grants)",
                percent(self.link.utilization),
                self.link.grants
            ),
        ]);
        t.row(vec![
            "cache hits".into(),
            format!(
                "{} / {} ({}), {} stories, cap {}",
                self.cache.hits,
                self.cache.hits + self.cache.misses,
                percent(self.cache.hit_rate),
                self.cache.unique_stories,
                self.cache.capacity
            ),
        ]);
        t.row(vec![
            "cache savings".into(),
            format!(
                "{} write cycles, {} B upload, {} J",
                self.cache.write_cycles_saved,
                self.cache.upload_bytes_saved,
                fnum(self.cache.write_energy_saved_j, 3)
            ),
        ]);
        t.row(vec!["early exits".into(), self.speculated.to_string()]);
        t.row(vec![
            "energy".into(),
            format!("{} J", fnum(self.total_energy_j, 3)),
        ]);
        t.row(vec![
            "setup (model upload)".into(),
            format!("{} ms", fnum(self.setup_s * 1e3, 3)),
        ]);
        if self.fail_stopped {
            t.row(vec!["fail-stopped".into(), "yes".into()]);
        }
        t.row(vec!["answers digest".into(), self.answers_digest.clone()]);
        out.push_str(&t.render());
        out.push('\n');
        if self.fault.enabled {
            out.push_str(&self.fault.render());
            out.push('\n');
        }
        if self.numeric.enabled {
            out.push_str(&self.numeric.render());
            out.push('\n');
        }
        if self.batch.enabled {
            out.push_str(&self.batch.render());
            out.push('\n');
        }
        if self.prune.enabled {
            out.push_str(&self.prune.render());
            out.push('\n');
        }
        if self.index.enabled {
            out.push_str(&self.index.render());
            out.push('\n');
        }
        if self.durability.enabled {
            out.push_str(&self.durability.render());
            out.push('\n');
        }
        let mut inst = TextTable::new(vec![
            "instance".into(),
            "completed".into(),
            "cache hits".into(),
            "busy (ms)".into(),
            "occupancy".into(),
            "energy (J)".into(),
        ]);
        for i in &self.instances {
            inst.row(vec![
                i.instance.to_string(),
                i.completed.to_string(),
                i.cache_hits.to_string(),
                fnum(i.busy_s * 1e3, 3),
                percent(i.occupancy),
                fnum(i.energy_j, 3),
            ]);
        }
        out.push_str(&inst.render());
        out
    }
}

/// FNV-1a digest over `(id, answer)` pairs; see
/// [`ServeReport::answers_digest`].
pub fn answers_digest(pairs: impl IntoIterator<Item = (u64, usize)>) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut absorb = |v: u64| {
        for byte in v.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (id, answer) in pairs {
        absorb(id);
        absorb(answer as u64);
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_orders_percentiles() {
        let lat: Vec<f64> = (1..=200).map(f64::from).collect();
        let s = LatencySummary::from_latencies(&lat);
        assert!(s.p50_s <= s.p95_s && s.p95_s <= s.p99_s && s.p99_s <= s.max_s);
        assert_eq!(s.p50_s, 100.0);
        assert_eq!(s.p95_s, 190.0);
        assert_eq!(s.p99_s, 198.0);
        assert_eq!(s.max_s, 200.0);
        assert_eq!(
            LatencySummary::from_latencies(&[]),
            LatencySummary::default()
        );
    }

    #[test]
    fn pooled_p99_is_not_the_mean_of_shard_p99s() {
        // Skewed two-shard campaign: shard A is uniformly fast; shard B
        // hides a heavy tail. Nearest-rank p99 per shard: A = 1 ms,
        // B = 100 ms, so the (wrong) mean-of-p99s merge reports 50.5 ms.
        let a: Vec<f64> = vec![1e-3; 100];
        let mut b: Vec<f64> = vec![1e-3; 90];
        b.extend(std::iter::repeat_n(100e-3, 10));
        let pa = LatencySummary::from_latencies(&a);
        let pb = LatencySummary::from_latencies(&b);
        assert_eq!(pa.p99_s, 1e-3);
        assert_eq!(pb.p99_s, 100e-3);
        let mean_of_p99s = (pa.p99_s + pb.p99_s) / 2.0;
        // The pooled rank sees 10 slow samples out of 200 — the fleet p99
        // *is* the tail value, nowhere near the averaged summaries.
        let pooled = LatencySummary::from_pooled([a.as_slice(), b.as_slice()]);
        assert_eq!(pooled.p99_s, 100e-3);
        assert!((pooled.p99_s - mean_of_p99s).abs() > 40e-3);
        // Pooling is also insensitive to shard order and matches a flat
        // concatenation summarized directly.
        let mut flat = a.clone();
        flat.extend_from_slice(&b);
        assert_eq!(pooled, LatencySummary::from_latencies(&flat));
        assert_eq!(pooled, LatencySummary::from_pooled([b.as_slice(), &a]));
    }

    #[test]
    fn batch_report_renders_every_counter() {
        let b = BatchReport {
            enabled: true,
            window: 4,
            groups: 9,
            fused_groups: 3,
            batched_requests: 8,
            size_histogram: vec![6, 1, 2],
            cycles_saved: 1234,
            energy_saved_j: 0.5,
        };
        let r = b.render();
        for needle in ["4", "9 (3)", "8", "1x6 2x1 3x2", "1234"] {
            assert!(r.contains(needle), "missing {needle:?} in:\n{r}");
        }
        // An idle report renders a placeholder histogram, not a panic.
        assert!(BatchReport::default().render().contains('-'));
    }

    #[test]
    fn prune_report_renders_every_counter() {
        let p = HopPruneReport {
            enabled: true,
            threshold: 0.85,
            pruned_completions: 5,
            hops_executed: 40,
            hops_saved: 7,
            vetoes: 2,
            cycles_saved: 999,
            energy_saved_j: 0.25,
        };
        let r = p.render();
        for needle in ["0.85", "5", "40 / 7", "2", "999"] {
            assert!(r.contains(needle), "missing {needle:?} in:\n{r}");
        }
    }

    #[test]
    fn index_report_renders_every_counter() {
        let i = IndexReport {
            enabled: true,
            k: 64,
            nprobe: 8,
            band: 0.25,
            scanned_slots: 4200,
            skipped_slots: 8400,
            fallbacks: 3,
            build_cycles: 512,
            cycles_saved: 777,
            energy_saved_j: 0.125,
        };
        let r = i.render();
        for needle in ["64,8,0.25", "4200 / 8400", "3", "512", "777"] {
            assert!(r.contains(needle), "missing {needle:?} in:\n{r}");
        }
    }

    #[test]
    fn index_report_round_trips_through_json() {
        let i = IndexReport {
            enabled: true,
            k: 16,
            nprobe: 4,
            band: 0.5,
            scanned_slots: 10,
            skipped_slots: 20,
            fallbacks: 1,
            build_cycles: 99,
            cycles_saved: 42,
            energy_saved_j: 0.01,
        };
        let i2 = IndexReport::from_value(&i.to_value()).unwrap();
        assert_eq!(i, i2);
    }

    #[test]
    fn batch_and_prune_reports_round_trip_through_json() {
        let b = BatchReport {
            enabled: true,
            window: 3,
            groups: 2,
            fused_groups: 1,
            batched_requests: 3,
            size_histogram: vec![1, 0, 1],
            cycles_saved: 77,
            energy_saved_j: 1.5,
        };
        let p = HopPruneReport {
            enabled: true,
            threshold: 0.9,
            pruned_completions: 1,
            hops_executed: 3,
            hops_saved: 1,
            vetoes: 0,
            cycles_saved: 10,
            energy_saved_j: 0.1,
        };
        let b2 = BatchReport::from_value(&b.to_value()).unwrap();
        let p2 = HopPruneReport::from_value(&p.to_value()).unwrap();
        assert_eq!(b, b2);
        assert_eq!(p, p2);
    }

    #[test]
    fn digest_is_order_sensitive_and_stable() {
        let a = answers_digest([(0, 3), (1, 7)]);
        let b = answers_digest([(0, 3), (1, 7)]);
        let c = answers_digest([(1, 7), (0, 3)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
    }
}
